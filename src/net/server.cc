#include "net/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "persist/checkpoint.h"
#include "util/atomic_file.h"

namespace certa::net {

namespace {

bool SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Event frames are serialized once, worker-side, at the current
/// schema version and re-stamped per connection at fan-out time. The
/// version is always the frame's leading field (wire.cc BeginFrame),
/// so a prefix swap is exact.
std::string RestampFrame(const std::string& frame, int version) {
  if (version == api::kSchemaVersion) return frame;
  const std::string built =
      "{\"schema_version\":" + std::to_string(api::kSchemaVersion);
  if (frame.compare(0, built.size(), built) != 0) return frame;
  return "{\"schema_version\":" + std::to_string(version) +
         frame.substr(built.size());
}

/// Stable error code for one failed streaming call.
const char* StreamErrorCode(service::StreamCoordinator::OpStatus status) {
  switch (status) {
    case service::StreamCoordinator::OpStatus::kUnknownDataset:
      return kErrUnknownDataset;
    case service::StreamCoordinator::OpStatus::kBadRecord:
      return kErrBadRecord;
    default:
      // kIo: the stream cannot take writes right now.
      return kErrStreamingUnavailable;
  }
}

}  // namespace

NetServer::NetServer(NetServerOptions options) : options_(std::move(options)) {
  // The runner hooks must exist before the first worker starts, so the
  // runner is built here with them pre-wired. Both hooks run on worker
  // threads: they serialize the event into a string under events_mutex_
  // and poke the loop — no socket is ever touched off the loop thread.
  service::JobRunnerOptions runner_options = options_.runner;
  runner_options.on_progress = [this](const std::string& job_id,
                                      const core::ExplainProgress& progress) {
    std::string frame = ProgressEventFrame(
        job_id, progress.phase, progress.triangles_total,
        progress.triangles_tagged, progress.predictions_performed,
        progress.total_flips);
    {
      std::lock_guard<std::mutex> lock(events_mutex_);
      pending_.progress[job_id] = std::move(frame);  // coalesce: newest wins
    }
    Wake();
  };
  runner_options.on_terminal = [this](const service::JobOutcome& outcome) {
    std::string frame = TerminalEventFrame(outcome);
    {
      std::lock_guard<std::mutex> lock(events_mutex_);
      pending_.terminal_frames.push_back(std::move(frame));
      pending_.terminal_job_ids.push_back(outcome.job_id);
    }
    Wake();
  };
  runner_ = std::make_unique<service::JobRunner>(std::move(runner_options));
}

NetServer::~NetServer() {
  Stop(/*drain=*/true);
  if (background_.joinable()) background_.join();
  for (auto& conn : conns_) {
    if (conn->fd >= 0) close(conn->fd);
  }
  if (listen_fd_ >= 0) close(listen_fd_);
  if (wake_read_fd_ >= 0) close(wake_read_fd_);
  if (wake_write_fd_ >= 0) close(wake_write_fd_);
}

bool NetServer::Start(std::string* error) {
  // A client that disconnects mid-stream must not kill the server.
  signal(SIGPIPE, SIG_IGN);

  int pipe_fds[2];
  if (pipe(pipe_fds) != 0) {
    if (error) *error = std::string("pipe: ") + std::strerror(errno);
    return false;
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  SetNonBlocking(wake_read_fd_);
  SetNonBlocking(wake_write_fd_);

  if (options_.inherited_listen_fd >= 0) {
    // Fleet fallback: the master bound + listened before forking; every
    // worker accepts from the one shared queue through this fd.
    listen_fd_ = options_.inherited_listen_fd;
    SetNonBlocking(listen_fd_);
  } else {
    listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      if (error) *error = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    int one = 1;
    setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (options_.reuse_port &&
        setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) !=
            0) {
      if (error) *error = std::string("SO_REUSEPORT: ") + std::strerror(errno);
      return false;
    }

    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(options_.port));
    if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
      if (error) *error = "invalid listen address: " + options_.host;
      return false;
    }
    if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      if (error)
        *error = "bind " + options_.host + ":" + std::to_string(options_.port) +
                 ": " + std::strerror(errno);
      return false;
    }
    if (listen(listen_fd_, options_.max_connections) != 0) {
      if (error) *error = std::string("listen: ") + std::strerror(errno);
      return false;
    }
    SetNonBlocking(listen_fd_);
  }

  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                  &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = options_.port;
  }
  return true;
}

bool NetServer::StartBackground(std::string* error) {
  if (!Start(error)) return false;
  background_ = std::thread([this] { Run(); });
  return true;
}

void NetServer::Stop(bool drain) {
  drain_on_stop_.store(drain);
  stop_requested_.store(true);
  Wake();
}

ServerStats NetServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void NetServer::Wake() {
  if (wake_write_fd_ < 0) return;
  char byte = 1;
  // Best effort: a full pipe already guarantees a pending wakeup.
  [[maybe_unused]] ssize_t n = write(wake_write_fd_, &byte, 1);
}

void NetServer::Run() {
  Loop();
  loop_done_.store(true);
}

void NetServer::Loop() {
  std::vector<pollfd> fds;
  bool external_stop = false;
  while (true) {
    if (stop_requested_.load()) break;
    if (options_.stop_flag != nullptr && options_.stop_flag->load()) {
      external_stop = true;
      break;
    }

    fds.clear();
    fds.push_back({wake_read_fd_, POLLIN, 0});
    if (listen_fd_ >= 0 &&
        conns_.size() < static_cast<size_t>(options_.max_connections)) {
      fds.push_back({listen_fd_, POLLIN, 0});
    }
    size_t conn_base = fds.size();
    for (auto& conn : conns_) {
      short events = 0;
      // A closing connection only flushes; it no longer reads.
      if (!conn->closing) events |= POLLIN;
      if (!conn->write_buffer.empty()) events |= POLLOUT;
      fds.push_back({conn->fd, events, 0});
    }

    int ready = poll(fds.data(), fds.size(), options_.poll_interval_ms);
    if (ready < 0 && errno != EINTR) break;

    if (fds[0].revents & POLLIN) {
      char drain_buf[256];
      while (read(wake_read_fd_, drain_buf, sizeof(drain_buf)) > 0) {
      }
    }

    bool listener_polled = conn_base > 1;
    if (listener_polled && (fds[1].revents & POLLIN)) AcceptNew();

    // Index by fd, not position: AcceptNew may have grown conns_.
    for (size_t i = conn_base; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      Conn* conn = nullptr;
      for (auto& candidate : conns_) {
        if (candidate->fd == fds[i].fd) {
          conn = candidate.get();
          break;
        }
      }
      if (conn == nullptr) continue;
      if (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) {
        CloseConn(conn);
        continue;
      }
      if (fds[i].revents & POLLIN) HandleReadable(conn);
      if (conn->fd >= 0 && (fds[i].revents & POLLOUT)) HandleWritable(conn);
    }

    DrainEvents();

    // Streaming: absorb whatever sibling workers appended to the
    // shared stream (time-gated inside; most beats are no-ops) and
    // push the resulting invalidations to subscribers.
    if (options_.stream != nullptr) {
      BroadcastInvalidations(options_.stream->MaybeAbsorbPeers());
    }

    // Reap closed connections, and closing ones whose buffers drained.
    conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                [this](const std::unique_ptr<Conn>& c) {
                                  if (c->fd >= 0 && c->closing &&
                                      c->write_buffer.empty()) {
                                    close(c->fd);
                                    const_cast<Conn*>(c.get())->fd = -1;
                                  }
                                  if (c->fd < 0) {
                                    std::lock_guard<std::mutex> lock(
                                        stats_mutex_);
                                    --stats_.connections_active;
                                    return true;
                                  }
                                  return false;
                                }),
                 conns_.end());
  }

  BeginDrain(external_stop ? options_.drain_on_stop_flag
                           : drain_on_stop_.load());
}

void NetServer::AcceptNew() {
  while (true) {
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) break;  // EAGAIN or transient error; poll again
    SetNonBlocking(fd);
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (conns_.size() >= static_cast<size_t>(options_.max_connections)) {
      // Over the cap (a burst between polls): answer, then hang up.
      // Nothing was negotiated on this connection, so stamp v1.
      std::string frame =
          ErrorFrame(kErrTooManyConnections,
                     "connection limit reached; retry later", "", 1);
      [[maybe_unused]] ssize_t n = write(fd, frame.data(), frame.size());
      close(fd);
      continue;
    }
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conns_.push_back(std::move(conn));
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.connections_accepted;
    ++stats_.connections_active;
  }
}

void NetServer::HandleReadable(Conn* conn) {
  char buffer[4096];
  while (conn->fd >= 0) {
    ssize_t n = read(conn->fd, buffer, sizeof(buffer));
    if (n > 0) {
      conn->read_buffer.append(buffer, static_cast<size_t>(n));
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        stats_.bytes_in += n;
      }
      // Frame-size cap applies to the *unterminated* prefix: a client
      // that streams forever without a newline is cut off deterministically.
      if (conn->read_buffer.find('\n') == std::string::npos &&
          conn->read_buffer.size() > options_.max_frame_bytes) {
        QueueFrame(conn,
                   ErrorFrame(kErrFrameTooLarge,
                              "frame exceeds " +
                                  std::to_string(options_.max_frame_bytes) +
                                  " bytes",
                              "", conn->schema_version),
                   /*droppable=*/false);
        conn->closing = true;
        return;
      }
      size_t start = 0;
      size_t newline;
      while ((newline = conn->read_buffer.find('\n', start)) !=
             std::string::npos) {
        std::string_view line(conn->read_buffer.data() + start,
                              newline - start);
        if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
        if (!line.empty()) HandleFrame(conn, line);
        start = newline + 1;
        if (conn->fd < 0 || conn->closing) break;
      }
      if (start > 0) conn->read_buffer.erase(0, start);
      if (conn->fd < 0 || conn->closing) return;
      if (conn->read_buffer.size() > options_.max_frame_bytes) {
        QueueFrame(conn,
                   ErrorFrame(kErrFrameTooLarge,
                              "frame exceeds " +
                                  std::to_string(options_.max_frame_bytes) +
                                  " bytes",
                              "", conn->schema_version),
                   /*droppable=*/false);
        conn->closing = true;
        return;
      }
      continue;
    }
    if (n == 0) {
      CloseConn(conn);  // peer EOF
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    CloseConn(conn);
    return;
  }
}

void NetServer::HandleWritable(Conn* conn) {
  while (!conn->write_buffer.empty()) {
    ssize_t n =
        write(conn->fd, conn->write_buffer.data(), conn->write_buffer.size());
    if (n > 0) {
      conn->write_buffer.erase(0, static_cast<size_t>(n));
      std::lock_guard<std::mutex> lock(stats_mutex_);
      stats_.bytes_out += n;
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    CloseConn(conn);
    return;
  }
}

void NetServer::QueueFrame(Conn* conn, const std::string& frame,
                           bool droppable) {
  if (conn->fd < 0) return;
  if (droppable) {
    if (conn->write_buffer.size() + frame.size() >
        options_.max_write_buffer) {
      // Shed the event; the reader catches up from the next snapshot.
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.events_dropped;
      return;
    }
  } else if (conn->write_buffer.size() > options_.max_write_buffer) {
    // The cap bounds the *backlog a stalled reader can pin*, not the
    // intrinsic size of one response: a single frame over the cap (a
    // multi-megabyte result.json) must still be deliverable, or the
    // client retries forever and every retry re-pays the disk read.
    // Backlog already past the cap means the reader has genuinely
    // stalled: disconnect rather than balloon.
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.slow_reader_closes;
    }
    CloseConn(conn);
    return;
  }
  conn->write_buffer += frame;
  // Opportunistic immediate flush; leftovers drain on POLLOUT.
  HandleWritable(conn);
}

void NetServer::HandleFrame(Conn* conn, std::string_view line) {
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.frames_in;
  }
  ClientFrame frame;
  std::string code;
  std::string error;
  if (!ParseClientFrame(line, &frame, &code, &error)) {
    QueueFrame(conn, ErrorFrame(code, error, "", conn->schema_version),
               /*droppable=*/false);
    return;
  }
  // Sticky per-connection negotiation: any frame declaring a higher
  // schema_version upgrades the connection; it never downgrades, so
  // replies stay consistently stamped for the client's whole session.
  if (frame.schema_version > conn->schema_version) {
    conn->schema_version = frame.schema_version;
  }
  const int version = conn->schema_version;
  switch (frame.type) {
    case ClientFrame::Type::kSubmit:
      HandleSubmit(conn, frame);
      return;
    case ClientFrame::Type::kStatus:
      HandleStatus(conn, frame.job_id);
      return;
    case ClientFrame::Type::kResult:
      HandleResult(conn, frame.job_id);
      return;
    case ClientFrame::Type::kCancel: {
      std::string reason;
      if (runner_->Cancel(frame.job_id, &reason)) {
        QueueFrame(conn, CancelledFrame(frame.job_id, version),
                   /*droppable=*/false);
      } else {
        QueueFrame(conn,
                   ErrorFrame(kErrUnknownJob, reason, frame.job_id, version),
                   /*droppable=*/false);
      }
      return;
    }
    case ClientFrame::Type::kStats: {
      std::string fleet_json;
      {
        std::lock_guard<std::mutex> lock(fleet_stats_mutex_);
        fleet_json = fleet_stats_json_;
      }
      std::string stream_json;
      if (options_.stream != nullptr) {
        stream_json = options_.stream->StatsJson();
      }
      QueueFrame(conn,
                 StatsFrame(runner_->counters(), stats(), fleet_json,
                            stream_json, version),
                 /*droppable=*/false);
      return;
    }
    case ClientFrame::Type::kPing: {
      Capabilities capabilities;
      capabilities.workers = options_.fleet_workers;
      capabilities.store_mode =
          options_.runner.store_dir.empty()
              ? "none"
              : (options_.runner.store_stream_slot >= 0 ? "shared"
                                                        : "private");
      capabilities.streaming = options_.stream != nullptr;
      QueueFrame(conn, PongFrame(capabilities, version),
                 /*droppable=*/false);
      return;
    }
    case ClientFrame::Type::kUpsert:
      HandleUpsert(conn, frame);
      return;
    case ClientFrame::Type::kRemove:
      HandleRemove(conn, frame);
      return;
    case ClientFrame::Type::kMatch:
      HandleMatch(conn, frame);
      return;
    case ClientFrame::Type::kInvalidations:
      HandleInvalidations(conn, frame);
      return;
  }
}

void NetServer::HandleSubmit(Conn* conn, const ClientFrame& frame) {
  const int version = conn->schema_version;
  if (stop_requested_.load()) {
    QueueFrame(conn,
               ErrorFrame(kErrShuttingDown, "server is shutting down", "",
                          version),
               /*droppable=*/false);
    return;
  }
  service::JobRunner::SubmitResult result = runner_->Submit(frame.request);
  if (!result.accepted) {
    const char* code = kErrRejectedClosed;
    switch (result.reject_code) {
      case service::JobRunner::RejectCode::kQueueFull:
        code = kErrRejectedQueueFull;
        break;
      case service::JobRunner::RejectCode::kDeadline:
        code = kErrRejectedDeadline;
        break;
      default:
        break;
    }
    QueueFrame(conn, ErrorFrame(code, result.reason, "", version),
               /*droppable=*/false);
    return;
  }
  // Watch registration happens here, on the loop thread, *before*
  // DrainEvents can run this iteration — so even a job that finishes
  // instantly delivers its terminal event to this connection.
  if (frame.watch) conn->watched_jobs.insert(result.job_id);
  // Legacy key spellings get one migration nudge per connection, not
  // one per frame — steady-state v1 traffic stays un-nagged.
  std::string note;
  if (!frame.deprecation_notes.empty() && !conn->deprecation_noted) {
    note = frame.deprecation_notes.front();
    conn->deprecation_noted = true;
  }
  QueueFrame(conn, AcceptedFrame(result.job_id, note, version),
             /*droppable=*/false);
}

void NetServer::SetFleetStats(std::string fleet_json) {
  std::lock_guard<std::mutex> lock(fleet_stats_mutex_);
  fleet_stats_json_ = std::move(fleet_json);
}

std::string NetServer::FindJobOnDisk(const std::string& job_id,
                                     std::string* state) const {
  // The job id is a directory name; refuse anything path-like so a
  // crafted id can never escape the job roots.
  if (job_id.empty() || job_id.find('/') != std::string::npos ||
      job_id.find("..") != std::string::npos) {
    return "";
  }
  std::vector<std::string> roots;
  roots.push_back(options_.runner.job_root);
  for (const std::string& peer : options_.peer_job_roots) {
    if (peer != options_.runner.job_root) roots.push_back(peer);
  }
  for (const std::string& root : roots) {
    const std::string job_dir = root + "/" + job_id;
    persist::JobCheckpoint checkpoint;
    if (persist::LoadCheckpoint(persist::CheckpointPathInDir(job_dir),
                                &checkpoint)) {
      if (state != nullptr) *state = checkpoint.state;
      return job_dir;
    }
    // A result without a readable checkpoint still counts: result.json
    // is only ever written complete.
    if (util::PathExists(persist::ResultPathInDir(job_dir))) {
      if (state != nullptr) *state = "complete";
      return job_dir;
    }
  }
  return "";
}

void NetServer::HandleStatus(Conn* conn, const std::string& job_id) {
  const int version = conn->schema_version;
  service::JobOutcome outcome;
  service::JobQueryState state = runner_->Query(job_id, &outcome);
  if (state == service::JobQueryState::kUnknown) {
    // Not this runner's job — maybe a sibling worker's (client landed
    // on a different worker after a restart), or a previous server
    // life's. The disk is the durable truth either way.
    std::string disk_state;
    const std::string job_dir = FindJobOnDisk(job_id, &disk_state);
    if (job_dir.empty()) {
      QueueFrame(conn,
                 ErrorFrame(kErrUnknownJob,
                            "no job named \"" + job_id + "\"", job_id,
                            version),
                 /*droppable=*/false);
      return;
    }
    outcome.job_id = job_id;
    outcome.job_dir = job_dir;
    if (disk_state == "complete") {
      state = service::JobQueryState::kComplete;
    } else if (disk_state == "failed") {
      state = service::JobQueryState::kFailed;
    } else if (disk_state == "running") {
      // Live on another worker (or orphaned mid-crash, in which case
      // the master will re-run it): either way, not terminal yet.
      state = service::JobQueryState::kRunning;
    } else if (disk_state == "queued") {
      // Durably admitted, waiting in a sibling worker's queue.
      state = service::JobQueryState::kQueued;
    } else {  // parked / interrupted
      state = service::JobQueryState::kParked;
    }
  }
  QueueFrame(conn, StatusFrame(job_id, state, outcome, version),
             /*droppable=*/false);
}

void NetServer::HandleResult(Conn* conn, const std::string& job_id) {
  const int version = conn->schema_version;
  // Result reads refresh shared-store peers (no-op outside shared-store
  // fleet mode): a fetch landing right after a sibling finished sees
  // the scores that sibling paid for, instead of waiting for the
  // scoring engine's next periodic refresh.
  runner_->RefreshStorePeers();
  service::JobOutcome outcome;
  service::JobQueryState state = runner_->Query(job_id, &outcome);
  if (options_.stream != nullptr && options_.stream->IsStale(job_id)) {
    HandleStaleResult(conn, job_id, state);
    return;
  }
  if (state == service::JobQueryState::kQueued ||
      state == service::JobQueryState::kRunning) {
    QueueFrame(conn,
               ErrorFrame(kErrNotComplete,
                          "job is " + service::JobQueryStateName(state) +
                              "; poll status until complete",
                          job_id, version),
               /*droppable=*/false);
    return;
  }
  if (state == service::JobQueryState::kParked ||
      state == service::JobQueryState::kFailed) {
    QueueFrame(conn,
               ErrorFrame(kErrNotComplete,
                          "job ended " + service::JobQueryStateName(state) +
                              (outcome.error.empty() ? std::string()
                                                     : ": " + outcome.error),
                          job_id, version),
               /*droppable=*/false);
    return;
  }
  std::string result_json = outcome.result_json;
  if (state == service::JobQueryState::kUnknown || result_json.empty()) {
    // Jobs from a previous server life — or a sibling worker's
    // partition — are still servable from disk: the job dir is the
    // durable source of truth.
    std::string disk_state;
    const std::string job_dir = FindJobOnDisk(job_id, &disk_state);
    std::string path = job_dir.empty()
                           ? options_.runner.job_root + "/" + job_id +
                                 "/result.json"
                           : persist::ResultPathInDir(job_dir);
    if (!util::ReadFileToString(path, &result_json) || result_json.empty()) {
      QueueFrame(conn,
                 ErrorFrame(kErrUnknownJob,
                            "no job named \"" + job_id +
                                "\" and no stored result at " + path,
                            job_id, version),
                 /*droppable=*/false);
      return;
    }
  }
  // result.json is written with a trailing newline; the frame supplies
  // its own line terminator.
  while (!result_json.empty() &&
         (result_json.back() == '\n' || result_json.back() == '\r')) {
    result_json.pop_back();
  }
  QueueFrame(conn, ResultFrame(job_id, result_json, version),
             /*droppable=*/false);
}

void NetServer::HandleStaleResult(Conn* conn, const std::string& job_id,
                                  service::JobQueryState state) {
  const int version = conn->schema_version;
  if (state == service::JobQueryState::kQueued ||
      state == service::JobQueryState::kRunning) {
    // The recompute is already in flight (it clears the stale mark
    // when it re-registers its dependencies at the new snapshot).
    QueueFrame(conn,
               ErrorFrame(kErrStaleRecomputing,
                          "inputs changed; recompute in flight — poll "
                          "status, then refetch the result",
                          job_id, version),
               /*droppable=*/false);
    return;
  }
  // Lazy recompute: re-own only jobs in this runner's partition (a
  // sibling's job recomputes on a fetch that lands there — every
  // worker applies the same rule, so exactly the owner recomputes).
  std::string disk_state;
  const std::string job_dir = FindJobOnDisk(job_id, &disk_state);
  if (job_dir == options_.runner.job_root + "/" + job_id &&
      !stop_requested_.load()) {
    persist::JobCheckpoint checkpoint;
    if (persist::LoadCheckpoint(persist::CheckpointPathInDir(job_dir),
                                &checkpoint)) {
      service::JobSpec spec = service::SpecFromCheckpoint(checkpoint);
      if (spec.id.empty()) spec.id = job_id;
      // Same id → same job dir: the journal's paid scores replay, and
      // content-hashed pair keys mean only pairs whose records really
      // changed are re-bought. A full queue just defers the recompute
      // to the next fetch.
      runner_->Submit(std::move(spec));
    }
  }
  QueueFrame(conn,
             ErrorFrame(kErrStaleRecomputing,
                        "inputs changed since this result was computed; "
                        "recomputing — poll status, then refetch",
                        job_id, version),
             /*droppable=*/false);
}

void NetServer::HandleUpsert(Conn* conn, const ClientFrame& frame) {
  const int version = conn->schema_version;
  if (options_.stream == nullptr) {
    QueueFrame(conn,
               ErrorFrame(kErrStreamingUnavailable,
                          "server started without a stream directory "
                          "(--stream-dir)",
                          "", version),
               /*droppable=*/false);
    return;
  }
  data::Record record;
  record.id = frame.record_id;
  record.values = frame.values;
  service::StreamCoordinator::Ack ack;
  std::vector<service::StreamCoordinator::Invalidation> invalidated;
  std::string error;
  const service::StreamCoordinator::OpStatus status =
      options_.stream->Upsert(frame.dataset, frame.data_dir, frame.side,
                              record, &ack, &invalidated, &error);
  if (status != service::StreamCoordinator::OpStatus::kOk) {
    QueueFrame(conn, ErrorFrame(StreamErrorCode(status), error, "", version),
               /*droppable=*/false);
    return;
  }
  // The WAL was fsync'd before Upsert returned: this ack is durable.
  QueueFrame(conn,
             UpsertedFrame(frame.dataset, frame.side, frame.record_id,
                           static_cast<long long>(ack.seq), ack.slot,
                           ack.created, version),
             /*droppable=*/false);
  BroadcastInvalidations(invalidated);
}

void NetServer::HandleRemove(Conn* conn, const ClientFrame& frame) {
  const int version = conn->schema_version;
  if (options_.stream == nullptr) {
    QueueFrame(conn,
               ErrorFrame(kErrStreamingUnavailable,
                          "server started without a stream directory "
                          "(--stream-dir)",
                          "", version),
               /*droppable=*/false);
    return;
  }
  service::StreamCoordinator::Ack ack;
  std::vector<service::StreamCoordinator::Invalidation> invalidated;
  std::string error;
  const service::StreamCoordinator::OpStatus status =
      options_.stream->Remove(frame.dataset, frame.data_dir, frame.side,
                              frame.record_id, &ack, &invalidated, &error);
  if (status != service::StreamCoordinator::OpStatus::kOk) {
    QueueFrame(conn, ErrorFrame(StreamErrorCode(status), error, "", version),
               /*droppable=*/false);
    return;
  }
  QueueFrame(conn,
             RemovedFrame(frame.dataset, frame.side, frame.record_id,
                          static_cast<long long>(ack.seq), ack.slot,
                          ack.removed, version),
             /*droppable=*/false);
  BroadcastInvalidations(invalidated);
}

void NetServer::HandleMatch(Conn* conn, const ClientFrame& frame) {
  const int version = conn->schema_version;
  if (options_.stream == nullptr) {
    QueueFrame(conn,
               ErrorFrame(kErrStreamingUnavailable,
                          "server started without a stream directory "
                          "(--stream-dir)",
                          "", version),
               /*droppable=*/false);
    return;
  }
  // Match is a read: refresh shared-store peers on the same beat as
  // result fetches (Match itself absorbs sibling *op* streams).
  runner_->RefreshStorePeers();
  std::vector<service::StreamCoordinator::MatchCandidate> candidates;
  std::string error;
  const service::StreamCoordinator::OpStatus status =
      options_.stream->Match(frame.dataset, frame.data_dir, frame.side,
                             frame.values, frame.top_k, &candidates, &error);
  if (status != service::StreamCoordinator::OpStatus::kOk) {
    QueueFrame(conn, ErrorFrame(StreamErrorCode(status), error, "", version),
               /*droppable=*/false);
    return;
  }
  std::vector<WireMatchCandidate> wire;
  wire.reserve(candidates.size());
  for (const service::StreamCoordinator::MatchCandidate& candidate :
       candidates) {
    wire.push_back({candidate.id, candidate.overlap, candidate.values});
  }
  QueueFrame(conn, MatchFrame(frame.dataset, frame.side, wire, version),
             /*droppable=*/false);
}

void NetServer::HandleInvalidations(Conn* conn, const ClientFrame& frame) {
  const int version = conn->schema_version;
  if (options_.stream == nullptr) {
    QueueFrame(conn,
               ErrorFrame(kErrStreamingUnavailable,
                          "server started without a stream directory "
                          "(--stream-dir)",
                          "", version),
               /*droppable=*/false);
    return;
  }
  conn->wants_invalidations = frame.subscribe;
  QueueFrame(conn,
             InvalidationsFrame(frame.subscribe,
                                options_.stream->StaleJobs(), version),
             /*droppable=*/false);
}

void NetServer::BroadcastInvalidations(
    const std::vector<service::StreamCoordinator::Invalidation>& events) {
  if (events.empty()) return;
  for (auto& conn : conns_) {
    if (conn->fd < 0 || !conn->wants_invalidations) continue;
    for (const service::StreamCoordinator::Invalidation& event : events) {
      QueueFrame(conn.get(),
                 InvalidationEventFrame(event.job_id, event.dataset,
                                        event.side, event.record_id,
                                        conn->schema_version),
                 /*droppable=*/true);
      if (conn->fd < 0) break;
    }
  }
}

void NetServer::DrainEvents() {
  PendingEvents batch;
  {
    std::lock_guard<std::mutex> lock(events_mutex_);
    batch = std::move(pending_);
    pending_ = PendingEvents();
  }
  if (batch.progress.empty() && batch.terminal_frames.empty()) return;
  for (auto& conn : conns_) {
    if (conn->fd < 0 || conn->watched_jobs.empty()) continue;
    for (const auto& [job_id, frame] : batch.progress) {
      if (conn->watched_jobs.count(job_id)) {
        QueueFrame(conn.get(), RestampFrame(frame, conn->schema_version),
                   /*droppable=*/true);
        if (conn->fd < 0) break;
      }
    }
    if (conn->fd < 0) continue;
    for (size_t i = 0; i < batch.terminal_frames.size(); ++i) {
      if (conn->watched_jobs.count(batch.terminal_job_ids[i])) {
        QueueFrame(conn.get(),
                   RestampFrame(batch.terminal_frames[i],
                                conn->schema_version),
                   /*droppable=*/false);
        if (conn->fd < 0) break;
        conn->watched_jobs.erase(batch.terminal_job_ids[i]);
      }
    }
  }
}

void NetServer::CloseConn(Conn* conn) {
  if (conn->fd < 0) return;
  close(conn->fd);
  conn->fd = -1;
  conn->write_buffer.clear();
  conn->watched_jobs.clear();
}

void NetServer::BeginDrain(bool drain) {
  // 1. No new work: the listener goes first.
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }

  // 2. Runner winds down. drain=true finishes queued + running jobs
  // (their terminal events still flow through pending_); drain=false
  // parks running jobs resumable and parks queued ones back.
  runner_->Shutdown(drain);

  // 3. Tell every connection, deliver the last events, and flush.
  DrainEvents();
  for (auto& conn : conns_) {
    if (conn->fd < 0) continue;
    QueueFrame(conn.get(), ShutdownEventFrame(conn->schema_version),
               /*droppable=*/false);
    conn->closing = true;
  }

  // 4. Bounded flush window: poll only for writability, then hang up.
  for (int spin = 0; spin < 100; ++spin) {
    std::vector<pollfd> fds;
    for (auto& conn : conns_) {
      if (conn->fd >= 0 && !conn->write_buffer.empty()) {
        fds.push_back({conn->fd, POLLOUT, 0});
      }
    }
    if (fds.empty()) break;
    if (poll(fds.data(), fds.size(), 20) <= 0) continue;
    for (auto& pfd : fds) {
      for (auto& conn : conns_) {
        if (conn->fd == pfd.fd && (pfd.revents & POLLOUT)) {
          HandleWritable(conn.get());
        }
      }
    }
  }
  for (auto& conn : conns_) {
    if (conn->fd >= 0) {
      close(conn->fd);
      conn->fd = -1;
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.connections_active = 0;
  }
  conns_.clear();
}

}  // namespace certa::net
