#ifndef CERTA_NET_WIRE_H_
#define CERTA_NET_WIRE_H_

#include <string>
#include <vector>

#include "api/explain_request.h"
#include "core/certa_explainer.h"
#include "service/job_runner.h"
#include "util/json_parser.h"

namespace certa::net {

/// Line-delimited JSON wire protocol (docs/SERVICE.md): every frame is
/// exactly one JSON object on one '\n'-terminated line, stamped with a
/// schema_version. Client frames carry a "type" of submit | status |
/// result | cancel | stats | ping (v1), plus upsert | remove | match |
/// invalidations (v2, streaming); server frames answer with accepted |
/// status | result | cancelled | stats | pong | upserted | removed |
/// match | invalidations | error, plus asynchronous "event" frames
/// (progress / terminal / shutdown / invalidation) for watched jobs.
///
/// Versioning is negotiated per connection: a connection starts at
/// v1 and is upgraded the first time a frame declares a higher
/// schema_version (never downgraded); every reply is stamped with the
/// connection's negotiated version, so v1 clients keep receiving
/// bit-identical v1 frames from a v2 server. The v2-only verbs
/// require the frame itself to declare schema_version >= 2.
///
/// This header is the single builder/parser both the server and
/// tools/certa_client use — the frames cannot drift apart.

/// Stable machine-readable error codes (`"code"` in error frames).
/// Human text rides alongside in `"message"`; clients branch on the
/// code only.
inline constexpr char kErrBadJson[] = "bad_json";
inline constexpr char kErrBadFrame[] = "bad_frame";
inline constexpr char kErrBadRequest[] = "bad_request";
inline constexpr char kErrUnsupportedSchema[] = "unsupported_schema";
inline constexpr char kErrRejectedQueueFull[] = "rejected_queue_full";
inline constexpr char kErrRejectedClosed[] = "rejected_closed";
inline constexpr char kErrRejectedDeadline[] = "rejected_deadline";
inline constexpr char kErrUnknownJob[] = "unknown_job";
inline constexpr char kErrNotComplete[] = "not_complete";
inline constexpr char kErrFrameTooLarge[] = "frame_too_large";
inline constexpr char kErrTooManyConnections[] = "too_many_connections";
inline constexpr char kErrShuttingDown[] = "shutting_down";
/// v2 (streaming) codes — see docs/SERVICE.md for the full table.
inline constexpr char kErrStaleRecomputing[] = "stale_recomputing";
inline constexpr char kErrUnknownDataset[] = "unknown_dataset";
inline constexpr char kErrBadRecord[] = "bad_record";
inline constexpr char kErrStreamingUnavailable[] = "streaming_unavailable";

/// One parsed client frame.
struct ClientFrame {
  enum class Type {
    kSubmit,
    kStatus,
    kResult,
    kCancel,
    kStats,
    kPing,
    // v2 streaming verbs (the frame must declare schema_version >= 2):
    kUpsert,
    kRemove,
    kMatch,
    kInvalidations,
  };
  Type type = Type::kPing;
  /// schema_version the frame itself declared (1 when absent). The
  /// server sticks each connection at the highest version seen.
  int schema_version = 1;
  /// Valid for kSubmit.
  api::ExplainRequest request;
  /// kSubmit: deprecated key spellings the request used (v1 only; v2
  /// rejects them). The server surfaces at most one note per
  /// connection.
  std::vector<std::string> deprecation_notes;
  /// kSubmit: stream progress/terminal events for this job to the
  /// submitting connection (default true).
  bool watch = true;
  /// Valid for kStatus / kResult / kCancel.
  std::string job_id;
  /// Valid for kUpsert / kRemove / kMatch.
  std::string dataset;
  std::string data_dir;
  int side = 0;
  /// kUpsert / kRemove: the record id addressed.
  int record_id = -1;
  /// kUpsert: record values; kMatch: the probe's values.
  std::vector<std::string> values;
  /// kMatch: number of candidates wanted (default 10).
  int top_k = 10;
  /// kInvalidations: subscribe to invalidation events on this
  /// connection (default true).
  bool subscribe = true;
};

/// Parses one frame line (without the trailing newline). On failure
/// returns false and sets *code to one of the kErr constants and
/// *error to the human-readable message.
bool ParseClientFrame(std::string_view line, ClientFrame* frame,
                      std::string* code, std::string* error);

// -- server-side frame builders (each returns one full line, '\n'
// included; `version` is the connection's negotiated schema_version
// and stamps the frame) --

std::string ErrorFrame(const std::string& code, const std::string& message,
                       const std::string& job_id = "",
                       int version = api::kSchemaVersion);
/// `note`, when non-empty, rides along as a "note" field — the
/// once-per-connection deprecation nudge for legacy key spellings.
std::string AcceptedFrame(const std::string& job_id,
                          const std::string& note = "",
                          int version = api::kSchemaVersion);
std::string StatusFrame(const std::string& job_id,
                        service::JobQueryState state,
                        const service::JobOutcome& outcome,
                        int version = api::kSchemaVersion);
/// `result_json` is the stored result.json document, spliced verbatim.
std::string ResultFrame(const std::string& job_id,
                        const std::string& result_json,
                        int version = api::kSchemaVersion);
std::string CancelledFrame(const std::string& job_id,
                           int version = api::kSchemaVersion);
/// What this server can do — the ping reply carries it at every
/// schema version so even v1 clients can feature-detect v2 instead of
/// parsing error strings.
struct Capabilities {
  /// Serving processes behind this endpoint (fleet size; 1 = single).
  int workers = 1;
  /// Score-store deployment: "none" | "private" | "shared".
  std::string store_mode = "none";
  /// Whether the streaming verbs are live (a stream dir is attached).
  bool streaming = false;
};
std::string PongFrame(const Capabilities& capabilities = Capabilities{},
                      int version = api::kSchemaVersion);
/// Runner counters + server-side connection/byte counters.
struct ServerStats {
  long long connections_accepted = 0;
  long long connections_active = 0;
  long long frames_in = 0;
  long long bytes_in = 0;
  long long bytes_out = 0;
  long long events_dropped = 0;
  long long slow_reader_closes = 0;
};
/// `fleet_json`, when non-empty, is a pre-serialized JSON object
/// spliced in verbatim as a "fleet" section — the master's fan-in of
/// every worker's runner/server counters (eventually consistent; see
/// docs/SERVICE.md). Single-process servers leave it empty and emit no
/// "fleet" key, so clients can distinguish the two deployments.
/// `stream_json`, when non-empty, is a pre-serialized JSON object
/// spliced in verbatim as a "stream" section (the coordinator's op /
/// staleness counters).
std::string StatsFrame(const service::JobRunner::Counters& counters,
                       const ServerStats& stats,
                       const std::string& fleet_json = "",
                       const std::string& stream_json = "",
                       int version = api::kSchemaVersion);
std::string ProgressEventFrame(const std::string& job_id,
                               const std::string& phase, int triangles_total,
                               int triangles_tagged,
                               long long predictions_performed,
                               long long total_flips,
                               int version = api::kSchemaVersion);
std::string TerminalEventFrame(const service::JobOutcome& outcome,
                               int version = api::kSchemaVersion);
std::string ShutdownEventFrame(int version = api::kSchemaVersion);

// -- v2 streaming server frames --

std::string UpsertedFrame(const std::string& dataset, int side,
                          int record_id, long long seq, int slot,
                          bool created, int version = api::kSchemaVersion);
std::string RemovedFrame(const std::string& dataset, int side,
                         int record_id, long long seq, int slot,
                         bool removed, int version = api::kSchemaVersion);
struct WireMatchCandidate {
  int id = -1;
  int overlap = 0;
  std::vector<std::string> values;
};
std::string MatchFrame(const std::string& dataset, int side,
                       const std::vector<WireMatchCandidate>& candidates,
                       int version = api::kSchemaVersion);
/// Ack for the `invalidations` verb: the subscription state plus the
/// jobs currently known stale, so a client can catch up in one frame.
std::string InvalidationsFrame(bool subscribed,
                               const std::vector<std::string>& stale_jobs,
                               int version = api::kSchemaVersion);
/// Asynchronous event pushed to invalidation subscribers (droppable
/// under backpressure like every event frame).
std::string InvalidationEventFrame(const std::string& job_id,
                                   const std::string& dataset, int side,
                                   int record_id,
                                   int version = api::kSchemaVersion);

// -- client-side frame builders (tools/certa_client, tests) --

std::string SubmitFrame(const api::ExplainRequest& request, bool watch);
std::string StatusRequestFrame(const std::string& job_id);
std::string ResultRequestFrame(const std::string& job_id);
std::string CancelRequestFrame(const std::string& job_id);
std::string StatsRequestFrame();
std::string PingFrame();
/// The v2 verbs declare schema_version 2 in the frame (required).
std::string UpsertRequestFrame(const std::string& dataset,
                               const std::string& data_dir, int side,
                               int record_id,
                               const std::vector<std::string>& values);
std::string RemoveRequestFrame(const std::string& dataset,
                               const std::string& data_dir, int side,
                               int record_id);
std::string MatchRequestFrame(const std::string& dataset,
                              const std::string& data_dir, int side,
                              const std::vector<std::string>& probe_values,
                              int top_k);
std::string InvalidationsRequestFrame(bool subscribe);

}  // namespace certa::net

#endif  // CERTA_NET_WIRE_H_
