#ifndef CERTA_NET_WIRE_H_
#define CERTA_NET_WIRE_H_

#include <string>

#include "api/explain_request.h"
#include "core/certa_explainer.h"
#include "service/job_runner.h"
#include "util/json_parser.h"

namespace certa::net {

/// Line-delimited JSON wire protocol (docs/SERVICE.md): every frame is
/// exactly one JSON object on one '\n'-terminated line, stamped with
/// the api schema_version. Client frames carry a "type" of submit |
/// status | result | cancel | stats | ping; server frames answer with
/// accepted | status | result | cancelled | stats | pong | error, plus
/// asynchronous "event" frames (progress / terminal / shutdown) for
/// watched jobs.
///
/// This header is the single builder/parser both the server and
/// tools/certa_client use — the frames cannot drift apart.

/// Stable machine-readable error codes (`"code"` in error frames).
/// Human text rides alongside in `"message"`; clients branch on the
/// code only.
inline constexpr char kErrBadJson[] = "bad_json";
inline constexpr char kErrBadFrame[] = "bad_frame";
inline constexpr char kErrBadRequest[] = "bad_request";
inline constexpr char kErrUnsupportedSchema[] = "unsupported_schema";
inline constexpr char kErrRejectedQueueFull[] = "rejected_queue_full";
inline constexpr char kErrRejectedClosed[] = "rejected_closed";
inline constexpr char kErrRejectedDeadline[] = "rejected_deadline";
inline constexpr char kErrUnknownJob[] = "unknown_job";
inline constexpr char kErrNotComplete[] = "not_complete";
inline constexpr char kErrFrameTooLarge[] = "frame_too_large";
inline constexpr char kErrTooManyConnections[] = "too_many_connections";
inline constexpr char kErrShuttingDown[] = "shutting_down";

/// One parsed client frame.
struct ClientFrame {
  enum class Type { kSubmit, kStatus, kResult, kCancel, kStats, kPing };
  Type type = Type::kPing;
  /// Valid for kSubmit.
  api::ExplainRequest request;
  /// kSubmit: stream progress/terminal events for this job to the
  /// submitting connection (default true).
  bool watch = true;
  /// Valid for kStatus / kResult / kCancel.
  std::string job_id;
};

/// Parses one frame line (without the trailing newline). On failure
/// returns false and sets *code to one of the kErr constants and
/// *error to the human-readable message.
bool ParseClientFrame(std::string_view line, ClientFrame* frame,
                      std::string* code, std::string* error);

// -- server-side frame builders (each returns one full line, '\n'
// included) --

std::string ErrorFrame(const std::string& code, const std::string& message,
                       const std::string& job_id = "");
std::string AcceptedFrame(const std::string& job_id);
std::string StatusFrame(const std::string& job_id,
                        service::JobQueryState state,
                        const service::JobOutcome& outcome);
/// `result_json` is the stored result.json document, spliced verbatim.
std::string ResultFrame(const std::string& job_id,
                        const std::string& result_json);
std::string CancelledFrame(const std::string& job_id);
std::string PongFrame();
/// Runner counters + server-side connection/byte counters.
struct ServerStats {
  long long connections_accepted = 0;
  long long connections_active = 0;
  long long frames_in = 0;
  long long bytes_in = 0;
  long long bytes_out = 0;
  long long events_dropped = 0;
  long long slow_reader_closes = 0;
};
/// `fleet_json`, when non-empty, is a pre-serialized JSON object
/// spliced in verbatim as a "fleet" section — the master's fan-in of
/// every worker's runner/server counters (eventually consistent; see
/// docs/SERVICE.md). Single-process servers leave it empty and emit no
/// "fleet" key, so clients can distinguish the two deployments.
std::string StatsFrame(const service::JobRunner::Counters& counters,
                       const ServerStats& stats,
                       const std::string& fleet_json = "");
std::string ProgressEventFrame(const std::string& job_id,
                               const std::string& phase, int triangles_total,
                               int triangles_tagged,
                               long long predictions_performed,
                               long long total_flips);
std::string TerminalEventFrame(const service::JobOutcome& outcome);
std::string ShutdownEventFrame();

// -- client-side frame builders (tools/certa_client, tests) --

std::string SubmitFrame(const api::ExplainRequest& request, bool watch);
std::string StatusRequestFrame(const std::string& job_id);
std::string ResultRequestFrame(const std::string& job_id);
std::string CancelRequestFrame(const std::string& job_id);
std::string StatsRequestFrame();
std::string PingFrame();

}  // namespace certa::net

#endif  // CERTA_NET_WIRE_H_
