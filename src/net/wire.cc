#include "net/wire.h"

#include "util/json_writer.h"

namespace certa::net {

namespace {

/// Every frame opens the same way: {"schema_version":1,"type":...
void BeginFrame(JsonWriter* json, std::string_view type) {
  json->BeginObject();
  json->Key("schema_version");
  json->Int(api::kSchemaVersion);
  json->Key("type");
  json->String(type);
}

std::string Finish(JsonWriter* json) {
  json->EndObject();
  return json->str() + "\n";
}

}  // namespace

bool ParseClientFrame(std::string_view line, ClientFrame* frame,
                      std::string* code, std::string* error) {
  JsonValue value;
  std::string parse_error;
  if (!JsonValue::Parse(line, &value, &parse_error)) {
    *code = kErrBadJson;
    *error = "frame is not valid JSON: " + parse_error;
    return false;
  }
  if (!value.is_object()) {
    *code = kErrBadFrame;
    *error = "frame must be a JSON object";
    return false;
  }
  // The frame-level schema_version gate comes before anything else so a
  // future client gets "speak v1" instead of an unknown-field error.
  if (const JsonValue* version = value.Find("schema_version")) {
    if (!version->is_integer()) {
      *code = kErrBadFrame;
      *error = "schema_version must be an integer";
      return false;
    }
    if (version->int_value() > api::kSchemaVersion) {
      *code = kErrUnsupportedSchema;
      *error = "frame speaks schema_version " +
               std::to_string(version->int_value()) +
               "; this server supports <= " +
               std::to_string(api::kSchemaVersion);
      return false;
    }
  }
  const JsonValue* type = value.Find("type");
  if (type == nullptr || !type->is_string()) {
    *code = kErrBadFrame;
    *error = "frame is missing a string \"type\"";
    return false;
  }
  const std::string& name = type->string_value();
  ClientFrame parsed;
  if (name == "submit") {
    parsed.type = ClientFrame::Type::kSubmit;
    const JsonValue* request = value.Find("request");
    if (request == nullptr || !request->is_object()) {
      *code = kErrBadFrame;
      *error = "submit frame is missing a \"request\" object";
      return false;
    }
    std::string request_error;
    if (!api::FromJson(*request, &parsed.request, &request_error)) {
      // Distinguish "future schema" (retryable against a newer server)
      // from "malformed request".
      *code = request_error.find("schema_version") != std::string::npos
                  ? kErrUnsupportedSchema
                  : kErrBadRequest;
      *error = request_error;
      return false;
    }
    if (const JsonValue* watch = value.Find("watch")) {
      if (!watch->is_bool()) {
        *code = kErrBadFrame;
        *error = "\"watch\" must be a boolean";
        return false;
      }
      parsed.watch = watch->bool_value();
    }
  } else if (name == "status" || name == "result" || name == "cancel") {
    parsed.type = name == "status"   ? ClientFrame::Type::kStatus
                  : name == "result" ? ClientFrame::Type::kResult
                                     : ClientFrame::Type::kCancel;
    const JsonValue* job = value.Find("job_id");
    if (job == nullptr || !job->is_string() || job->string_value().empty()) {
      *code = kErrBadFrame;
      *error = "\"" + name + "\" frame is missing a non-empty \"job_id\"";
      return false;
    }
    parsed.job_id = job->string_value();
  } else if (name == "stats") {
    parsed.type = ClientFrame::Type::kStats;
  } else if (name == "ping") {
    parsed.type = ClientFrame::Type::kPing;
  } else {
    *code = kErrBadFrame;
    *error = "unknown frame type \"" + name + "\"";
    return false;
  }
  *frame = parsed;
  return true;
}

std::string ErrorFrame(const std::string& code, const std::string& message,
                       const std::string& job_id) {
  JsonWriter json;
  BeginFrame(&json, "error");
  json.Key("code");
  json.String(code);
  json.Key("message");
  json.String(message);
  if (!job_id.empty()) {
    json.Key("job_id");
    json.String(job_id);
  }
  return Finish(&json);
}

std::string AcceptedFrame(const std::string& job_id) {
  JsonWriter json;
  BeginFrame(&json, "accepted");
  json.Key("job_id");
  json.String(job_id);
  return Finish(&json);
}

std::string StatusFrame(const std::string& job_id,
                        service::JobQueryState state,
                        const service::JobOutcome& outcome) {
  JsonWriter json;
  BeginFrame(&json, "status");
  json.Key("job_id");
  json.String(job_id);
  json.Key("state");
  json.String(service::JobQueryStateName(state));
  const bool terminal = state == service::JobQueryState::kComplete ||
                        state == service::JobQueryState::kParked ||
                        state == service::JobQueryState::kFailed;
  if (terminal) {
    json.Key("resumed");
    json.Bool(outcome.resumed);
    json.Key("replayed_scores");
    json.Int(outcome.replayed_scores);
    json.Key("fresh_scores");
    json.Int(outcome.fresh_scores);
    if (!outcome.error.empty()) {
      json.Key("error");
      json.String(outcome.error);
    }
  }
  return Finish(&json);
}

std::string ResultFrame(const std::string& job_id,
                        const std::string& result_json) {
  JsonWriter json;
  BeginFrame(&json, "result");
  json.Key("job_id");
  json.String(job_id);
  json.Key("result");
  json.Raw(result_json);
  return Finish(&json);
}

std::string CancelledFrame(const std::string& job_id) {
  JsonWriter json;
  BeginFrame(&json, "cancelled");
  json.Key("job_id");
  json.String(job_id);
  return Finish(&json);
}

std::string PongFrame() {
  JsonWriter json;
  BeginFrame(&json, "pong");
  return Finish(&json);
}

std::string StatsFrame(const service::JobRunner::Counters& counters,
                       const ServerStats& stats,
                       const std::string& fleet_json) {
  JsonWriter json;
  BeginFrame(&json, "stats");
  json.Key("runner");
  json.BeginObject();
  json.Key("submitted");
  json.Int(counters.submitted);
  json.Key("accepted");
  json.Int(counters.accepted);
  json.Key("rejected_closed");
  json.Int(counters.rejected_closed);
  json.Key("rejected_queue_full");
  json.Int(counters.rejected_queue_full);
  json.Key("rejected_deadline");
  json.Int(counters.rejected_deadline);
  json.Key("completed");
  json.Int(counters.completed);
  json.Key("parked");
  json.Int(counters.parked);
  json.Key("failed");
  json.Int(counters.failed);
  json.EndObject();
  json.Key("server");
  json.BeginObject();
  json.Key("connections_accepted");
  json.Int(stats.connections_accepted);
  json.Key("connections_active");
  json.Int(stats.connections_active);
  json.Key("frames_in");
  json.Int(stats.frames_in);
  json.Key("bytes_in");
  json.Int(stats.bytes_in);
  json.Key("bytes_out");
  json.Int(stats.bytes_out);
  json.Key("events_dropped");
  json.Int(stats.events_dropped);
  json.Key("slow_reader_closes");
  json.Int(stats.slow_reader_closes);
  json.EndObject();
  if (!fleet_json.empty()) {
    json.Key("fleet");
    json.Raw(fleet_json);
  }
  return Finish(&json);
}

std::string ProgressEventFrame(const std::string& job_id,
                               const std::string& phase, int triangles_total,
                               int triangles_tagged,
                               long long predictions_performed,
                               long long total_flips) {
  JsonWriter json;
  BeginFrame(&json, "event");
  json.Key("event");
  json.String("progress");
  json.Key("job_id");
  json.String(job_id);
  json.Key("phase");
  json.String(phase);
  json.Key("triangles_total");
  json.Int(triangles_total);
  json.Key("triangles_tagged");
  json.Int(triangles_tagged);
  json.Key("predictions_performed");
  json.Int(predictions_performed);
  json.Key("total_flips");
  json.Int(total_flips);
  return Finish(&json);
}

std::string TerminalEventFrame(const service::JobOutcome& outcome) {
  JsonWriter json;
  BeginFrame(&json, "event");
  json.Key("event");
  json.String("terminal");
  json.Key("job_id");
  json.String(outcome.job_id);
  json.Key("state");
  json.String(service::JobStateName(outcome.state));
  json.Key("resumed");
  json.Bool(outcome.resumed);
  json.Key("replayed_scores");
  json.Int(outcome.replayed_scores);
  json.Key("fresh_scores");
  json.Int(outcome.fresh_scores);
  if (!outcome.error.empty()) {
    json.Key("error");
    json.String(outcome.error);
  }
  return Finish(&json);
}

std::string ShutdownEventFrame() {
  JsonWriter json;
  BeginFrame(&json, "event");
  json.Key("event");
  json.String("shutdown");
  return Finish(&json);
}

std::string SubmitFrame(const api::ExplainRequest& request, bool watch) {
  JsonWriter json;
  BeginFrame(&json, "submit");
  json.Key("request");
  json.Raw(request.ToJson());
  json.Key("watch");
  json.Bool(watch);
  return Finish(&json);
}

namespace {
std::string JobFrame(std::string_view type, const std::string& job_id) {
  JsonWriter json;
  BeginFrame(&json, type);
  json.Key("job_id");
  json.String(job_id);
  return Finish(&json);
}
}  // namespace

std::string StatusRequestFrame(const std::string& job_id) {
  return JobFrame("status", job_id);
}

std::string ResultRequestFrame(const std::string& job_id) {
  return JobFrame("result", job_id);
}

std::string CancelRequestFrame(const std::string& job_id) {
  return JobFrame("cancel", job_id);
}

std::string StatsRequestFrame() {
  JsonWriter json;
  BeginFrame(&json, "stats");
  return Finish(&json);
}

std::string PingFrame() {
  JsonWriter json;
  BeginFrame(&json, "ping");
  return Finish(&json);
}

}  // namespace certa::net
