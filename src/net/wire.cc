#include "net/wire.h"

#include "util/json_writer.h"

namespace certa::net {

namespace {

/// Every frame opens the same way: {"schema_version":N,"type":...
/// N is the connection's negotiated version — a v1 conversation gets
/// frames stamped 1, bit-identical to a v1 server's.
void BeginFrame(JsonWriter* json, std::string_view type, int version) {
  json->BeginObject();
  json->Key("schema_version");
  json->Int(version);
  json->Key("type");
  json->String(type);
}

std::string Finish(JsonWriter* json) {
  json->EndObject();
  return json->str() + "\n";
}

}  // namespace

bool ParseClientFrame(std::string_view line, ClientFrame* frame,
                      std::string* code, std::string* error) {
  JsonValue value;
  std::string parse_error;
  if (!JsonValue::Parse(line, &value, &parse_error)) {
    *code = kErrBadJson;
    *error = "frame is not valid JSON: " + parse_error;
    return false;
  }
  if (!value.is_object()) {
    *code = kErrBadFrame;
    *error = "frame must be a JSON object";
    return false;
  }
  // The frame-level schema_version gate comes before anything else so a
  // future client gets "speak v1/v2" instead of an unknown-field error.
  ClientFrame parsed;
  if (const JsonValue* version = value.Find("schema_version")) {
    if (!version->is_integer()) {
      *code = kErrBadFrame;
      *error = "schema_version must be an integer";
      return false;
    }
    if (version->int_value() > api::kSchemaVersion) {
      *code = kErrUnsupportedSchema;
      *error = "frame speaks schema_version " +
               std::to_string(version->int_value()) +
               "; this server supports <= " +
               std::to_string(api::kSchemaVersion);
      return false;
    }
    if (version->int_value() < 1) {
      *code = kErrBadFrame;
      *error = "schema_version must be >= 1";
      return false;
    }
    parsed.schema_version = static_cast<int>(version->int_value());
  }
  const JsonValue* type = value.Find("type");
  if (type == nullptr || !type->is_string()) {
    *code = kErrBadFrame;
    *error = "frame is missing a string \"type\"";
    return false;
  }
  const std::string& name = type->string_value();
  if (name == "submit") {
    parsed.type = ClientFrame::Type::kSubmit;
    const JsonValue* request = value.Find("request");
    if (request == nullptr || !request->is_object()) {
      *code = kErrBadFrame;
      *error = "submit frame is missing a \"request\" object";
      return false;
    }
    std::string request_error;
    if (!api::FromJson(*request, &parsed.request, &request_error,
                       &parsed.deprecation_notes)) {
      // Distinguish "future schema" (retryable against a newer server)
      // from "malformed request" — only the version gate itself says
      // "speaks schema_version"; key-strictness errors mention the
      // version too but are the client's bug, not a version skew.
      *code = request_error.find("speaks schema_version") != std::string::npos
                  ? kErrUnsupportedSchema
                  : kErrBadRequest;
      *error = request_error;
      return false;
    }
    if (const JsonValue* watch = value.Find("watch")) {
      if (!watch->is_bool()) {
        *code = kErrBadFrame;
        *error = "\"watch\" must be a boolean";
        return false;
      }
      parsed.watch = watch->bool_value();
    }
  } else if (name == "upsert" || name == "remove" || name == "match" ||
             name == "invalidations") {
    if (parsed.schema_version < 2) {
      *code = kErrUnsupportedSchema;
      *error = "\"" + name +
               "\" is a schema_version 2 verb; declare "
               "\"schema_version\":2 in the frame";
      return false;
    }
    if (name == "invalidations") {
      parsed.type = ClientFrame::Type::kInvalidations;
      if (const JsonValue* subscribe = value.Find("subscribe")) {
        if (!subscribe->is_bool()) {
          *code = kErrBadFrame;
          *error = "\"subscribe\" must be a boolean";
          return false;
        }
        parsed.subscribe = subscribe->bool_value();
      }
    } else {
      parsed.type = name == "upsert"   ? ClientFrame::Type::kUpsert
                    : name == "remove" ? ClientFrame::Type::kRemove
                                       : ClientFrame::Type::kMatch;
      const JsonValue* dataset = value.Find("dataset");
      if (dataset == nullptr || !dataset->is_string() ||
          dataset->string_value().empty()) {
        *code = kErrBadFrame;
        *error =
            "\"" + name + "\" frame is missing a non-empty \"dataset\"";
        return false;
      }
      parsed.dataset = dataset->string_value();
      if (const JsonValue* data_dir = value.Find("data_dir")) {
        if (!data_dir->is_string()) {
          *code = kErrBadFrame;
          *error = "\"data_dir\" must be a string";
          return false;
        }
        parsed.data_dir = data_dir->string_value();
      }
      const JsonValue* side = value.Find("side");
      if (side == nullptr || !side->is_integer() ||
          side->int_value() < 0 || side->int_value() > 1) {
        *code = kErrBadFrame;
        *error = "\"" + name +
                 "\" frame needs \"side\": 0 (left) or 1 (right)";
        return false;
      }
      parsed.side = static_cast<int>(side->int_value());
      if (name == "upsert" || name == "remove") {
        const JsonValue* id = value.Find("id");
        if (id == nullptr || !id->is_integer() || id->int_value() < 0) {
          *code = kErrBadFrame;
          *error = "\"" + name + "\" frame needs an integer \"id\" >= 0";
          return false;
        }
        parsed.record_id = static_cast<int>(id->int_value());
      }
      if (name == "upsert" || name == "match") {
        const JsonValue* values = value.Find("values");
        if (values == nullptr || !values->is_array()) {
          *code = kErrBadFrame;
          *error = "\"" + name + "\" frame needs a \"values\" array";
          return false;
        }
        for (const JsonValue& entry : values->array_items()) {
          if (!entry.is_string()) {
            *code = kErrBadFrame;
            *error = "\"values\" entries must be strings";
            return false;
          }
          parsed.values.push_back(entry.string_value());
        }
      }
      if (name == "match") {
        if (const JsonValue* top_k = value.Find("top_k")) {
          if (!top_k->is_integer() || top_k->int_value() < 0) {
            *code = kErrBadFrame;
            *error = "\"top_k\" must be an integer >= 0";
            return false;
          }
          parsed.top_k = static_cast<int>(top_k->int_value());
        }
      }
    }
  } else if (name == "status" || name == "result" || name == "cancel") {
    parsed.type = name == "status"   ? ClientFrame::Type::kStatus
                  : name == "result" ? ClientFrame::Type::kResult
                                     : ClientFrame::Type::kCancel;
    const JsonValue* job = value.Find("job_id");
    if (job == nullptr || !job->is_string() || job->string_value().empty()) {
      *code = kErrBadFrame;
      *error = "\"" + name + "\" frame is missing a non-empty \"job_id\"";
      return false;
    }
    parsed.job_id = job->string_value();
  } else if (name == "stats") {
    parsed.type = ClientFrame::Type::kStats;
  } else if (name == "ping") {
    parsed.type = ClientFrame::Type::kPing;
  } else {
    *code = kErrBadFrame;
    *error = "unknown frame type \"" + name + "\"";
    return false;
  }
  *frame = parsed;
  return true;
}

std::string ErrorFrame(const std::string& code, const std::string& message,
                       const std::string& job_id, int version) {
  JsonWriter json;
  BeginFrame(&json, "error", version);
  json.Key("code");
  json.String(code);
  json.Key("message");
  json.String(message);
  if (!job_id.empty()) {
    json.Key("job_id");
    json.String(job_id);
  }
  return Finish(&json);
}

std::string AcceptedFrame(const std::string& job_id,
                          const std::string& note, int version) {
  JsonWriter json;
  BeginFrame(&json, "accepted", version);
  json.Key("job_id");
  json.String(job_id);
  if (!note.empty()) {
    json.Key("note");
    json.String(note);
  }
  return Finish(&json);
}

std::string StatusFrame(const std::string& job_id,
                        service::JobQueryState state,
                        const service::JobOutcome& outcome, int version) {
  JsonWriter json;
  BeginFrame(&json, "status", version);
  json.Key("job_id");
  json.String(job_id);
  json.Key("state");
  json.String(service::JobQueryStateName(state));
  const bool terminal = state == service::JobQueryState::kComplete ||
                        state == service::JobQueryState::kParked ||
                        state == service::JobQueryState::kFailed;
  if (terminal) {
    json.Key("resumed");
    json.Bool(outcome.resumed);
    json.Key("replayed_scores");
    json.Int(outcome.replayed_scores);
    json.Key("fresh_scores");
    json.Int(outcome.fresh_scores);
    if (!outcome.error.empty()) {
      json.Key("error");
      json.String(outcome.error);
    }
  }
  return Finish(&json);
}

std::string ResultFrame(const std::string& job_id,
                        const std::string& result_json, int version) {
  JsonWriter json;
  BeginFrame(&json, "result", version);
  json.Key("job_id");
  json.String(job_id);
  json.Key("result");
  json.Raw(result_json);
  return Finish(&json);
}

std::string CancelledFrame(const std::string& job_id, int version) {
  JsonWriter json;
  BeginFrame(&json, "cancelled", version);
  json.Key("job_id");
  json.String(job_id);
  return Finish(&json);
}

std::string PongFrame(const Capabilities& capabilities, int version) {
  JsonWriter json;
  BeginFrame(&json, "pong", version);
  // Capabilities ride on every pong, at every negotiated version, so a
  // v1 client can feature-detect v2 without tripping over an unknown
  // verb first.
  json.Key("capabilities");
  json.BeginObject();
  json.Key("schema_versions");
  json.BeginArray();
  for (int v = 1; v <= api::kSchemaVersion; ++v) json.Int(v);
  json.EndArray();
  json.Key("verbs");
  json.BeginArray();
  for (const char* verb :
       {"submit", "status", "result", "cancel", "stats", "ping"}) {
    json.String(verb);
  }
  if (capabilities.streaming) {
    for (const char* verb : {"upsert", "remove", "match", "invalidations"}) {
      json.String(verb);
    }
  }
  json.EndArray();
  json.Key("workers");
  json.Int(capabilities.workers);
  json.Key("store_mode");
  json.String(capabilities.store_mode);
  json.Key("streaming");
  json.Bool(capabilities.streaming);
  json.EndObject();
  return Finish(&json);
}

std::string StatsFrame(const service::JobRunner::Counters& counters,
                       const ServerStats& stats,
                       const std::string& fleet_json,
                       const std::string& stream_json, int version) {
  JsonWriter json;
  BeginFrame(&json, "stats", version);
  json.Key("runner");
  json.BeginObject();
  json.Key("submitted");
  json.Int(counters.submitted);
  json.Key("accepted");
  json.Int(counters.accepted);
  json.Key("rejected_closed");
  json.Int(counters.rejected_closed);
  json.Key("rejected_queue_full");
  json.Int(counters.rejected_queue_full);
  json.Key("rejected_deadline");
  json.Int(counters.rejected_deadline);
  json.Key("completed");
  json.Int(counters.completed);
  json.Key("parked");
  json.Int(counters.parked);
  json.Key("failed");
  json.Int(counters.failed);
  json.EndObject();
  json.Key("server");
  json.BeginObject();
  json.Key("connections_accepted");
  json.Int(stats.connections_accepted);
  json.Key("connections_active");
  json.Int(stats.connections_active);
  json.Key("frames_in");
  json.Int(stats.frames_in);
  json.Key("bytes_in");
  json.Int(stats.bytes_in);
  json.Key("bytes_out");
  json.Int(stats.bytes_out);
  json.Key("events_dropped");
  json.Int(stats.events_dropped);
  json.Key("slow_reader_closes");
  json.Int(stats.slow_reader_closes);
  json.EndObject();
  if (!stream_json.empty()) {
    json.Key("stream");
    json.Raw(stream_json);
  }
  if (!fleet_json.empty()) {
    json.Key("fleet");
    json.Raw(fleet_json);
  }
  return Finish(&json);
}

std::string ProgressEventFrame(const std::string& job_id,
                               const std::string& phase, int triangles_total,
                               int triangles_tagged,
                               long long predictions_performed,
                               long long total_flips, int version) {
  JsonWriter json;
  BeginFrame(&json, "event", version);
  json.Key("event");
  json.String("progress");
  json.Key("job_id");
  json.String(job_id);
  json.Key("phase");
  json.String(phase);
  json.Key("triangles_total");
  json.Int(triangles_total);
  json.Key("triangles_tagged");
  json.Int(triangles_tagged);
  json.Key("predictions_performed");
  json.Int(predictions_performed);
  json.Key("total_flips");
  json.Int(total_flips);
  return Finish(&json);
}

std::string TerminalEventFrame(const service::JobOutcome& outcome,
                               int version) {
  JsonWriter json;
  BeginFrame(&json, "event", version);
  json.Key("event");
  json.String("terminal");
  json.Key("job_id");
  json.String(outcome.job_id);
  json.Key("state");
  json.String(service::JobStateName(outcome.state));
  json.Key("resumed");
  json.Bool(outcome.resumed);
  json.Key("replayed_scores");
  json.Int(outcome.replayed_scores);
  json.Key("fresh_scores");
  json.Int(outcome.fresh_scores);
  if (!outcome.error.empty()) {
    json.Key("error");
    json.String(outcome.error);
  }
  return Finish(&json);
}

std::string ShutdownEventFrame(int version) {
  JsonWriter json;
  BeginFrame(&json, "event", version);
  json.Key("event");
  json.String("shutdown");
  return Finish(&json);
}

std::string UpsertedFrame(const std::string& dataset, int side,
                          int record_id, long long seq, int slot,
                          bool created, int version) {
  JsonWriter json;
  BeginFrame(&json, "upserted", version);
  json.Key("dataset");
  json.String(dataset);
  json.Key("side");
  json.Int(side);
  json.Key("id");
  json.Int(record_id);
  json.Key("seq");
  json.Int(seq);
  json.Key("slot");
  json.Int(slot);
  json.Key("created");
  json.Bool(created);
  return Finish(&json);
}

std::string RemovedFrame(const std::string& dataset, int side,
                         int record_id, long long seq, int slot,
                         bool removed, int version) {
  JsonWriter json;
  BeginFrame(&json, "removed", version);
  json.Key("dataset");
  json.String(dataset);
  json.Key("side");
  json.Int(side);
  json.Key("id");
  json.Int(record_id);
  json.Key("seq");
  json.Int(seq);
  json.Key("slot");
  json.Int(slot);
  json.Key("removed");
  json.Bool(removed);
  return Finish(&json);
}

std::string MatchFrame(const std::string& dataset, int side,
                       const std::vector<WireMatchCandidate>& candidates,
                       int version) {
  JsonWriter json;
  BeginFrame(&json, "match", version);
  json.Key("dataset");
  json.String(dataset);
  json.Key("side");
  json.Int(side);
  json.Key("candidates");
  json.BeginArray();
  for (const WireMatchCandidate& candidate : candidates) {
    json.BeginObject();
    json.Key("id");
    json.Int(candidate.id);
    json.Key("overlap");
    json.Int(candidate.overlap);
    json.Key("values");
    json.BeginArray();
    for (const std::string& value : candidate.values) json.String(value);
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();
  return Finish(&json);
}

std::string InvalidationsFrame(bool subscribed,
                               const std::vector<std::string>& stale_jobs,
                               int version) {
  JsonWriter json;
  BeginFrame(&json, "invalidations", version);
  json.Key("subscribed");
  json.Bool(subscribed);
  json.Key("stale");
  json.BeginArray();
  for (const std::string& job_id : stale_jobs) json.String(job_id);
  json.EndArray();
  return Finish(&json);
}

std::string InvalidationEventFrame(const std::string& job_id,
                                   const std::string& dataset, int side,
                                   int record_id, int version) {
  JsonWriter json;
  BeginFrame(&json, "event", version);
  json.Key("event");
  json.String("invalidation");
  json.Key("job_id");
  json.String(job_id);
  json.Key("dataset");
  json.String(dataset);
  json.Key("side");
  json.Int(side);
  json.Key("id");
  json.Int(record_id);
  return Finish(&json);
}

std::string SubmitFrame(const api::ExplainRequest& request, bool watch) {
  JsonWriter json;
  BeginFrame(&json, "submit", request.schema_version);
  json.Key("request");
  json.Raw(request.ToJson());
  json.Key("watch");
  json.Bool(watch);
  return Finish(&json);
}

namespace {
/// Client frames declare the client's own schema version: a
/// current-build client speaks kSchemaVersion on every verb, so its
/// connections negotiate consistently whichever frame arrives first.
/// (v1-on-the-wire compatibility is exercised with literal v1 frames —
/// see the golden corpus in tests/stream_service_test.cc.)
std::string JobFrame(std::string_view type, const std::string& job_id) {
  JsonWriter json;
  BeginFrame(&json, type, api::kSchemaVersion);
  json.Key("job_id");
  json.String(job_id);
  return Finish(&json);
}
}  // namespace

std::string StatusRequestFrame(const std::string& job_id) {
  return JobFrame("status", job_id);
}

std::string ResultRequestFrame(const std::string& job_id) {
  return JobFrame("result", job_id);
}

std::string CancelRequestFrame(const std::string& job_id) {
  return JobFrame("cancel", job_id);
}

std::string StatsRequestFrame() {
  JsonWriter json;
  BeginFrame(&json, "stats", api::kSchemaVersion);
  return Finish(&json);
}

std::string PingFrame() {
  JsonWriter json;
  BeginFrame(&json, "ping", api::kSchemaVersion);
  return Finish(&json);
}

namespace {
/// Opens a v2 streaming request frame (the verbs require the frame to
/// declare schema_version 2).
void BeginStreamRequest(JsonWriter* json, std::string_view type,
                        const std::string& dataset,
                        const std::string& data_dir, int side) {
  BeginFrame(json, type, 2);
  json->Key("dataset");
  json->String(dataset);
  if (!data_dir.empty()) {
    json->Key("data_dir");
    json->String(data_dir);
  }
  json->Key("side");
  json->Int(side);
}
}  // namespace

std::string UpsertRequestFrame(const std::string& dataset,
                               const std::string& data_dir, int side,
                               int record_id,
                               const std::vector<std::string>& values) {
  JsonWriter json;
  BeginStreamRequest(&json, "upsert", dataset, data_dir, side);
  json.Key("id");
  json.Int(record_id);
  json.Key("values");
  json.BeginArray();
  for (const std::string& value : values) json.String(value);
  json.EndArray();
  return Finish(&json);
}

std::string RemoveRequestFrame(const std::string& dataset,
                               const std::string& data_dir, int side,
                               int record_id) {
  JsonWriter json;
  BeginStreamRequest(&json, "remove", dataset, data_dir, side);
  json.Key("id");
  json.Int(record_id);
  return Finish(&json);
}

std::string MatchRequestFrame(const std::string& dataset,
                              const std::string& data_dir, int side,
                              const std::vector<std::string>& probe_values,
                              int top_k) {
  JsonWriter json;
  BeginStreamRequest(&json, "match", dataset, data_dir, side);
  json.Key("values");
  json.BeginArray();
  for (const std::string& value : probe_values) json.String(value);
  json.EndArray();
  json.Key("top_k");
  json.Int(top_k);
  return Finish(&json);
}

std::string InvalidationsRequestFrame(bool subscribe) {
  JsonWriter json;
  BeginFrame(&json, "invalidations", 2);
  json.Key("subscribe");
  json.Bool(subscribe);
  return Finish(&json);
}

}  // namespace certa::net
