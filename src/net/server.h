#ifndef CERTA_NET_SERVER_H_
#define CERTA_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/wire.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/job_runner.h"
#include "service/stream_coordinator.h"

namespace certa::net {

/// TCP front-end configuration. The server *owns* its JobRunner (built
/// from `runner`) so the progress/terminal hooks are wired before the
/// first worker can produce an event.
struct NetServerOptions {
  /// Loopback by default: this is an operator-local control socket, not
  /// an internet-facing service.
  std::string host = "127.0.0.1";
  /// 0 = ephemeral (kernel-assigned; read back via port()) — how tests
  /// avoid port collisions.
  int port = 0;
  /// Accept backlog + concurrent connection cap; the listener answers
  /// over-limit connects with a too_many_connections error, then closes.
  int max_connections = 64;
  /// One frame line may not exceed this (submit requests are small;
  /// anything bigger is a confused or hostile client).
  size_t max_frame_bytes = 64 * 1024;
  /// Per-connection outbound buffer cap. Droppable frames (progress
  /// events) are shed first; if a required response still does not fit,
  /// the connection is closed as a slow reader. Protects the server's
  /// memory from clients that stop reading.
  size_t max_write_buffer = 1 << 20;
  /// Poll timeout — bounds shutdown-flag latency when no fd is ready.
  int poll_interval_ms = 50;
  /// Fleet mode: bind with SO_REUSEPORT so N worker processes can each
  /// own a listener on the same port and let the kernel spread accepts
  /// across them. Start() fails if the option cannot be set — the
  /// master then falls back to inherited_listen_fd.
  bool reuse_port = false;
  /// Fleet fallback mode: adopt this already-bound, already-listening
  /// socket (inherited across fork from the master) instead of creating
  /// one. Every worker accepts from the shared queue. Takes precedence
  /// over reuse_port. The server owns (closes) the fd.
  int inherited_listen_fd = -1;
  /// Sibling workers' job roots. status/result for a job this runner
  /// has never seen fall back to scanning these partitions on disk —
  /// checkpoints and result.json are the durable truth, so a client
  /// reconnecting into a different worker after a restart still gets
  /// its answer. The local runner.job_root is always checked first.
  std::vector<std::string> peer_job_roots;
  /// External stop flag polled every loop iteration (the CLI passes
  /// service::ShutdownFlag() so SIGTERM starts the drain). May be null.
  const std::atomic<bool>* stop_flag = nullptr;
  /// Drain policy when stop_flag ends the loop: false parks running
  /// jobs resumable and exits promptly (the signal semantics of the
  /// stdin serve loop); true finishes them first. Stop(drain) always
  /// decides for itself.
  bool drain_on_stop_flag = false;
  /// Streaming coordinator (not owned; nullptr = streaming off — the
  /// v2 verbs answer `streaming_unavailable`). The event loop absorbs
  /// sibling streams through it each beat and fans invalidation events
  /// out to subscribed connections. The caller typically also points
  /// runner.dataset_provider at it so jobs explain the live overlays.
  service::StreamCoordinator* stream = nullptr;
  /// Serving processes behind this endpoint, advertised in the ping
  /// `capabilities` block (fleet masters pass the fleet size).
  int fleet_workers = 1;
  /// Forwarded into the owned JobRunner.
  service::JobRunnerOptions runner;
};

/// Poll(2)-based, single-threaded socket front-end over the durable
/// JobRunner. One event-loop thread owns every socket; worker threads
/// never touch a connection — they hand events over through a
/// mutex-guarded queue plus a self-pipe wakeup, and the loop fans them
/// out to watching connections.
///
/// Overload policy matches the runner's (reject-new-before-
/// degrade-running): admission rejections surface as stable error
/// codes, progress events are shed before responses, and a slow reader
/// is disconnected rather than allowed to balloon server memory.
///
/// Shutdown (Stop or stop_flag): the listener closes first so no new
/// work arrives, every connection gets a shutdown event and a flush
/// window, then the runner drains or parks. Every admitted job ends
/// complete or resumable-on-disk — the socket layer adds no new way to
/// lose work.
class NetServer {
 public:
  explicit NetServer(NetServerOptions options);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds + listens (and resolves an ephemeral port). False on error.
  bool Start(std::string* error);

  /// Runs the event loop on the calling thread until Stop() or the
  /// stop_flag fires, then performs the drain sequence. Requires
  /// Start().
  void Run();

  /// Start() + Run() on an internal thread — for tests and embedding.
  bool StartBackground(std::string* error);

  /// Requests shutdown: `drain` lets queued + running jobs finish;
  /// otherwise running jobs park (resumable) and queued jobs are parked
  /// back untouched. Async-signal-safe (flag + self-pipe write).
  /// Blocks until the loop exits only when called off the loop thread
  /// after StartBackground.
  void Stop(bool drain);

  /// The bound port (valid after Start).
  int port() const { return port_; }

  ServerStats stats() const;
  service::JobRunner& runner() { return *runner_; }

  /// Installs the latest fleet-wide aggregate (a serialized JSON
  /// object, broadcast by the master over the control channel) to be
  /// spliced into every stats response. Thread-safe; empty clears.
  void SetFleetStats(std::string fleet_json);

 private:
  /// Per-connection state machine: buffered reads until '\n', buffered
  /// writes drained on POLLOUT, watch-set membership for event fanout.
  struct Conn {
    int fd = -1;
    std::string read_buffer;
    std::string write_buffer;
    /// Frames already queued ahead of the first droppable byte can't be
    /// shed; progress events are appended with their offsets recorded
    /// so backpressure can drop them innermost-first.
    bool closing = false;  // flush write buffer, then close
    std::set<std::string> watched_jobs;
    /// Negotiated wire version: starts at 1, sticks at the highest
    /// schema_version any frame on this connection declared (never
    /// downgraded) — every reply is stamped with it, so v1 clients
    /// keep receiving v1-stamped frames from a v2 server.
    int schema_version = 1;
    /// A legacy-key deprecation note was already surfaced here (the
    /// once-per-connection cap on migration nudges).
    bool deprecation_noted = false;
    /// Subscribed to asynchronous invalidation events (v2
    /// `invalidations` verb).
    bool wants_invalidations = false;
  };

  /// Cross-thread event hand-off (worker → loop). Progress frames are
  /// coalesced per job: only the newest unsent snapshot survives.
  struct PendingEvents {
    std::map<std::string, std::string> progress;  // job_id → frame
    std::vector<std::string> terminal_frames;
    std::vector<std::string> terminal_job_ids;
  };

  void Loop();
  void AcceptNew();
  void HandleReadable(Conn* conn);
  void HandleWritable(Conn* conn);
  void HandleFrame(Conn* conn, std::string_view line);
  void HandleSubmit(Conn* conn, const ClientFrame& frame);
  void HandleStatus(Conn* conn, const std::string& job_id);
  void HandleResult(Conn* conn, const std::string& job_id);
  /// The v2 streaming verbs (options_.stream == nullptr answers
  /// `streaming_unavailable`).
  void HandleUpsert(Conn* conn, const ClientFrame& frame);
  void HandleRemove(Conn* conn, const ClientFrame& frame);
  void HandleMatch(Conn* conn, const ClientFrame& frame);
  void HandleInvalidations(Conn* conn, const ClientFrame& frame);
  /// `result` fetch for a job the coordinator marked stale: answers
  /// `stale_recomputing`, and — when the job dir is this runner's own
  /// partition and no recompute is in flight — re-submits the job from
  /// its checkpointed request (journal + content-hashed store keys make
  /// the recompute re-pay only scores whose records actually changed).
  void HandleStaleResult(Conn* conn, const std::string& job_id,
                         service::JobQueryState state);
  /// Fans invalidation events (droppable) out to subscribers.
  void BroadcastInvalidations(
      const std::vector<service::StreamCoordinator::Invalidation>& events);
  /// Looks `job_id` up on disk across the local job root and every
  /// peer partition. Returns the job dir that has a checkpoint (empty
  /// when none does); *state receives the checkpoint's lifecycle state.
  std::string FindJobOnDisk(const std::string& job_id,
                            std::string* state) const;
  /// Queues `frame` on `conn`, enforcing max_write_buffer. Droppable
  /// frames vanish under pressure; required ones close the slow reader.
  void QueueFrame(Conn* conn, const std::string& frame, bool droppable);
  void DrainEvents();
  void CloseConn(Conn* conn);
  void Wake();
  void BeginDrain(bool drain);

  NetServerOptions options_;
  std::unique_ptr<service::JobRunner> runner_;
  int listen_fd_ = -1;
  int port_ = 0;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> drain_on_stop_{true};
  std::atomic<bool> loop_done_{false};
  std::mutex events_mutex_;
  PendingEvents pending_;
  mutable std::mutex stats_mutex_;
  ServerStats stats_;
  mutable std::mutex fleet_stats_mutex_;
  std::string fleet_stats_json_;
  std::thread background_;
};

}  // namespace certa::net

#endif  // CERTA_NET_SERVER_H_
