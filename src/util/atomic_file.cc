#include "util/atomic_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

namespace certa::util {
namespace {

/// Directory component of `path` ("." when there is none) — the temp
/// file must live on the same filesystem for rename(2) to be atomic.
std::string DirOf(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

bool WriteAllAndSync(int fd, const std::string& content) {
  size_t written = 0;
  while (written < content.size()) {
    ssize_t n =
        ::write(fd, content.data() + written, content.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return ::fsync(fd) == 0;
}

/// fsync on the containing directory makes the rename itself durable;
/// a failure here is ignored (some filesystems refuse O_RDONLY dir
/// fsync) — the data file is already safe on disk.
void SyncDirectory(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

bool AtomicWriteFile(const std::string& path, const std::string& content) {
  if (path.empty()) return false;
  const std::string dir = DirOf(path);
  // getpid() in the name keeps concurrent writers of the same target
  // from clobbering each other's temp file; last rename wins.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long long>(::getpid()));
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  bool ok = WriteAllAndSync(fd, content);
  ok = (::close(fd) == 0) && ok;
  if (!ok) {
    ::unlink(tmp.c_str());
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  SyncDirectory(dir);
  return true;
}

bool ReadFileToString(const std::string& path, std::string* content) {
  std::ifstream input(path, std::ios::binary);
  if (!input) return false;
  std::ostringstream buffer;
  buffer << input.rdbuf();
  if (input.bad()) return false;
  *content = buffer.str();
  return true;
}

bool PathExists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::exists(path, ec);
}

bool EnsureDirectory(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  return std::filesystem::is_directory(path, ec);
}

}  // namespace certa::util
