#include "util/string_utils.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace certa {

std::string ToLowerAscii(std::string_view text) {
  std::string result(text);
  for (char& c : result) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return result;
}

std::string_view StripAsciiWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::vector<std::string> Split(std::string_view text, char delimiter) {
  std::vector<std::string> fields;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delimiter) {
      fields.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return fields;
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i > start) tokens.emplace_back(text.substr(start, i - start));
  }
  return tokens;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string result;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) result.append(separator);
    result.append(parts[i]);
  }
  return result;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string FormatDouble(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

bool ParseDouble(std::string_view text, double* out) {
  std::string owned(StripAsciiWhitespace(text));
  if (owned.empty()) return false;
  char* end = nullptr;
  double value = std::strtod(owned.c_str(), &end);
  if (end != owned.c_str() + owned.size()) return false;
  // strtod happily parses "nan"/"inf", but no caller here means them:
  // numeric flags compare against range bounds (every comparison with
  // NaN is false, so "nan" would sail through validation) and CSV cells
  // get cast to int (UB for non-finite values). The exporter already
  // maps non-finite to JSON null; rejecting them on the way in keeps
  // the two directions consistent — "NaN" stays the *string* missing
  // marker (text::IsMissing), never a numeric value.
  if (!std::isfinite(value)) return false;
  *out = value;
  return true;
}

bool ParseInt64(std::string_view text, long long* out) {
  std::string owned(StripAsciiWhitespace(text));
  if (owned.empty()) return false;
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(owned.c_str(), &end, 10);
  if (end != owned.c_str() + owned.size()) return false;
  if (errno == ERANGE) return false;
  *out = value;
  return true;
}

}  // namespace certa
