#ifndef CERTA_UTIL_ATOMIC_FILE_H_
#define CERTA_UTIL_ATOMIC_FILE_H_

#include <string>

namespace certa::util {

/// Crash-safe file I/O primitives used by the persistence layer
/// (src/persist) and every result/model exporter. The atomic writer
/// guarantees that a reader — including a reader racing a crash — sees
/// either the complete previous contents of `path` or the complete new
/// contents, never a prefix or interleaving.

/// Writes `content` to `path` atomically: the bytes go to a temp file
/// in the same directory, are fsync'd, then renamed over `path`, and
/// the directory entry is fsync'd so the rename survives power loss.
/// Returns false (and cleans up the temp file) on any I/O error, in
/// which case `path` is untouched.
bool AtomicWriteFile(const std::string& path, const std::string& content);

/// Reads the whole file into *content; false when it cannot be opened
/// or read. Binary-exact (no newline translation).
bool ReadFileToString(const std::string& path, std::string* content);

/// True when `path` names an existing file or directory.
bool PathExists(const std::string& path);

/// Creates the directory (and missing parents); true when it exists
/// afterwards.
bool EnsureDirectory(const std::string& path);

}  // namespace certa::util

#endif  // CERTA_UTIL_ATOMIC_FILE_H_
