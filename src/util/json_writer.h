#ifndef CERTA_UTIL_JSON_WRITER_H_
#define CERTA_UTIL_JSON_WRITER_H_

#include <string>
#include <string_view>

namespace certa {

/// Minimal streaming JSON writer: objects, arrays, scalar values, with
/// correct string escaping. Enough for exporting explanations to other
/// tools; intentionally not a parser.
///
///   JsonWriter json;
///   json.BeginObject();
///   json.Key("score");
///   json.Number(0.93);
///   json.Key("tags");
///   json.BeginArray();
///   json.String("match");
///   json.EndArray();
///   json.EndObject();
///   json.str();  // {"score":0.93,"tags":["match"]}
class JsonWriter {
 public:
  JsonWriter() = default;

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Object key; must be followed by exactly one value.
  void Key(std::string_view key);

  void String(std::string_view value);
  void Number(double value);
  void Int(long long value);
  void Bool(bool value);
  void Null();

  /// Splices `json` in verbatim as one value — for embedding an
  /// already-serialized document (a stored result.json, a request's
  /// canonical ToJson) without reparsing. The caller vouches that the
  /// text is exactly one valid JSON value.
  void Raw(std::string_view json);

  /// The serialized document so far.
  const std::string& str() const { return out_; }

 private:
  void MaybeComma();
  void AppendEscaped(std::string_view text);

  std::string out_;
  /// Whether a comma is needed before the next element at the current
  /// nesting position.
  bool needs_comma_ = false;
};

}  // namespace certa

#endif  // CERTA_UTIL_JSON_WRITER_H_
