#ifndef CERTA_UTIL_RANDOM_H_
#define CERTA_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace certa {

/// Deterministic pseudo-random generator (xoshiro256**), seeded via
/// SplitMix64. Every randomized component in the library takes one of
/// these explicitly so experiments reproduce bit-for-bit across runs.
class Rng {
 public:
  /// Seeds the four-word xoshiro state from `seed` with SplitMix64.
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t NextUint64();

  /// Uniform integer in [0, bound). `bound` must be positive. Uses
  /// rejection sampling, so the distribution is exactly uniform.
  uint64_t UniformUint64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int UniformInt(int lo, int hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard normal variate (Box-Muller; caches the second deviate).
  double Gaussian();

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// True with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Uniformly chosen index into a container of the given size (> 0).
  size_t Index(size_t size);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    if (values->empty()) return;
    for (size_t i = values->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformUint64(i + 1));
      std::swap((*values)[i], (*values)[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) without replacement
  /// (partial Fisher-Yates). If k >= n, returns all indices shuffled.
  std::vector<size_t> SampleIndices(size_t n, size_t k);

  /// Draws an index from an (unnormalized, non-negative) weight vector.
  /// Falls back to uniform choice when all weights are zero.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Derives an independent child generator; convenient for giving each
  /// record/experiment its own stream while keeping a single root seed.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace certa

#endif  // CERTA_UTIL_RANDOM_H_
