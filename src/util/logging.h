#ifndef CERTA_UTIL_LOGGING_H_
#define CERTA_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace certa {

/// Severity levels for the lightweight logging facility.
enum class LogSeverity {
  kInfo = 0,
  kWarning = 1,
  kError = 2,
  kFatal = 3,
};

namespace internal_logging {

/// Stream-style message collector. Flushes on destruction; aborts the
/// process for kFatal messages (used by the CHECK macros below).
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

/// Returns the minimum severity that is actually emitted. Controlled by
/// SetMinLogSeverity(); defaults to kInfo.
LogSeverity MinLogSeverity();

}  // namespace internal_logging

/// Raises the logging threshold, e.g., to silence kInfo chatter in tests.
void SetMinLogSeverity(LogSeverity severity);

}  // namespace certa

#define CERTA_LOG(severity)                                      \
  ::certa::internal_logging::LogMessage(                         \
      ::certa::LogSeverity::k##severity, __FILE__, __LINE__)     \
      .stream()

/// CHECK aborts with a diagnostic when `condition` is false. Used for
/// programmer errors and broken invariants; never for recoverable input
/// validation (library code returns std::optional/bool for those).
#define CERTA_CHECK(condition)                                    \
  if (!(condition))                                               \
  ::certa::internal_logging::LogMessage(                          \
      ::certa::LogSeverity::kFatal, __FILE__, __LINE__)           \
          .stream()                                               \
      << "Check failed: " #condition " "

#define CERTA_CHECK_EQ(a, b) CERTA_CHECK((a) == (b))
#define CERTA_CHECK_NE(a, b) CERTA_CHECK((a) != (b))
#define CERTA_CHECK_LT(a, b) CERTA_CHECK((a) < (b))
#define CERTA_CHECK_LE(a, b) CERTA_CHECK((a) <= (b))
#define CERTA_CHECK_GT(a, b) CERTA_CHECK((a) > (b))
#define CERTA_CHECK_GE(a, b) CERTA_CHECK((a) >= (b))

#endif  // CERTA_UTIL_LOGGING_H_
