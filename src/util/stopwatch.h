#ifndef CERTA_UTIL_STOPWATCH_H_
#define CERTA_UTIL_STOPWATCH_H_

#include <chrono>

namespace certa {

/// Wall-clock stopwatch for coarse experiment timing.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the measurement window.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Reset, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace certa

#endif  // CERTA_UTIL_STOPWATCH_H_
