#ifndef CERTA_UTIL_CLOCK_H_
#define CERTA_UTIL_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace certa::util {

/// Time source abstraction for the resilience layer (deadlines, retry
/// backoff, simulated latency). Production code uses the monotonic
/// RealClock(); tests inject a ManualClock so deadline and backoff
/// behavior is deterministic and instantaneous.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic timestamp in microseconds. Only differences are
  /// meaningful; the epoch is unspecified.
  virtual int64_t NowMicros() const = 0;

  /// Blocks the calling thread for (at least) `micros` microseconds.
  virtual void SleepMicros(int64_t micros) = 0;
};

/// Process-wide steady_clock-backed Clock (never null, never deleted).
Clock* RealClock();

/// Virtual clock: time advances only via SleepMicros/Advance, so tests
/// can simulate latency spikes and deadline overruns without waiting.
/// Thread-safe; a sleep advances the shared timeline for every reader
/// (one simulated timeline, as on a single machine).
class ManualClock : public Clock {
 public:
  explicit ManualClock(int64_t start_micros = 0) : now_(start_micros) {}

  int64_t NowMicros() const override {
    return now_.load(std::memory_order_relaxed);
  }

  void SleepMicros(int64_t micros) override {
    if (micros > 0) now_.fetch_add(micros, std::memory_order_relaxed);
  }

  void Advance(int64_t micros) { SleepMicros(micros); }

 private:
  std::atomic<int64_t> now_;
};

}  // namespace certa::util

#endif  // CERTA_UTIL_CLOCK_H_
