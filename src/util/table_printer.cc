#include "util/table_printer.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_utils.h"

namespace certa {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  CERTA_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  CERTA_CHECK_EQ(cells.size(), header_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::AddRow(const std::string& label,
                          const std::vector<double>& values, int decimals) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(FormatDouble(v, decimals));
  AddRow(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      os << std::string(widths[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  print_row(header_);
  os << "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

void PrintBanner(std::ostream& os, const std::string& title) {
  os << "\n=== " << title << " ===\n";
}

}  // namespace certa
