#include "util/json_parser.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <string>

namespace certa {
namespace {

/// Appends one Unicode code point as UTF-8.
void AppendUtf8(unsigned long code_point, std::string* out) {
  if (code_point < 0x80) {
    out->push_back(static_cast<char>(code_point));
  } else if (code_point < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (code_point >> 6)));
    out->push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
  } else if (code_point < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (code_point >> 12)));
    out->push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (code_point >> 18)));
    out->push_back(static_cast<char>(0x80 | ((code_point >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
  }
}

}  // namespace

class JsonParser {
 public:
  JsonParser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool Run(JsonValue* out) {
    SkipWhitespace();
    if (!ParseValue(out, 0)) return false;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing bytes after JSON value");
    }
    return true;
  }

 private:
  bool Fail(const std::string& message) {
    if (error_ != nullptr) {
      *error_ = message + " (at byte " + std::to_string(pos_) + ")";
    }
    return false;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return Fail("invalid literal");
    }
    pos_ += word.size();
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > JsonValue::kMaxDepth) {
      return Fail("nesting deeper than " +
                  std::to_string(JsonValue::kMaxDepth) + " levels");
    }
    if (AtEnd()) return Fail("unexpected end of input");
    switch (Peek()) {
      case 'n':
        out->type_ = JsonValue::Type::kNull;
        return Literal("null");
      case 't':
        out->type_ = JsonValue::Type::kBool;
        out->bool_ = true;
        return Literal("true");
      case 'f':
        out->type_ = JsonValue::Type::kBool;
        out->bool_ = false;
        return Literal("false");
      case '"':
        out->type_ = JsonValue::Type::kString;
        return ParseString(&out->string_);
      case '[':
        return ParseArray(out, depth);
      case '{':
        return ParseObject(out, depth);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseHex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
      else return Fail("invalid \\u escape digit");
    }
    pos_ += 4;
    *out = value;
    return true;
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (true) {
      if (AtEnd()) return Fail("unterminated string");
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (AtEnd()) return Fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          unsigned unit = 0;
          if (!ParseHex4(&unit)) return false;
          unsigned long code_point = unit;
          if (unit >= 0xD800 && unit <= 0xDBFF) {
            // High surrogate: a low surrogate must follow.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Fail("unpaired UTF-16 surrogate");
            }
            pos_ += 2;
            unsigned low = 0;
            if (!ParseHex4(&low)) return false;
            if (low < 0xDC00 || low > 0xDFFF) {
              return Fail("invalid UTF-16 low surrogate");
            }
            code_point = 0x10000ul + ((unit - 0xD800ul) << 10) +
                         (low - 0xDC00ul);
          } else if (unit >= 0xDC00 && unit <= 0xDFFF) {
            return Fail("unpaired UTF-16 surrogate");
          }
          AppendUtf8(code_point, out);
          break;
        }
        default:
          return Fail("invalid escape character");
      }
    }
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (!AtEnd() && Peek() == '-') ++pos_;
    bool saw_digit = false;
    while (!AtEnd() && Peek() >= '0' && Peek() <= '9') {
      ++pos_;
      saw_digit = true;
    }
    bool integral = true;
    if (!AtEnd() && Peek() == '.') {
      integral = false;
      ++pos_;
      bool frac_digit = false;
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') {
        ++pos_;
        frac_digit = true;
      }
      if (!frac_digit) return Fail("digit expected after decimal point");
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      integral = false;
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      bool exp_digit = false;
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') {
        ++pos_;
        exp_digit = true;
      }
      if (!exp_digit) return Fail("digit expected in exponent");
    }
    if (!saw_digit) return Fail("invalid value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value)) {
      return Fail("invalid number");
    }
    out->type_ = JsonValue::Type::kNumber;
    out->number_ = value;
    out->is_integer_ = false;
    if (integral) {
      errno = 0;
      const long long as_int = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        out->is_integer_ = true;
        out->int_ = as_int;
      }
    }
    return true;
  }

  bool ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    out->type_ = JsonValue::Type::kArray;
    out->array_.clear();
    SkipWhitespace();
    if (!AtEnd() && Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue item;
      SkipWhitespace();
      if (!ParseValue(&item, depth + 1)) return false;
      out->array_.push_back(std::move(item));
      SkipWhitespace();
      if (AtEnd()) return Fail("unterminated array");
      const char c = text_[pos_++];
      if (c == ']') return true;
      if (c != ',') {
        --pos_;
        return Fail("',' or ']' expected in array");
      }
    }
  }

  bool ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    out->type_ = JsonValue::Type::kObject;
    out->object_.clear();
    SkipWhitespace();
    if (!AtEnd() && Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWhitespace();
      if (AtEnd() || Peek() != '"') return Fail("object key expected");
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWhitespace();
      if (AtEnd() || text_[pos_] != ':') return Fail("':' expected");
      ++pos_;
      SkipWhitespace();
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      if (!out->object_.emplace(std::move(key), std::move(value)).second) {
        return Fail("duplicate object key");
      }
      SkipWhitespace();
      if (AtEnd()) return Fail("unterminated object");
      const char c = text_[pos_++];
      if (c == '}') return true;
      if (c != ',') {
        --pos_;
        return Fail("',' or '}' expected in object");
      }
    }
  }

  std::string_view text_;
  std::string* error_;
  size_t pos_ = 0;
};

bool JsonValue::Parse(std::string_view text, JsonValue* out,
                      std::string* error) {
  JsonValue parsed;
  JsonParser parser(text, error);
  if (!parser.Run(&parsed)) return false;
  *out = std::move(parsed);
  return true;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  auto it = object_.find(key);
  return it != object_.end() ? &it->second : nullptr;
}

}  // namespace certa
