#ifndef CERTA_UTIL_ARCHIVE_H_
#define CERTA_UTIL_ARCHIVE_H_

#include <map>
#include <string>
#include <vector>

namespace certa {

/// Simple line-oriented key-value archive used to persist trained
/// models. Human-inspectable, stable across platforms, no external
/// dependencies. Format, one entry per line:
///   s <key> <string-with-\x20-escapes>
///   i <key> <integer>
///   d <key> <double>
///   v <key> <n> <x1> <x2> ... <xn>
class TextArchive {
 public:
  TextArchive() = default;

  // -- writing --
  void PutString(const std::string& key, const std::string& value);
  void PutInt(const std::string& key, long long value);
  void PutDouble(const std::string& key, double value);
  void PutVector(const std::string& key, const std::vector<double>& value);

  /// Serializes all entries (sorted by key, so output is canonical).
  std::string Serialize() const;

  /// Writes Serialize() to a file; false on I/O error.
  bool SaveToFile(const std::string& path) const;

  // -- reading --
  /// Parses a serialized archive; false on any malformed line.
  static bool Parse(const std::string& text, TextArchive* archive);

  /// Reads and parses a file.
  static bool LoadFromFile(const std::string& path, TextArchive* archive);

  bool GetString(const std::string& key, std::string* value) const;
  bool GetInt(const std::string& key, long long* value) const;
  bool GetDouble(const std::string& key, double* value) const;
  bool GetVector(const std::string& key, std::vector<double>* value) const;

  bool Has(const std::string& key) const;
  size_t size() const {
    return strings_.size() + ints_.size() + doubles_.size() +
           vectors_.size();
  }

 private:
  std::map<std::string, std::string> strings_;
  std::map<std::string, long long> ints_;
  std::map<std::string, double> doubles_;
  std::map<std::string, std::vector<double>> vectors_;
};

}  // namespace certa

#endif  // CERTA_UTIL_ARCHIVE_H_
