#ifndef CERTA_UTIL_CRC32_H_
#define CERTA_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace certa::util {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum
/// guarding every write-ahead-journal record and checkpoint payload in
/// src/persist. Chosen over a truncated 64-bit hash because its failure
/// modes under the faults we defend against (torn writes, single bit
/// flips, stray zero fill) are well understood: any burst error of up
/// to 32 bits is detected with certainty.

/// One-shot CRC of a buffer.
uint32_t Crc32(const void* data, size_t size);

/// One-shot CRC of a string payload.
uint32_t Crc32(const std::string& data);

/// Incremental form: feed `crc` from a previous call (or 0 to start)
/// to checksum discontiguous buffers as one stream.
uint32_t Crc32Update(uint32_t crc, const void* data, size_t size);

}  // namespace certa::util

#endif  // CERTA_UTIL_CRC32_H_
