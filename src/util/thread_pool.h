#ifndef CERTA_UTIL_THREAD_POOL_H_
#define CERTA_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace certa::util {

/// Fixed-size worker pool with a shared work queue, built for the
/// scoring engine's batch fan-out. Work is submitted as index ranges
/// (ParallelFor); each index is claimed exactly once, so tasks that
/// write to index-addressed slots produce deterministic, ordered
/// results regardless of which worker ran them or in what order.
///
/// The calling thread participates in its own batch while waiting, so
/// nested ParallelFor calls (an explainer parallelized per pair whose
/// scoring engine fans out again) cannot deadlock: a waiting caller
/// always drains the remaining indices of its batch itself.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  int size() const { return static_cast<int>(workers_.size()); }

  /// Runs fn(0) .. fn(count - 1), each exactly once, and blocks until
  /// all have completed. `fn` must be safe to invoke concurrently from
  /// multiple threads and must not throw.
  void ParallelFor(size_t count, const std::function<void(size_t)>& fn);

  /// Sensible default worker count for this machine (>= 1).
  static int HardwareThreads();

 private:
  /// One ParallelFor invocation: indices are claimed via `next`, and
  /// the batch is complete when `done` reaches `count`.
  struct Batch {
    size_t count = 0;
    const std::function<void(size_t)>* fn = nullptr;
    size_t next = 0;  // guarded by pool mutex
    size_t done = 0;  // guarded by pool mutex
    std::condition_variable finished;
  };

  /// Claims and runs indices of `batch` until none remain. Returns with
  /// the pool mutex held (as on entry).
  void DrainBatch(std::unique_lock<std::mutex>& lock,
                  const std::shared_ptr<Batch>& batch);

  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::vector<std::shared_ptr<Batch>> queue_;  // batches with open indices
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace certa::util

#endif  // CERTA_UTIL_THREAD_POOL_H_
