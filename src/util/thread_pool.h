#ifndef CERTA_UTIL_THREAD_POOL_H_
#define CERTA_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace certa::util {

/// Fixed-size worker pool with a shared work queue, built for the
/// scoring engine's batch fan-out. Work is submitted as index ranges
/// (ParallelFor); each index is claimed exactly once, so tasks that
/// write to index-addressed slots produce deterministic, ordered
/// results regardless of which worker ran them or in what order.
///
/// The calling thread participates in its own batch while waiting, so
/// nested ParallelFor calls (an explainer parallelized per pair whose
/// scoring engine fans out again) cannot deadlock: a waiting caller
/// always drains the remaining indices of its batch itself.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  int size() const { return static_cast<int>(workers_.size()); }

  /// Runs fn(0) .. fn(count - 1), each exactly once, and blocks until
  /// all have completed. `fn` must be safe to invoke concurrently from
  /// multiple threads and must not throw.
  void ParallelFor(size_t count, const std::function<void(size_t)>& fn);

  /// Chunked variant: runs range_fn(begin, end) over a partition of
  /// [0, count) into contiguous chunks of `grain` indices (the last
  /// chunk may be shorter). A worker claims a whole chunk per queue
  /// visit, so the per-index synchronization cost of the index-at-a-
  /// time overload is amortized over `grain` items — the difference
  /// between the pool helping and the pool being pure overhead for
  /// cheap loop bodies. Chunk boundaries depend only on (count, grain),
  /// never on the worker count, so index-addressed output slots stay
  /// deterministic.
  void ParallelFor(size_t count, size_t grain,
                   const std::function<void(size_t, size_t)>& range_fn);

  /// Sensible default worker count for this machine (>= 1).
  static int HardwareThreads();

 private:
  /// One ParallelFor invocation: index ranges are claimed `grain` at a
  /// time via `next`, and the batch is complete when `done` reaches
  /// `count`.
  struct Batch {
    size_t count = 0;
    size_t grain = 1;
    const std::function<void(size_t, size_t)>* range_fn = nullptr;
    size_t next = 0;  // guarded by pool mutex
    size_t done = 0;  // guarded by pool mutex
    std::condition_variable finished;
  };

  /// Claims and runs indices of `batch` until none remain. Returns with
  /// the pool mutex held (as on entry).
  void DrainBatch(std::unique_lock<std::mutex>& lock,
                  const std::shared_ptr<Batch>& batch);

  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::vector<std::shared_ptr<Batch>> queue_;  // batches with open indices
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace certa::util

#endif  // CERTA_UTIL_THREAD_POOL_H_
