#ifndef CERTA_UTIL_STRING_UTILS_H_
#define CERTA_UTIL_STRING_UTILS_H_

#include <string>
#include <string_view>
#include <vector>

namespace certa {

/// Lower-cases ASCII characters; leaves other bytes untouched.
std::string ToLowerAscii(std::string_view text);

/// Strips leading and trailing ASCII whitespace.
std::string_view StripAsciiWhitespace(std::string_view text);

/// Splits on a single-character delimiter. Consecutive delimiters yield
/// empty fields; an empty input yields a single empty field.
std::vector<std::string> Split(std::string_view text, char delimiter);

/// Splits on runs of ASCII whitespace, never yielding empty fields.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Joins `parts` with `separator`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// True when `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// True when `text` ends with `suffix`.
bool EndsWith(std::string_view text, std::string_view suffix);

/// Formats a double with the given number of decimal places (no
/// scientific notation); used by the experiment table printers.
std::string FormatDouble(double value, int decimals);

/// Parses a finite double; returns false on trailing garbage, empty
/// input, or a non-finite value ("nan"/"inf" are rejected — "NaN" is
/// this codebase's *string* missing-value marker, never a number).
bool ParseDouble(std::string_view text, double* out);

/// Parses a base-10 long long strictly: leading/trailing whitespace is
/// tolerated, anything else (trailing garbage, empty input, overflow)
/// returns false with *out untouched.
bool ParseInt64(std::string_view text, long long* out);

}  // namespace certa

#endif  // CERTA_UTIL_STRING_UTILS_H_
