#include "util/clock.h"

#include <chrono>
#include <thread>

namespace certa::util {
namespace {

class SteadyClock : public Clock {
 public:
  int64_t NowMicros() const override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  void SleepMicros(int64_t micros) override {
    if (micros > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(micros));
    }
  }
};

}  // namespace

Clock* RealClock() {
  static SteadyClock* clock = new SteadyClock();
  return clock;
}

}  // namespace certa::util
