#include "util/json_writer.h"

#include <cmath>
#include <cstdio>

namespace certa {

void JsonWriter::MaybeComma() {
  if (needs_comma_) out_.push_back(',');
}

void JsonWriter::AppendEscaped(std::string_view text) {
  out_.push_back('"');
  for (char c : text) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\r':
        out_ += "\\r";
        break;
      case '\t':
        out_ += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned char>(c));
          out_ += buffer;
        } else {
          out_.push_back(c);
        }
    }
  }
  out_.push_back('"');
}

void JsonWriter::BeginObject() {
  MaybeComma();
  out_.push_back('{');
  needs_comma_ = false;
}

void JsonWriter::EndObject() {
  out_.push_back('}');
  needs_comma_ = true;
}

void JsonWriter::BeginArray() {
  MaybeComma();
  out_.push_back('[');
  needs_comma_ = false;
}

void JsonWriter::EndArray() {
  out_.push_back(']');
  needs_comma_ = true;
}

void JsonWriter::Key(std::string_view key) {
  MaybeComma();
  AppendEscaped(key);
  out_.push_back(':');
  needs_comma_ = false;
}

void JsonWriter::String(std::string_view value) {
  MaybeComma();
  AppendEscaped(value);
  needs_comma_ = true;
}

void JsonWriter::Number(double value) {
  MaybeComma();
  if (!std::isfinite(value)) {
    out_ += "null";  // JSON has no NaN/Inf
  } else {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.12g", value);
    out_ += buffer;
  }
  needs_comma_ = true;
}

void JsonWriter::Int(long long value) {
  MaybeComma();
  out_ += std::to_string(value);
  needs_comma_ = true;
}

void JsonWriter::Bool(bool value) {
  MaybeComma();
  out_ += value ? "true" : "false";
  needs_comma_ = true;
}

void JsonWriter::Null() {
  MaybeComma();
  out_ += "null";
  needs_comma_ = true;
}

void JsonWriter::Raw(std::string_view json) {
  MaybeComma();
  out_ += json;
  needs_comma_ = true;
}

}  // namespace certa
