#ifndef CERTA_UTIL_JSON_PARSER_H_
#define CERTA_UTIL_JSON_PARSER_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace certa {

/// Minimal JSON document model + recursive-descent parser — the inverse
/// of JsonWriter, added for the networked service (docs/SERVICE.md):
/// every wire frame and every ExplainRequest comes in as one line of
/// JSON and must be either fully understood or cleanly rejected.
///
/// Deliberate limits (each rejected with a clear error, never a crash
/// or a partial value):
///   - nesting deeper than kMaxDepth (garbage/hostile frames);
///   - invalid UTF-16 escapes, control characters inside strings;
///   - trailing bytes after the top-level value;
///   - non-finite numbers (JSON has none; "NaN" stays a string).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parse guard against stack exhaustion from e.g. 10k nested '['.
  static constexpr int kMaxDepth = 64;

  /// Parses exactly one JSON value spanning all of `text` (surrounding
  /// whitespace allowed). On failure returns false and sets *error to a
  /// byte-offset-tagged message; *out is untouched.
  static bool Parse(std::string_view text, JsonValue* out,
                    std::string* error);

  JsonValue() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Valid only for the matching type (asserted in debug builds).
  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array_items() const { return array_; }
  const std::map<std::string, JsonValue>& object_items() const {
    return object_;
  }

  /// True when the number was written without '.'/'e' and fits a long
  /// long exactly — wire fields like pair/seed must not round-trip
  /// through double truncation silently.
  bool is_integer() const { return type_ == Type::kNumber && is_integer_; }
  long long int_value() const { return int_; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  bool is_integer_ = false;
  long long int_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

}  // namespace certa

#endif  // CERTA_UTIL_JSON_PARSER_H_
