#include "util/random.h"

#include <cmath>
#include <numbers>

namespace certa {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) {
    word = SplitMix64(&sm);
  }
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformUint64(uint64_t bound) {
  CERTA_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int Rng::UniformInt(int lo, int hi) {
  CERTA_CHECK_LE(lo, hi);
  return lo + static_cast<int>(UniformUint64(
                  static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1));
}

double Rng::UniformDouble() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  while (u1 <= 1e-300) u1 = UniformDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

size_t Rng::Index(size_t size) {
  CERTA_CHECK_GT(size, 0u);
  return static_cast<size_t>(UniformUint64(size));
}

std::vector<size_t> Rng::SampleIndices(size_t n, size_t k) {
  std::vector<size_t> all(n);
  for (size_t i = 0; i < n; ++i) all[i] = i;
  if (k >= n) {
    Shuffle(&all);
    return all;
  }
  // Partial Fisher-Yates: the first k positions become the sample.
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(UniformUint64(n - i));
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  CERTA_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    CERTA_CHECK_GE(w, 0.0);
    total += w;
  }
  if (total <= 0.0) return Index(weights.size());
  double target = UniformDouble() * total;
  double cumulative = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cumulative += weights[i];
    if (target < cumulative) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace certa
