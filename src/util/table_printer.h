#ifndef CERTA_UTIL_TABLE_PRINTER_H_
#define CERTA_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace certa {

/// Renders aligned ASCII tables; used by every experiment bench to print
/// the paper's tables in a uniform, diffable format.
///
///   TablePrinter printer({"Dataset", "CERTA", "SHAP"});
///   printer.AddRow({"AB", "0.006", "21.49"});
///   printer.Print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles to `decimals` places; the first cell
  /// stays a label.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int decimals);

  /// Writes the table, column-aligned, with a header separator.
  void Print(std::ostream& os) const;

  /// Number of data rows added so far.
  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner (experiment id + description) before a table.
void PrintBanner(std::ostream& os, const std::string& title);

}  // namespace certa

#endif  // CERTA_UTIL_TABLE_PRINTER_H_
