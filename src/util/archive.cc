#include "util/archive.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/atomic_file.h"
#include "util/string_utils.h"

namespace certa {
namespace {

std::string EscapeSpaces(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == ' ') {
      out += "\\x20";
    } else if (c == '\n') {
      out += "\\x0a";
    } else if (c == '\\') {
      out += "\\\\";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string UnescapeSpaces(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '\\') {
      out.push_back(text[i]);
      continue;
    }
    if (text.compare(i, 4, "\\x20") == 0) {
      out.push_back(' ');
      i += 3;
    } else if (text.compare(i, 4, "\\x0a") == 0) {
      out.push_back('\n');
      i += 3;
    } else if (text.compare(i, 2, "\\\\") == 0) {
      out.push_back('\\');
      i += 1;
    } else {
      out.push_back(text[i]);
    }
  }
  return out;
}

std::string FormatExact(double value) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

void TextArchive::PutString(const std::string& key,
                            const std::string& value) {
  strings_[key] = value;
}

void TextArchive::PutInt(const std::string& key, long long value) {
  ints_[key] = value;
}

void TextArchive::PutDouble(const std::string& key, double value) {
  doubles_[key] = value;
}

void TextArchive::PutVector(const std::string& key,
                            const std::vector<double>& value) {
  vectors_[key] = value;
}

std::string TextArchive::Serialize() const {
  std::string out;
  auto emit = [&out](char tag, const std::string& key,
                     const std::string& value) {
    out.push_back(tag);
    out.push_back(' ');
    out.append(EscapeSpaces(key));
    out.push_back(' ');
    out.append(value);
    out.push_back('\n');
  };
  for (const auto& [key, value] : strings_) {
    emit('s', key, EscapeSpaces(value));
  }
  for (const auto& [key, value] : ints_) {
    emit('i', key, std::to_string(value));
  }
  for (const auto& [key, value] : doubles_) {
    emit('d', key, FormatExact(value));
  }
  for (const auto& [key, value] : vectors_) {
    std::string row = std::to_string(value.size());
    for (double x : value) {
      row.push_back(' ');
      row.append(FormatExact(x));
    }
    emit('v', key, row);
  }
  return out;
}

bool TextArchive::SaveToFile(const std::string& path) const {
  // Atomic (temp + fsync + rename): a crash mid-save can never leave a
  // half-written archive where a previously good one stood.
  return util::AtomicWriteFile(path, Serialize());
}

bool TextArchive::Parse(const std::string& text, TextArchive* archive) {
  TextArchive parsed;
  for (const std::string& line : Split(text, '\n')) {
    if (line.empty()) continue;
    std::vector<std::string> fields = SplitWhitespace(line);
    if (fields.size() < 3) return false;
    const std::string& tag = fields[0];
    std::string key = UnescapeSpaces(fields[1]);
    if (tag == "s") {
      parsed.strings_[key] = UnescapeSpaces(fields[2]);
    } else if (tag == "i") {
      double value = 0.0;
      if (!ParseDouble(fields[2], &value)) return false;
      parsed.ints_[key] = static_cast<long long>(value);
    } else if (tag == "d") {
      double value = 0.0;
      if (!ParseDouble(fields[2], &value)) return false;
      parsed.doubles_[key] = value;
    } else if (tag == "v") {
      double count = 0.0;
      if (!ParseDouble(fields[2], &count)) return false;
      size_t n = static_cast<size_t>(count);
      if (fields.size() != 3 + n) return false;
      std::vector<double> values(n, 0.0);
      for (size_t i = 0; i < n; ++i) {
        if (!ParseDouble(fields[3 + i], &values[i])) return false;
      }
      parsed.vectors_[key] = std::move(values);
    } else {
      return false;
    }
  }
  *archive = std::move(parsed);
  return true;
}

bool TextArchive::LoadFromFile(const std::string& path,
                               TextArchive* archive) {
  std::ifstream input(path, std::ios::binary);
  if (!input) return false;
  std::ostringstream buffer;
  buffer << input.rdbuf();
  return Parse(buffer.str(), archive);
}

bool TextArchive::GetString(const std::string& key,
                            std::string* value) const {
  auto it = strings_.find(key);
  if (it == strings_.end()) return false;
  *value = it->second;
  return true;
}

bool TextArchive::GetInt(const std::string& key, long long* value) const {
  auto it = ints_.find(key);
  if (it == ints_.end()) return false;
  *value = it->second;
  return true;
}

bool TextArchive::GetDouble(const std::string& key, double* value) const {
  auto it = doubles_.find(key);
  if (it == doubles_.end()) return false;
  *value = it->second;
  return true;
}

bool TextArchive::GetVector(const std::string& key,
                            std::vector<double>* value) const {
  auto it = vectors_.find(key);
  if (it == vectors_.end()) return false;
  *value = it->second;
  return true;
}

bool TextArchive::Has(const std::string& key) const {
  return strings_.count(key) > 0 || ints_.count(key) > 0 ||
         doubles_.count(key) > 0 || vectors_.count(key) > 0;
}

}  // namespace certa
