#include "util/thread_pool.h"

#include <algorithm>

namespace certa::util {

ThreadPool::ThreadPool(int num_threads) {
  int count = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

int ThreadPool::HardwareThreads() {
  unsigned hardware = std::thread::hardware_concurrency();
  return hardware > 0 ? static_cast<int>(hardware) : 1;
}

void ThreadPool::DrainBatch(std::unique_lock<std::mutex>& lock,
                            const std::shared_ptr<Batch>& batch) {
  while (batch->next < batch->count) {
    size_t begin = batch->next;
    size_t end = std::min(batch->count, begin + batch->grain);
    batch->next = end;
    if (batch->next >= batch->count) {
      // Batch exhausted: stop offering it to other workers.
      auto it = std::find(queue_.begin(), queue_.end(), batch);
      if (it != queue_.end()) queue_.erase(it);
    }
    lock.unlock();
    (*batch->range_fn)(begin, end);
    lock.lock();
    batch->done += end - begin;
    if (batch->done == batch->count) batch->finished.notify_all();
  }
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_available_.wait(
        lock, [this] { return shutdown_ || !queue_.empty(); });
    if (shutdown_ && queue_.empty()) return;
    // Keep a shared_ptr so the batch outlives its removal from the
    // queue while this worker still runs one of its indices.
    std::shared_ptr<Batch> batch = queue_.front();
    DrainBatch(lock, batch);
  }
}

void ThreadPool::ParallelFor(size_t count,
                             const std::function<void(size_t)>& fn) {
  std::function<void(size_t, size_t)> range_fn = [&fn](size_t begin,
                                                       size_t end) {
    for (size_t i = begin; i < end; ++i) fn(i);
  };
  ParallelFor(count, 1, range_fn);
}

void ThreadPool::ParallelFor(
    size_t count, size_t grain,
    const std::function<void(size_t, size_t)>& range_fn) {
  if (count == 0) return;
  grain = std::max<size_t>(1, grain);
  if (count <= grain) {
    range_fn(0, count);
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->count = count;
  batch->grain = grain;
  batch->range_fn = &range_fn;
  std::unique_lock<std::mutex> lock(mutex_);
  queue_.push_back(batch);
  // Wake only as many workers as there are chunks the caller won't
  // drain itself: a blanket notify_all turns every small fan-out into a
  // thundering herd of wakeups that immediately find the queue empty —
  // pure context-switch cost, worst when threads outnumber cores.
  const size_t chunks = (count + grain - 1) / grain;
  const size_t helpers = std::min(workers_.size(), chunks - 1);
  if (helpers >= workers_.size()) {
    work_available_.notify_all();
  } else {
    for (size_t i = 0; i < helpers; ++i) work_available_.notify_one();
  }
  // The caller helps with its own batch, which guarantees progress even
  // when every worker is busy (including nested ParallelFor calls).
  DrainBatch(lock, batch);
  batch->finished.wait(lock, [&] { return batch->done == batch->count; });
}

}  // namespace certa::util
