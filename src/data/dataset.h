#ifndef CERTA_DATA_DATASET_H_
#define CERTA_DATA_DATASET_H_

#include <string>
#include <vector>

#include "data/table.h"
#include "util/random.h"

namespace certa::data {

/// One labelled candidate pair: indices (not ids) into the left and
/// right tables, plus the ground-truth match label.
struct LabeledPair {
  int left_index = -1;
  int right_index = -1;
  int label = 0;  // 1 = match, 0 = non-match
};

/// An ER benchmark: two sources plus labelled train/test pair sets
/// (the DeepMatcher benchmark layout the paper evaluates on).
struct Dataset {
  std::string code;       ///< short id used in the paper's tables, e.g. "AB"
  std::string full_name;  ///< e.g. "Abt-Buy"
  Table left;
  Table right;
  std::vector<LabeledPair> train;
  std::vector<LabeledPair> test;

  /// Matching pairs in train + test (the "Matches" column of Table 1).
  int CountMatches() const;
};

/// Statistics row mirroring the paper's Table 1.
struct DatasetStats {
  std::string code;
  int matches = 0;
  int attributes = 0;
  int left_records = 0;
  int right_records = 0;
  int left_values = 0;
  int right_values = 0;
};

/// Computes Table 1 statistics for a dataset.
DatasetStats ComputeStats(const Dataset& dataset);

/// Splits `pairs` into train/test with the given test fraction,
/// stratified by label so both splits keep the match rate. Shuffles
/// deterministically with `rng`.
void StratifiedSplit(std::vector<LabeledPair> pairs, double test_fraction,
                     Rng* rng, std::vector<LabeledPair>* train,
                     std::vector<LabeledPair>* test);

}  // namespace certa::data

#endif  // CERTA_DATA_DATASET_H_
