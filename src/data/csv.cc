#include "data/csv.h"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "util/logging.h"
#include "util/string_utils.h"

namespace certa::data {
namespace {

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

std::string QuoteField(const std::string& field) {
  if (!NeedsQuoting(field)) return field;
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += "\"\"";
    else quoted.push_back(c);
  }
  quoted.push_back('"');
  return quoted;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream input(path, std::ios::binary);
  if (!input) return false;
  std::ostringstream buffer;
  buffer << input.rdbuf();
  *out = buffer.str();
  return true;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream output(path, std::ios::binary);
  if (!output) return false;
  output << content;
  return output.good();
}

/// Parses an integer field; returns false on any non-digit content.
bool ParseInt(const std::string& text, int* out) {
  double value = 0.0;
  if (!ParseDouble(text, &value)) return false;
  int as_int = static_cast<int>(value);
  if (static_cast<double>(as_int) != value) return false;
  *out = as_int;
  return true;
}

std::unordered_map<int, int> IdToIndex(const Table& table) {
  std::unordered_map<int, int> map;
  for (int i = 0; i < table.size(); ++i) {
    map[table.record(i).id] = i;
  }
  return map;
}

}  // namespace

std::vector<std::vector<std::string>> ParseCsv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool row_has_content = false;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        row_has_content = true;
        break;
      case ',':
        row.push_back(std::move(field));
        field.clear();
        row_has_content = true;
        break;
      case '\r':
        break;  // handled by the following '\n'
      case '\n':
        if (row_has_content || !field.empty()) {
          row.push_back(std::move(field));
          field.clear();
          rows.push_back(std::move(row));
          row.clear();
          row_has_content = false;
        }
        break;
      default:
        field.push_back(c);
        row_has_content = true;
    }
  }
  if (row_has_content || !field.empty()) {
    row.push_back(std::move(field));
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string WriteCsv(const std::vector<std::vector<std::string>>& rows) {
  std::string out;
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += QuoteField(row[i]);
    }
    out.push_back('\n');
  }
  return out;
}

bool LoadTableCsv(const std::string& path, const std::string& table_name,
                  Table* table) {
  std::string content;
  if (!ReadFile(path, &content)) return false;
  auto rows = ParseCsv(content);
  if (rows.empty()) return false;
  const auto& header = rows[0];
  if (header.size() < 2 || ToLowerAscii(header[0]) != "id") return false;
  Schema schema(std::vector<std::string>(header.begin() + 1, header.end()));
  Table loaded(table_name, schema);
  for (size_t r = 1; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (row.size() != header.size()) return false;
    Record record;
    if (!ParseInt(row[0], &record.id)) return false;
    record.values.assign(row.begin() + 1, row.end());
    loaded.Add(std::move(record));
  }
  *table = std::move(loaded);
  return true;
}

bool SaveTableCsv(const std::string& path, const Table& table) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header = {"id"};
  for (const std::string& name : table.schema().names()) header.push_back(name);
  rows.push_back(std::move(header));
  for (const Record& record : table.records()) {
    std::vector<std::string> row = {std::to_string(record.id)};
    for (const std::string& value : record.values) row.push_back(value);
    rows.push_back(std::move(row));
  }
  return WriteFile(path, WriteCsv(rows));
}

bool LoadPairsCsv(const std::string& path, const Table& left,
                  const Table& right, std::vector<LabeledPair>* pairs) {
  std::string content;
  if (!ReadFile(path, &content)) return false;
  auto rows = ParseCsv(content);
  if (rows.empty()) return false;
  if (rows[0].size() != 3) return false;
  auto left_ids = IdToIndex(left);
  auto right_ids = IdToIndex(right);
  std::vector<LabeledPair> loaded;
  for (size_t r = 1; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (row.size() != 3) return false;
    int left_id = 0;
    int right_id = 0;
    LabeledPair pair;
    if (!ParseInt(row[0], &left_id) || !ParseInt(row[1], &right_id) ||
        !ParseInt(row[2], &pair.label)) {
      return false;
    }
    auto left_it = left_ids.find(left_id);
    auto right_it = right_ids.find(right_id);
    if (left_it == left_ids.end() || right_it == right_ids.end()) return false;
    pair.left_index = left_it->second;
    pair.right_index = right_it->second;
    loaded.push_back(pair);
  }
  *pairs = std::move(loaded);
  return true;
}

bool SavePairsCsv(const std::string& path, const Table& left,
                  const Table& right, const std::vector<LabeledPair>& pairs) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"ltable_id", "rtable_id", "label"});
  for (const LabeledPair& pair : pairs) {
    rows.push_back({std::to_string(left.record(pair.left_index).id),
                    std::to_string(right.record(pair.right_index).id),
                    std::to_string(pair.label)});
  }
  return WriteFile(path, WriteCsv(rows));
}

bool LoadDatasetDirectory(const std::string& directory,
                          const std::string& code, Dataset* dataset) {
  Dataset loaded;
  loaded.code = code;
  loaded.full_name = code;
  if (!LoadTableCsv(directory + "/tableA.csv", "A", &loaded.left)) return false;
  if (!LoadTableCsv(directory + "/tableB.csv", "B", &loaded.right)) {
    return false;
  }
  if (!LoadPairsCsv(directory + "/train.csv", loaded.left, loaded.right,
                    &loaded.train)) {
    return false;
  }
  if (!LoadPairsCsv(directory + "/test.csv", loaded.left, loaded.right,
                    &loaded.test)) {
    return false;
  }
  *dataset = std::move(loaded);
  return true;
}

bool SaveDatasetDirectory(const std::string& directory,
                          const Dataset& dataset) {
  return SaveTableCsv(directory + "/tableA.csv", dataset.left) &&
         SaveTableCsv(directory + "/tableB.csv", dataset.right) &&
         SavePairsCsv(directory + "/train.csv", dataset.left, dataset.right,
                      dataset.train) &&
         SavePairsCsv(directory + "/test.csv", dataset.left, dataset.right,
                      dataset.test);
}

}  // namespace certa::data
