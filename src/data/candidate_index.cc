#include "data/candidate_index.h"

#include <algorithm>

#include "data/blocking.h"

namespace certa::data {

CandidateIndex::CandidateIndex(const Table& table) {
  for (int r = 0; r < table.size(); ++r) {
    for (const std::string& token : RecordTokenSet(table.record(r))) {
      index_[token].push_back(r);
      ++postings_;
    }
  }
}

std::vector<int> CandidateIndex::Candidates(const Record& probe) const {
  // Union of the probe tokens' postings. Each postings list is
  // ascending (built by the r = 0..n ctor scan); sort+unique over the
  // gathered lists costs O(P log P) in the matched postings P — probe
  // work scales with how much actually overlaps, never with the table.
  std::vector<int> merged;
  for (const std::string& token : RecordTokenSet(probe)) {
    auto it = index_.find(token);
    if (it == index_.end()) continue;
    merged.insert(merged.end(), it->second.begin(), it->second.end());
  }
  std::sort(merged.begin(), merged.end());
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  return merged;
}

std::vector<int> LinearScanCandidates(const Table& table,
                                      const Record& probe) {
  const std::unordered_set<std::string> probe_tokens =
      RecordTokenSet(probe);
  std::vector<int> candidates;
  if (probe_tokens.empty()) return candidates;
  for (int r = 0; r < table.size(); ++r) {
    for (const std::string& token : RecordTokenSet(table.record(r))) {
      if (probe_tokens.count(token) > 0) {
        candidates.push_back(r);
        break;
      }
    }
  }
  return candidates;
}

}  // namespace certa::data
