#include "data/table.h"

#include <unordered_set>

#include "text/tokenizer.h"
#include "util/logging.h"

namespace certa::data {

Side Opposite(Side side) {
  return side == Side::kLeft ? Side::kRight : Side::kLeft;
}

const char* SidePrefix(Side side) { return side == Side::kLeft ? "L" : "R"; }

Schema::Schema(std::vector<std::string> attribute_names)
    : names_(std::move(attribute_names)) {
  CERTA_CHECK(!names_.empty());
}

const std::string& Schema::name(int index) const {
  CERTA_CHECK_GE(index, 0);
  CERTA_CHECK_LT(index, size());
  return names_[index];
}

int Schema::IndexOf(const std::string& name) const {
  for (int i = 0; i < size(); ++i) {
    if (names_[i] == name) return i;
  }
  return -1;
}

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {}

void Table::Add(Record record) {
  CERTA_CHECK_EQ(static_cast<int>(record.values.size()), schema_.size());
  records_.push_back(std::move(record));
}

const Record& Table::record(int index) const {
  CERTA_CHECK_GE(index, 0);
  CERTA_CHECK_LT(index, size());
  return records_[index];
}

const Record* Table::FindById(int id) const {
  for (const Record& record : records_) {
    if (record.id == id) return &record;
  }
  return nullptr;
}

int Table::CountDistinctValues() const {
  std::unordered_set<std::string> distinct;
  for (const Record& record : records_) {
    for (const std::string& value : record.values) {
      if (!text::IsMissing(value)) distinct.insert(value);
    }
  }
  return static_cast<int>(distinct.size());
}

}  // namespace certa::data
