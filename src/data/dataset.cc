#include "data/dataset.h"

#include "util/logging.h"

namespace certa::data {

int Dataset::CountMatches() const {
  int count = 0;
  for (const LabeledPair& pair : train) count += pair.label;
  for (const LabeledPair& pair : test) count += pair.label;
  return count;
}

DatasetStats ComputeStats(const Dataset& dataset) {
  DatasetStats stats;
  stats.code = dataset.code;
  stats.matches = dataset.CountMatches();
  stats.attributes = dataset.left.schema().size();
  stats.left_records = dataset.left.size();
  stats.right_records = dataset.right.size();
  stats.left_values = dataset.left.CountDistinctValues();
  stats.right_values = dataset.right.CountDistinctValues();
  return stats;
}

void StratifiedSplit(std::vector<LabeledPair> pairs, double test_fraction,
                     Rng* rng, std::vector<LabeledPair>* train,
                     std::vector<LabeledPair>* test) {
  CERTA_CHECK_GE(test_fraction, 0.0);
  CERTA_CHECK_LE(test_fraction, 1.0);
  train->clear();
  test->clear();
  rng->Shuffle(&pairs);
  std::vector<LabeledPair> positives;
  std::vector<LabeledPair> negatives;
  for (const LabeledPair& pair : pairs) {
    (pair.label == 1 ? positives : negatives).push_back(pair);
  }
  auto split_class = [&](const std::vector<LabeledPair>& group) {
    size_t test_count =
        static_cast<size_t>(test_fraction * static_cast<double>(group.size()));
    for (size_t i = 0; i < group.size(); ++i) {
      (i < test_count ? *test : *train).push_back(group[i]);
    }
  };
  split_class(positives);
  split_class(negatives);
  rng->Shuffle(train);
  rng->Shuffle(test);
}

}  // namespace certa::data
