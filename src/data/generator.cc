#include "data/generator.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "text/tokenizer.h"
#include "util/logging.h"
#include "util/string_utils.h"

namespace certa::data {
namespace {

/// Canonical (source-independent) description of one synthetic entity.
/// Both sources render *the same* canonical fields with independent
/// noise, which is what makes the pair a true match.
struct Entity {
  int id = -1;
  int family = -1;
  std::vector<std::string> brand_tokens;
  std::vector<std::string> descriptors;  // short name phrase
  std::vector<std::string> title_words;  // longer title phrase
  std::string code;
  std::string category;
  double price = 0.0;
  int year = 0;
  std::vector<std::string> persons;
  std::string phone;
  std::string street;
  std::string city;
  int duration_seconds = 0;
  double abv = 0.0;
};

std::string MakeCode(Rng* rng) {
  static constexpr char kLetters[] = "abcdefghijklmnopqrstuvwxyz";
  std::string code;
  int letters = rng->UniformInt(2, 3);
  for (int i = 0; i < letters; ++i) {
    code.push_back(kLetters[rng->Index(26)]);
  }
  int digits = rng->UniformInt(2, 4);
  for (int i = 0; i < digits; ++i) {
    code.push_back(static_cast<char>('0' + rng->UniformInt(0, 9)));
  }
  return code;
}

std::string MakePhone(Rng* rng) {
  auto digits = [&](int n) {
    std::string s;
    for (int i = 0; i < n; ++i) {
      s.push_back(static_cast<char>('0' + rng->UniformInt(0, 9)));
    }
    return s;
  };
  return digits(3) + "-" + digits(3) + "-" + digits(4);
}

const std::string& Pick(const std::vector<std::string>& pool, Rng* rng) {
  CERTA_CHECK(!pool.empty());
  return pool[rng->Index(pool.size())];
}

/// Samples `count` distinct words from the pool (with replacement if the
/// pool is smaller than `count`).
std::vector<std::string> PickDistinct(const std::vector<std::string>& pool,
                                      int count, Rng* rng) {
  std::vector<std::string> words;
  if (pool.empty()) return words;
  if (static_cast<size_t>(count) >= pool.size()) {
    for (int i = 0; i < count; ++i) words.push_back(Pick(pool, rng));
    return words;
  }
  std::vector<size_t> indices = rng->SampleIndices(pool.size(), count);
  for (size_t index : indices) words.push_back(pool[index]);
  return words;
}

std::vector<Entity> GenerateEntities(const GeneratorProfile& profile,
                                     Rng* rng) {
  const DomainVocab& vocab = GetVocab(profile.domain);
  std::vector<Entity> entities;
  entities.reserve(profile.num_entities);
  int next_id = 0;
  int family = 0;
  while (static_cast<int>(entities.size()) < profile.num_entities) {
    // One family: shared brand + category, different lines/codes.
    std::vector<std::string> brand_tokens =
        text::RawTokens(Pick(vocab.brands, rng));
    std::string category =
        vocab.categories.empty() ? "" : Pick(vocab.categories, rng);
    int members = std::min(profile.family_size <= 1
                               ? 1
                               : rng->UniformInt(2, profile.family_size),
                           profile.num_entities -
                               static_cast<int>(entities.size()));
    double family_price = rng->UniformDouble(15.0, 900.0);
    // Family members share most of their descriptor phrase and differ by
    // a single mutated word (plus the model code): these near-duplicates
    // are the hard non-matches that keep the learned models imperfect,
    // like the real benchmarks.
    std::vector<std::string> base_descriptors =
        PickDistinct(vocab.descriptors, rng->UniformInt(2, 3), rng);
    std::vector<std::string> base_extra =
        PickDistinct(vocab.descriptors, rng->UniformInt(2, 4), rng);
    for (int m = 0; m < members; ++m) {
      Entity entity;
      entity.id = next_id++;
      entity.family = family;
      entity.brand_tokens = brand_tokens;
      entity.category = category;
      entity.descriptors = base_descriptors;
      // Mutate one descriptor word per member (member 0 keeps the base).
      if (m > 0 && !vocab.descriptors.empty()) {
        size_t position = rng->Index(entity.descriptors.size());
        entity.descriptors[position] = Pick(vocab.descriptors, rng);
      }
      // Longer phrase for titles/descriptions: extend the descriptors
      // with the (shared) family extension plus one member-specific word.
      entity.title_words = entity.descriptors;
      entity.title_words.insert(entity.title_words.end(), base_extra.begin(),
                                base_extra.end());
      if (!vocab.descriptors.empty()) {
        entity.title_words.push_back(Pick(vocab.descriptors, rng));
      }
      if (!vocab.fillers.empty()) {
        entity.title_words.insert(
            entity.title_words.begin() + static_cast<long>(rng->Index(
                                             entity.title_words.size() + 1)),
            Pick(vocab.fillers, rng));
      }
      entity.code = MakeCode(rng);
      entity.price = family_price * rng->UniformDouble(0.85, 1.15);
      entity.year = rng->UniformInt(1992, 2020);
      if (!vocab.persons.empty()) {
        entity.persons = PickDistinct(vocab.persons,
                                      rng->UniformInt(1, 3), rng);
      }
      entity.phone = MakePhone(rng);
      entity.street = std::to_string(rng->UniformInt(10, 999)) + " " +
                      (vocab.descriptors.empty()
                           ? "main"
                           : Pick(vocab.descriptors, rng)) +
                      (rng->Bernoulli(0.5) ? " st ." : " ave .");
      entity.city = vocab.places.empty() ? "" : Pick(vocab.places, rng);
      entity.duration_seconds = rng->UniformInt(95, 420);
      entity.abv = rng->UniformDouble(4.0, 11.0);
      entities.push_back(std::move(entity));
    }
    ++family;
  }
  return entities;
}

// --- Noise operators -------------------------------------------------

void ApplyTypo(std::string* token, Rng* rng) {
  if (token->size() < 3) return;
  size_t position = 1 + rng->Index(token->size() - 2);
  if (rng->Bernoulli(0.5)) {
    std::swap((*token)[position], (*token)[position - 1]);
  } else {
    token->erase(position, 1);
  }
}

std::vector<std::string> NoisyTokens(std::vector<std::string> tokens,
                                     const GeneratorProfile& profile,
                                     Rng* rng) {
  if (tokens.empty()) return tokens;
  if (rng->Bernoulli(profile.reorder_rate) && tokens.size() > 1) {
    // Swap two adjacent tokens rather than a full shuffle: real catalogs
    // mostly differ by local reorderings.
    size_t i = rng->Index(tokens.size() - 1);
    std::swap(tokens[i], tokens[i + 1]);
  }
  std::vector<std::string> kept;
  kept.reserve(tokens.size());
  for (std::string& token : tokens) {
    if (kept.size() + 1 < tokens.size() && rng->Bernoulli(profile.drop_rate)) {
      continue;  // drop, but never drop the final remaining token
    }
    if (rng->Bernoulli(profile.typo_rate)) ApplyTypo(&token, rng);
    kept.push_back(std::move(token));
  }
  if (kept.empty()) kept.push_back(tokens.back());
  return kept;
}

std::vector<std::string> MaybeAbbreviate(
    const std::vector<std::string>& tokens, double rate, Rng* rng) {
  if (tokens.size() < 2 || !rng->Bernoulli(rate)) return tokens;
  if (rng->Bernoulli(0.5)) {
    // Keep only the first (most identifying) token.
    return {tokens[0]};
  }
  // Acronym: first letters.
  std::string acronym;
  for (const std::string& token : tokens) {
    if (!token.empty()) acronym.push_back(token[0]);
  }
  return {acronym};
}

std::string FormatPrice(double price, Side side, Rng* rng) {
  double shown = price;
  std::string text = FormatDouble(shown, 2);
  if (side == Side::kRight && rng->Bernoulli(0.3)) {
    text = "$ " + text;
  }
  return text;
}

std::string RenderAttribute(const Entity& entity, const AttributeSpec& spec,
                            Side side, const GeneratorProfile& profile,
                            Rng* rng) {
  if (rng->Bernoulli(spec.missing_rate)) return text::kMissingValue;
  switch (spec.kind) {
    case AttrKind::kName: {
      std::vector<std::string> tokens =
          MaybeAbbreviate(entity.brand_tokens, profile.abbrev_rate, rng);
      for (const std::string& word : entity.descriptors) {
        tokens.push_back(word);
      }
      // Sources disagree on whether the model code belongs to the name.
      double code_probability = side == Side::kLeft ? 0.75 : 0.45;
      if (rng->Bernoulli(code_probability)) tokens.push_back(entity.code);
      return Join(NoisyTokens(std::move(tokens), profile, rng), " ");
    }
    case AttrKind::kTitle: {
      std::vector<std::string> tokens = entity.title_words;
      return Join(NoisyTokens(std::move(tokens), profile, rng), " ");
    }
    case AttrKind::kDescription: {
      std::vector<std::string> tokens = entity.brand_tokens;
      for (const std::string& word : entity.title_words) {
        tokens.push_back(word);
      }
      const DomainVocab& vocab = GetVocab(profile.domain);
      int extra = rng->UniformInt(2, 5);
      for (int i = 0; i < extra && !vocab.fillers.empty(); ++i) {
        tokens.push_back(Pick(vocab.fillers, rng));
      }
      if (rng->Bernoulli(0.5)) tokens.push_back(entity.code);
      return Join(NoisyTokens(std::move(tokens), profile, rng), " ");
    }
    case AttrKind::kBrand: {
      std::vector<std::string> tokens =
          MaybeAbbreviate(entity.brand_tokens, profile.abbrev_rate, rng);
      return Join(NoisyTokens(std::move(tokens), profile, rng), " ");
    }
    case AttrKind::kPrice: {
      double jitter =
          1.0 + profile.numeric_jitter * (2.0 * rng->UniformDouble() - 1.0);
      return FormatPrice(entity.price * jitter, side, rng);
    }
    case AttrKind::kYear: {
      return std::to_string(entity.year);
    }
    case AttrKind::kPersonList: {
      std::vector<std::string> rendered;
      for (const std::string& person : entity.persons) {
        if (side == Side::kRight && rng->Bernoulli(0.4)) {
          rendered.push_back(std::string(1, person[0]) + " . " + person);
        } else {
          rendered.push_back(person);
        }
      }
      if (side == Side::kRight && rendered.size() > 1 &&
          rng->Bernoulli(0.3)) {
        rendered.resize(rendered.size() - 1);  // drops a trailing author
      }
      return Join(rendered, " , ");
    }
    case AttrKind::kVenue: {
      std::vector<std::string> tokens =
          MaybeAbbreviate(entity.brand_tokens,
                          side == Side::kRight ? 0.6 : profile.abbrev_rate,
                          rng);
      return Join(NoisyTokens(std::move(tokens), profile, rng), " ");
    }
    case AttrKind::kCategory: {
      std::string category = entity.category;
      if (rng->Bernoulli(profile.typo_rate)) {
        std::vector<std::string> tokens = text::RawTokens(category);
        if (!tokens.empty()) category = tokens[0];
      }
      return category;
    }
    case AttrKind::kCode: {
      std::string code = entity.code;
      if (rng->Bernoulli(profile.typo_rate)) ApplyTypo(&code, rng);
      if (side == Side::kRight && rng->Bernoulli(0.2)) {
        code = ToLowerAscii(code) + "-" +
               std::string(1, static_cast<char>('a' + rng->UniformInt(0, 3)));
      }
      return code;
    }
    case AttrKind::kPhone: {
      std::string phone = entity.phone;
      if (side == Side::kRight && rng->Bernoulli(0.5)) {
        for (char& c : phone) {
          if (c == '-') c = '/';
        }
      }
      return phone;
    }
    case AttrKind::kAddress: {
      std::vector<std::string> tokens = text::RawTokens(entity.street);
      return Join(NoisyTokens(std::move(tokens), profile, rng), " ");
    }
    case AttrKind::kCity: {
      return entity.city;
    }
    case AttrKind::kTime: {
      int seconds = entity.duration_seconds;
      if (rng->Bernoulli(0.3)) seconds += rng->UniformInt(-2, 2);
      return std::to_string(seconds / 60) + ":" +
             (seconds % 60 < 10 ? "0" : "") + std::to_string(seconds % 60);
    }
    case AttrKind::kAbv: {
      double jitter =
          1.0 + profile.numeric_jitter * (2.0 * rng->UniformDouble() - 1.0);
      return FormatDouble(entity.abv * jitter, 2) + " %";
    }
  }
  return text::kMissingValue;
}

Record RenderRecord(const Entity& entity, int record_id, Side side,
                    const GeneratorProfile& profile, Rng* rng) {
  Record record;
  record.id = record_id;
  record.values.reserve(profile.attributes.size());
  for (const AttributeSpec& spec : profile.attributes) {
    record.values.push_back(
        RenderAttribute(entity, spec, side, profile, rng));
  }
  if (profile.dirty && rng->Bernoulli(profile.dirty_rate) &&
      record.values.size() >= 2) {
    // Dirty-EM corruption: move one attribute's value into another.
    int source = rng->UniformInt(0, static_cast<int>(record.values.size()) - 1);
    if (!text::IsMissing(record.values[source])) {
      int target = source;
      while (target == source) {
        target =
            rng->UniformInt(0, static_cast<int>(record.values.size()) - 1);
      }
      if (text::IsMissing(record.values[target])) {
        record.values[target] = record.values[source];
      } else {
        record.values[target] += " " + record.values[source];
      }
      record.values[source] = text::kMissingValue;
    }
  }
  return record;
}

}  // namespace

Dataset GenerateDataset(const GeneratorProfile& profile) {
  CERTA_CHECK(!profile.attributes.empty());
  CERTA_CHECK_GT(profile.num_entities, 0);
  Rng rng(profile.seed);

  Dataset dataset;
  dataset.code = profile.code;
  dataset.full_name = profile.full_name;

  std::vector<std::string> attribute_names;
  for (const AttributeSpec& spec : profile.attributes) {
    attribute_names.push_back(spec.name);
  }
  Schema schema(attribute_names);
  std::vector<std::string> source_names = Split(profile.full_name, '-');
  dataset.left = Table(
      source_names.size() == 2 ? source_names[0] : profile.code + "_A",
      schema);
  dataset.right = Table(
      source_names.size() == 2 ? source_names[1] : profile.code + "_B",
      schema);

  std::vector<Entity> entities = GenerateEntities(profile, &rng);

  // Decide source membership and render records.
  std::unordered_map<int, std::vector<int>> left_of_entity;   // entity -> idx
  std::unordered_map<int, std::vector<int>> right_of_entity;  // entity -> idx
  std::vector<int> entity_of_left;
  std::vector<int> entity_of_right;
  int next_left_id = 0;
  int next_right_id = 1000000;  // disjoint id spaces for clarity
  for (const Entity& entity : entities) {
    bool in_left = rng.Bernoulli(profile.left_coverage);
    bool in_right = rng.Bernoulli(profile.right_coverage);
    if (!in_left && !in_right) in_left = true;  // keep every entity somewhere
    if (in_left) {
      left_of_entity[entity.id].push_back(dataset.left.size());
      entity_of_left.push_back(entity.id);
      dataset.left.Add(
          RenderRecord(entity, next_left_id++, Side::kLeft, profile, &rng));
    }
    if (in_right) {
      int copies = 1;
      if (profile.right_duplicates > 0) {
        copies += rng.UniformInt(0, profile.right_duplicates);
      }
      for (int c = 0; c < copies; ++c) {
        right_of_entity[entity.id].push_back(dataset.right.size());
        entity_of_right.push_back(entity.id);
        dataset.right.Add(RenderRecord(entity, next_right_id++, Side::kRight,
                                       profile, &rng));
      }
    }
  }
  // Right-only distractors: fresh entities never matched.
  if (profile.right_distractors > 0) {
    GeneratorProfile distractor_profile = profile;
    distractor_profile.num_entities = profile.right_distractors;
    std::vector<Entity> distractors =
        GenerateEntities(distractor_profile, &rng);
    for (Entity& entity : distractors) {
      entity.id = -1;  // never matchable
      entity_of_right.push_back(-1);
      dataset.right.Add(RenderRecord(entity, next_right_id++, Side::kRight,
                                     profile, &rng));
    }
  }

  // Group entities by family for hard-negative sampling.
  std::unordered_map<int, std::vector<int>> family_members;
  for (const Entity& entity : entities) {
    family_members[entity.family].push_back(entity.id);
  }

  // Positive pairs: every (left copy, right copy) of the same entity.
  std::vector<LabeledPair> pairs;
  std::set<std::pair<int, int>> seen;
  for (const Entity& entity : entities) {
    auto left_it = left_of_entity.find(entity.id);
    auto right_it = right_of_entity.find(entity.id);
    if (left_it == left_of_entity.end() || right_it == right_of_entity.end()) {
      continue;
    }
    for (int li : left_it->second) {
      for (int ri : right_it->second) {
        if (seen.insert({li, ri}).second) {
          pairs.push_back({li, ri, 1});
        }
      }
    }
  }
  const int positives = static_cast<int>(pairs.size());

  // Negative pairs: hard (same family) and random.
  int wanted_negatives = positives * profile.negatives_per_match;
  int attempts = 0;
  int negatives = 0;
  while (negatives < wanted_negatives && attempts < wanted_negatives * 50) {
    ++attempts;
    if (dataset.left.size() == 0 || dataset.right.size() == 0) break;
    int li = static_cast<int>(rng.Index(entity_of_left.size()));
    int left_entity = entity_of_left[li];
    int ri = -1;
    if (rng.Bernoulli(profile.hard_negative_fraction)) {
      // Same-family sibling present in the right table.
      int family = entities[left_entity].family;
      const std::vector<int>& members = family_members[family];
      std::vector<int> candidates;
      for (int member : members) {
        if (member == left_entity) continue;
        auto it = right_of_entity.find(member);
        if (it == right_of_entity.end()) continue;
        for (int index : it->second) candidates.push_back(index);
      }
      if (!candidates.empty()) {
        ri = candidates[rng.Index(candidates.size())];
      }
    }
    if (ri < 0) {
      ri = static_cast<int>(rng.Index(dataset.right.size()));
    }
    int right_entity = entity_of_right[ri];
    if (right_entity == left_entity && right_entity >= 0) continue;
    if (!seen.insert({li, ri}).second) continue;
    pairs.push_back({li, ri, 0});
    ++negatives;
  }

  StratifiedSplit(std::move(pairs), profile.test_fraction, &rng,
                  &dataset.train, &dataset.test);
  return dataset;
}

}  // namespace certa::data
