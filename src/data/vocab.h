#ifndef CERTA_DATA_VOCAB_H_
#define CERTA_DATA_VOCAB_H_

#include <string>
#include <vector>

namespace certa::data {

/// Entity domains covered by the twelve benchmark profiles.
enum class Domain {
  kElectronics,    ///< Abt-Buy consumer electronics
  kSoftware,       ///< Amazon-Google software products
  kBeer,           ///< BeerAdvo-RateBeer
  kBibliographic,  ///< DBLP-ACM / DBLP-Scholar
  kRestaurant,     ///< Fodors-Zagats
  kMusic,          ///< iTunes-Amazon
  kGeneralProduct, ///< Walmart-Amazon
};

/// Word pools for one domain. All strings are lowercase; the generator
/// composes entity attribute values from them. Pools are intentionally
/// moderate-sized so different entities share vocabulary, which creates
/// the hard near-match pairs the paper's benchmarks are known for.
struct DomainVocab {
  /// Brand / manufacturer / brewery / venue / artist names.
  std::vector<std::string> brands;
  /// Product-line / style / title words combined into names and titles.
  std::vector<std::string> descriptors;
  /// Closed category vocabulary (genre, style, restaurant type, ...).
  std::vector<std::string> categories;
  /// Filler words used to pad descriptions and long titles.
  std::vector<std::string> fillers;
  /// Person surnames (authors, artists).
  std::vector<std::string> persons;
  /// City names (restaurants).
  std::vector<std::string> places;
};

/// Returns the (immutable, lazily constructed) vocabulary for a domain.
const DomainVocab& GetVocab(Domain domain);

}  // namespace certa::data

#endif  // CERTA_DATA_VOCAB_H_
