#ifndef CERTA_DATA_MUTABLE_TABLE_H_
#define CERTA_DATA_MUTABLE_TABLE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "data/table.h"

namespace certa::data {

/// Online, mutable view over one source table — the data half of the
/// streaming workload (docs/OPERATIONS.md "Streaming mode").
///
/// `Table` is append-only and frozen once a dataset is loaded;
/// `CandidateIndex` is built in one pass over a frozen table. Streaming
/// traffic needs neither assumption: records arrive as upserts and
/// removals while match queries keep hitting the index. MutableTable
/// keeps both views consistent *incrementally*:
///
///   - rows have stable slots: an upsert of a known id replaces the
///     record in place, a new id appends; Remove tombstones the slot
///     (values become all-missing, so its token set — and therefore
///     every posting — vanishes) and keeps it reserved for the id, so
///     a later re-upsert reuses the slot instead of shifting rows;
///   - the inverted token index (same RecordTokenSet tokenization as
///     CandidateIndex) is updated in place on every mutation: old
///     postings removed, new postings inserted in row order.
///
/// The contract, differential-tested in tests/mutable_table_test.cc
/// over randomized upsert/remove sequences: after ANY mutation history,
/// `Candidates(probe)` is byte-identical to
/// `CandidateIndex(Materialize()).Candidates(probe)` — the from-scratch
/// rebuild over the materialized table. Explanation jobs therefore see
/// exactly the table a batch run over the same data would load.
class MutableTable {
 public:
  MutableTable() = default;
  /// Seeds from a frozen base table (records copied, index built).
  explicit MutableTable(const Table& base);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Rows including tombstones — the row-space Candidates() indexes
  /// into, identical to Materialize().size().
  int size() const { return static_cast<int>(records_.size()); }
  /// Rows currently holding a live (non-tombstoned) record.
  int live_size() const { return live_; }

  const Record& record(int row) const { return records_[row]; }
  bool alive(int row) const { return alive_[row] != 0; }

  /// Inserts or replaces by record id. A known id (live or tombstoned)
  /// is replaced in its slot; a new id appends a row. Returns the row,
  /// or -1 when the value count does not match the schema (*error set).
  /// `created` (optional) reports append vs in-place replace.
  int Upsert(const Record& record, bool* created = nullptr,
             std::string* error = nullptr);

  /// Tombstones the id's row: values become all-missing, postings drop,
  /// FindById stops returning it. The slot stays reserved for the id.
  /// False when the id is unknown or already tombstoned.
  bool Remove(int id);

  /// Live record with the given id, or nullptr.
  const Record* FindById(int id) const;

  /// Ascending rows sharing >= 1 token with `probe` — byte-identical to
  /// CandidateIndex(Materialize()).Candidates(probe).
  std::vector<int> Candidates(const Record& probe) const;

  struct MatchCandidate {
    int row = -1;
    int id = -1;
    /// Distinct shared tokens with the probe.
    int overlap = 0;
  };
  /// Top-k candidates ranked by (overlap desc, row asc) — the `match`
  /// wire verb. Deterministic for a given table state.
  std::vector<MatchCandidate> TopK(const Record& probe, int k) const;

  /// Plain frozen Table of the current state. Tombstoned slots ride
  /// along as all-missing records so row numbering (and therefore any
  /// index built over the copy) lines up with this table's.
  Table Materialize() const;

 private:
  void IndexRow(int row);
  void DeindexRow(int row);

  std::string name_;
  Schema schema_;
  std::vector<Record> records_;
  std::vector<char> alive_;
  int live_ = 0;
  std::unordered_map<int, int> row_by_id_;
  /// token -> ascending rows whose live record contains it.
  std::unordered_map<std::string, std::vector<int>> index_;
};

}  // namespace certa::data

#endif  // CERTA_DATA_MUTABLE_TABLE_H_
