#include "data/profiling.h"

#include <sstream>
#include <unordered_set>

#include "text/tokenizer.h"
#include "util/table_printer.h"
#include "util/string_utils.h"

namespace certa::data {

std::vector<AttributeProfile> ProfileTable(const Table& table) {
  std::vector<AttributeProfile> profiles;
  const int attributes = table.schema().size();
  profiles.reserve(static_cast<size_t>(attributes));
  for (int a = 0; a < attributes; ++a) {
    AttributeProfile profile;
    profile.name = table.schema().name(a);
    int missing = 0;
    int present = 0;
    long long tokens = 0;
    int numeric = 0;
    std::unordered_set<std::string> distinct;
    for (const Record& record : table.records()) {
      const std::string& value = record.value(a);
      if (text::IsMissing(value)) {
        ++missing;
        continue;
      }
      ++present;
      tokens += static_cast<long long>(text::RawTokens(value).size());
      double parsed = 0.0;
      if (text::TryParseNumeric(value, &parsed)) ++numeric;
      distinct.insert(value);
    }
    int total = missing + present;
    if (total > 0) {
      profile.missing_rate = static_cast<double>(missing) / total;
    }
    if (present > 0) {
      profile.mean_tokens = static_cast<double>(tokens) / present;
      profile.distinct_ratio =
          static_cast<double>(distinct.size()) / present;
      profile.numeric_rate = static_cast<double>(numeric) / present;
    }
    profiles.push_back(std::move(profile));
  }
  return profiles;
}

std::string RenderProfiles(const std::vector<AttributeProfile>& profiles) {
  TablePrinter table(
      {"Attribute", "missing", "mean tokens", "distinct", "numeric"});
  for (const AttributeProfile& profile : profiles) {
    table.AddRow({profile.name, FormatDouble(profile.missing_rate, 2),
                  FormatDouble(profile.mean_tokens, 1),
                  FormatDouble(profile.distinct_ratio, 2),
                  FormatDouble(profile.numeric_rate, 2)});
  }
  std::ostringstream out;
  table.Print(out);
  return out.str();
}

}  // namespace certa::data
