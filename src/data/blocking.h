#ifndef CERTA_DATA_BLOCKING_H_
#define CERTA_DATA_BLOCKING_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "data/dataset.h"
#include "data/table.h"

namespace certa::data {

/// The deduplicated normalized tokens of a record's non-missing
/// attribute values — the exact token set the blocker indexes. Shared
/// with CandidateIndex (src/data/candidate_index) so "records sharing
/// a token" means the same thing in blocking and in support-candidate
/// discovery.
std::unordered_set<std::string> RecordTokenSet(const Record& record);

/// Candidate-pair generation ("blocking"), the stage that precedes
/// pairwise matching in a real ER pipeline. The benchmark datasets ship
/// pre-blocked labelled pairs; this module lets the library run
/// end-to-end on raw tables (see examples/end_to_end_er.cpp).
struct BlockingOptions {
  /// Minimum shared (normalized) tokens for a pair to be considered.
  int min_shared_tokens = 1;
  /// Keep at most this many candidates per left record, ranked by
  /// IDF-weighted token overlap.
  int max_candidates_per_record = 20;
  /// Ignore tokens that appear in more than this fraction of the
  /// indexed records (stop-token pruning keeps the index selective).
  double max_token_frequency = 0.25;
};

/// Inverted-index token blocker over one table. Index once, then probe
/// with records from the other source.
class TokenBlocker {
 public:
  TokenBlocker(const Table& table, BlockingOptions options);
  explicit TokenBlocker(const Table& table)
      : TokenBlocker(table, BlockingOptions()) {}

  /// Indices (into the indexed table) of candidate matches for `probe`,
  /// ranked by descending IDF-weighted overlap, capped per options.
  std::vector<int> Candidates(const Record& probe) const;

  /// Number of distinct tokens retained in the index.
  int IndexedTokenCount() const { return static_cast<int>(index_.size()); }

 private:
  const Table* table_;
  BlockingOptions options_;
  /// token -> records containing it (ascending indices).
  std::unordered_map<std::string, std::vector<int>> index_;
  /// token -> idf weight.
  std::unordered_map<std::string, double> idf_;
};

/// Blocks every left record against the right table and returns the
/// candidate (left_index, right_index) pairs.
std::vector<std::pair<int, int>> BlockAll(const Table& left,
                                          const Table& right,
                                          const BlockingOptions& options);

/// Pair-completeness of a candidate set: the fraction of ground-truth
/// matching pairs that survived blocking (recall of the blocker).
double BlockingRecall(const std::vector<std::pair<int, int>>& candidates,
                      const std::vector<LabeledPair>& truth);

}  // namespace certa::data

#endif  // CERTA_DATA_BLOCKING_H_
