#ifndef CERTA_DATA_CANDIDATE_INDEX_H_
#define CERTA_DATA_CANDIDATE_INDEX_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "data/table.h"

namespace certa::data {

/// Inverted token index for support-candidate discovery.
///
/// Triangle collection (src/core/triangles) wants to know, for a pivot
/// record, which pool records share at least one normalized token with
/// it — sharers are where prediction flips to Match live, non-sharers
/// are where flips to Non-Match live, and screening the likely side
/// first fills the support quota with far fewer paid model calls on
/// large pools.
///
/// The predicate is exact and mechanism-independent: a record is a
/// candidate iff its RecordTokenSet (src/data/blocking — the blocker's
/// own tokenization) intersects the probe's. `CandidateIndex` answers
/// it from postings built in one pass over the table;
/// `LinearScanCandidates` is the reference implementation that
/// re-tokenizes every record per probe. Both return the identical
/// ascending index set (proven over randomized datasets in
/// tests/candidate_index_test.cc), so a caller can switch mechanisms
/// freely — results are byte-identical, only the discovery cost
/// changes (see bench/bench_scale.cc for the speedup at scale).
///
/// Unlike TokenBlocker there is no stop-token pruning, IDF ranking, or
/// candidate cap: discovery needs the exact sharer set, not a ranked
/// shortlist.
class CandidateIndex {
 public:
  explicit CandidateIndex(const Table& table);

  /// Ascending indices of table records sharing >= 1 normalized token
  /// with `probe`. A probe with no tokens (all attributes missing)
  /// has no sharers.
  std::vector<int> Candidates(const Record& probe) const;

  /// Distinct tokens in the index.
  int indexed_tokens() const { return static_cast<int>(index_.size()); }

  /// Total postings (sum of token list lengths).
  size_t postings() const { return postings_; }

 private:
  /// token -> ascending indices of records containing it.
  std::unordered_map<std::string, std::vector<int>> index_;
  size_t postings_ = 0;
};

/// Reference linear scan: tokenizes every table record and tests
/// intersection with the probe's token set. Returns exactly
/// CandidateIndex(table).Candidates(probe).
std::vector<int> LinearScanCandidates(const Table& table,
                                      const Record& probe);

}  // namespace certa::data

#endif  // CERTA_DATA_CANDIDATE_INDEX_H_
