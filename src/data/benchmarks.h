#ifndef CERTA_DATA_BENCHMARKS_H_
#define CERTA_DATA_BENCHMARKS_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/generator.h"

namespace certa::data {

/// Short codes of the twelve benchmarks used throughout the paper's
/// evaluation (Table 1), in the paper's order.
const std::vector<std::string>& BenchmarkCodes();

/// Generator recipe for one benchmark. Fails a CHECK for unknown codes.
GeneratorProfile BenchmarkProfile(const std::string& code);

/// Synthesizes the benchmark (deterministic per code). `scale`
/// multiplies entity counts; 1.0 is the repo's default laptop scale
/// (roughly 1/10th of the paper's record counts).
Dataset MakeBenchmark(const std::string& code, double scale = 1.0);

/// Synthesizes all twelve benchmarks in paper order.
std::vector<Dataset> MakeAllBenchmarks(double scale = 1.0);

/// Scale factor that makes MakeBenchmark(code, scale) synthesize
/// approximately `target_records` records across both sources. Record
/// counts grow linearly in scale (modulo rounding and coverage draws),
/// so the estimate comes from one cheap scale-1.0 generation; the
/// realized count typically lands within a few percent of the target.
/// Scale-sensitivity benchmarks (bench_scale) use this to sweep
/// 10k/100k/1M-record tables without hand-tuning per profile.
double ScaleForRecords(const std::string& code, long long target_records);

}  // namespace certa::data

#endif  // CERTA_DATA_BENCHMARKS_H_
