#ifndef CERTA_DATA_BENCHMARKS_H_
#define CERTA_DATA_BENCHMARKS_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/generator.h"

namespace certa::data {

/// Short codes of the twelve benchmarks used throughout the paper's
/// evaluation (Table 1), in the paper's order.
const std::vector<std::string>& BenchmarkCodes();

/// Generator recipe for one benchmark. Fails a CHECK for unknown codes.
GeneratorProfile BenchmarkProfile(const std::string& code);

/// Synthesizes the benchmark (deterministic per code). `scale`
/// multiplies entity counts; 1.0 is the repo's default laptop scale
/// (roughly 1/10th of the paper's record counts).
Dataset MakeBenchmark(const std::string& code, double scale = 1.0);

/// Synthesizes all twelve benchmarks in paper order.
std::vector<Dataset> MakeAllBenchmarks(double scale = 1.0);

}  // namespace certa::data

#endif  // CERTA_DATA_BENCHMARKS_H_
