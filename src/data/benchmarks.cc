#include "data/benchmarks.h"

#include <cmath>

#include "util/logging.h"

namespace certa::data {
namespace {

GeneratorProfile AbtBuy() {
  GeneratorProfile profile;
  profile.code = "AB";
  profile.full_name = "Abt-Buy";
  profile.domain = Domain::kElectronics;
  profile.attributes = {
      {"name", AttrKind::kName, 0.0},
      {"description", AttrKind::kDescription, 0.05},
      {"price", AttrKind::kPrice, 0.6},
  };
  profile.num_entities = 130;
  profile.family_size = 3;
  profile.negatives_per_match = 3;
  profile.typo_rate = 0.06;
  profile.drop_rate = 0.14;
  profile.seed = 101;
  return profile;
}

GeneratorProfile AmazonGoogle() {
  GeneratorProfile profile;
  profile.code = "AG";
  profile.full_name = "Amazon-Google";
  profile.domain = Domain::kSoftware;
  profile.attributes = {
      {"title", AttrKind::kName, 0.0},
      {"manufacturer", AttrKind::kBrand, 0.15},
      {"price", AttrKind::kPrice, 0.3},
  };
  profile.num_entities = 120;
  profile.family_size = 3;
  profile.right_distractors = 120;
  profile.negatives_per_match = 3;
  profile.typo_rate = 0.07;
  profile.drop_rate = 0.16;
  profile.abbrev_rate = 0.3;
  profile.seed = 202;
  return profile;
}

GeneratorProfile BeerAdvoRateBeer() {
  GeneratorProfile profile;
  profile.code = "BA";
  profile.full_name = "beerAdvo-RateBeer";
  profile.domain = Domain::kBeer;
  profile.attributes = {
      {"beer_name", AttrKind::kName, 0.0},
      {"brew_factory_name", AttrKind::kBrand, 0.02},
      {"style", AttrKind::kCategory, 0.02},
      {"abv", AttrKind::kAbv, 0.1},
  };
  // Tiny match count relative to table sizes, like the paper's BA.
  profile.num_entities = 70;
  profile.family_size = 3;
  profile.left_coverage = 0.6;
  profile.right_coverage = 0.5;
  profile.right_distractors = 80;
  profile.negatives_per_match = 4;
  profile.typo_rate = 0.04;
  profile.drop_rate = 0.08;
  profile.seed = 303;
  return profile;
}

GeneratorProfile DblpAcm() {
  GeneratorProfile profile;
  profile.code = "DA";
  profile.full_name = "DBLP-ACM";
  profile.domain = Domain::kBibliographic;
  profile.attributes = {
      {"title", AttrKind::kTitle, 0.0},
      {"authors", AttrKind::kPersonList, 0.02},
      {"venue", AttrKind::kVenue, 0.02},
      {"year", AttrKind::kYear, 0.0},
  };
  // Clean, well-structured bibliographic data: low noise.
  profile.num_entities = 140;
  profile.family_size = 2;
  profile.negatives_per_match = 3;
  profile.typo_rate = 0.02;
  profile.drop_rate = 0.05;
  profile.reorder_rate = 0.05;
  profile.seed = 404;
  return profile;
}

GeneratorProfile DblpScholar() {
  GeneratorProfile profile = DblpAcm();
  profile.code = "DS";
  profile.full_name = "DBLP-Scholar";
  // Scholar: noisy crawl with duplicate versions and many extra records.
  profile.num_entities = 120;
  profile.right_duplicates = 1;
  profile.right_distractors = 260;
  profile.typo_rate = 0.06;
  profile.drop_rate = 0.16;
  profile.abbrev_rate = 0.4;
  profile.seed = 505;
  return profile;
}

GeneratorProfile FodorsZagats() {
  GeneratorProfile profile;
  profile.code = "FZ";
  profile.full_name = "Fodors-Zagats";
  profile.domain = Domain::kRestaurant;
  profile.attributes = {
      {"name", AttrKind::kName, 0.0},
      {"addr", AttrKind::kAddress, 0.02},
      {"city", AttrKind::kCity, 0.0},
      {"phone", AttrKind::kPhone, 0.05},
      {"type", AttrKind::kCategory, 0.05},
      {"class", AttrKind::kCode, 0.1},
  };
  // Small and easy: phones and addresses make matches unambiguous.
  profile.num_entities = 80;
  profile.family_size = 2;
  profile.left_coverage = 0.9;
  profile.right_coverage = 0.7;
  profile.negatives_per_match = 3;
  profile.typo_rate = 0.02;
  profile.drop_rate = 0.05;
  profile.seed = 606;
  return profile;
}

GeneratorProfile ITunesAmazon() {
  GeneratorProfile profile;
  profile.code = "IA";
  profile.full_name = "iTunes-Amazon";
  profile.domain = Domain::kMusic;
  profile.attributes = {
      {"song_name", AttrKind::kTitle, 0.0},
      {"artist_name", AttrKind::kBrand, 0.0},
      {"album_name", AttrKind::kName, 0.05},
      {"genre", AttrKind::kCategory, 0.05},
      {"price", AttrKind::kPrice, 0.25},
      {"copyright", AttrKind::kDescription, 0.2},
      {"time", AttrKind::kTime, 0.05},
      {"released", AttrKind::kYear, 0.1},
  };
  profile.num_entities = 90;
  profile.family_size = 3;
  profile.right_distractors = 150;
  profile.negatives_per_match = 3;
  profile.typo_rate = 0.04;
  profile.drop_rate = 0.1;
  profile.seed = 707;
  return profile;
}

GeneratorProfile WalmartAmazon() {
  GeneratorProfile profile;
  profile.code = "WA";
  profile.full_name = "Walmart-Amazon";
  profile.domain = Domain::kGeneralProduct;
  profile.attributes = {
      {"title", AttrKind::kName, 0.0},
      {"category", AttrKind::kCategory, 0.05},
      {"brand", AttrKind::kBrand, 0.05},
      {"modelno", AttrKind::kCode, 0.15},
      {"price", AttrKind::kPrice, 0.2},
  };
  profile.num_entities = 110;
  profile.family_size = 3;
  profile.right_distractors = 200;
  profile.negatives_per_match = 3;
  profile.typo_rate = 0.05;
  profile.drop_rate = 0.12;
  profile.seed = 808;
  return profile;
}

GeneratorProfile Dirty(GeneratorProfile profile, const std::string& code,
                       uint64_t seed) {
  profile.code = code;
  profile.full_name = "Dirty " + profile.full_name;
  profile.dirty = true;
  profile.dirty_rate = 0.35;
  profile.seed = seed;
  return profile;
}

}  // namespace

const std::vector<std::string>& BenchmarkCodes() {
  static const auto& codes = *new std::vector<std::string>{
      "AB", "AG", "BA", "DA", "DS", "FZ", "IA", "WA",
      "DDA", "DDS", "DIA", "DWA"};
  return codes;
}

GeneratorProfile BenchmarkProfile(const std::string& code) {
  if (code == "AB") return AbtBuy();
  if (code == "AG") return AmazonGoogle();
  if (code == "BA") return BeerAdvoRateBeer();
  if (code == "DA") return DblpAcm();
  if (code == "DS") return DblpScholar();
  if (code == "FZ") return FodorsZagats();
  if (code == "IA") return ITunesAmazon();
  if (code == "WA") return WalmartAmazon();
  if (code == "DDA") return Dirty(DblpAcm(), "DDA", 909);
  if (code == "DDS") return Dirty(DblpScholar(), "DDS", 1010);
  if (code == "DIA") return Dirty(ITunesAmazon(), "DIA", 1111);
  if (code == "DWA") return Dirty(WalmartAmazon(), "DWA", 1212);
  CERTA_LOG(Fatal) << "Unknown benchmark code: " << code;
  return AbtBuy();
}

Dataset MakeBenchmark(const std::string& code, double scale) {
  CERTA_CHECK_GT(scale, 0.0);
  GeneratorProfile profile = BenchmarkProfile(code);
  profile.num_entities = std::max(
      8, static_cast<int>(std::lround(profile.num_entities * scale)));
  profile.right_distractors = static_cast<int>(
      std::lround(profile.right_distractors * scale));
  return GenerateDataset(profile);
}

double ScaleForRecords(const std::string& code, long long target_records) {
  CERTA_CHECK_GT(target_records, 0);
  const Dataset reference = MakeBenchmark(code);
  const long long reference_records =
      static_cast<long long>(reference.left.size()) + reference.right.size();
  CERTA_CHECK_GT(reference_records, 0);
  return static_cast<double>(target_records) /
         static_cast<double>(reference_records);
}

std::vector<Dataset> MakeAllBenchmarks(double scale) {
  std::vector<Dataset> datasets;
  for (const std::string& code : BenchmarkCodes()) {
    datasets.push_back(MakeBenchmark(code, scale));
  }
  return datasets;
}

}  // namespace certa::data
