#include "data/mutable_table.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "data/blocking.h"

namespace certa::data {

MutableTable::MutableTable(const Table& base)
    : name_(base.name()), schema_(base.schema()) {
  records_.reserve(static_cast<size_t>(base.size()));
  for (int r = 0; r < base.size(); ++r) {
    records_.push_back(base.record(r));
    alive_.push_back(1);
    ++live_;
    row_by_id_[base.record(r).id] = r;
    IndexRow(r);
  }
}

void MutableTable::IndexRow(int row) {
  for (const std::string& token : RecordTokenSet(records_[row])) {
    std::vector<int>& postings = index_[token];
    postings.insert(
        std::lower_bound(postings.begin(), postings.end(), row), row);
  }
}

void MutableTable::DeindexRow(int row) {
  for (const std::string& token : RecordTokenSet(records_[row])) {
    auto it = index_.find(token);
    if (it == index_.end()) continue;
    std::vector<int>& postings = it->second;
    auto pos = std::lower_bound(postings.begin(), postings.end(), row);
    if (pos != postings.end() && *pos == row) postings.erase(pos);
    if (postings.empty()) index_.erase(it);
  }
}

int MutableTable::Upsert(const Record& record, bool* created,
                         std::string* error) {
  if (static_cast<int>(record.values.size()) != schema_.size()) {
    if (error != nullptr) {
      *error = "record has " + std::to_string(record.values.size()) +
               " values; schema wants " + std::to_string(schema_.size());
    }
    return -1;
  }
  auto it = row_by_id_.find(record.id);
  if (it != row_by_id_.end()) {
    const int row = it->second;
    if (alive_[row]) {
      DeindexRow(row);
    } else {
      alive_[row] = 1;
      ++live_;
    }
    records_[row] = record;
    IndexRow(row);
    if (created != nullptr) *created = false;
    return row;
  }
  const int row = static_cast<int>(records_.size());
  records_.push_back(record);
  alive_.push_back(1);
  ++live_;
  row_by_id_[record.id] = row;
  IndexRow(row);
  if (created != nullptr) *created = true;
  return row;
}

bool MutableTable::Remove(int id) {
  auto it = row_by_id_.find(id);
  if (it == row_by_id_.end()) return false;
  const int row = it->second;
  if (!alive_[row]) return false;
  DeindexRow(row);
  // All-missing values: the token set empties, so the materialized
  // rebuild drops the row's postings exactly as the in-place update
  // just did. The id keeps its slot (and its id field) for reuse.
  for (std::string& value : records_[row].values) value = "NaN";
  alive_[row] = 0;
  --live_;
  return true;
}

const Record* MutableTable::FindById(int id) const {
  auto it = row_by_id_.find(id);
  if (it == row_by_id_.end() || !alive_[it->second]) return nullptr;
  return &records_[it->second];
}

std::vector<int> MutableTable::Candidates(const Record& probe) const {
  // Same union/sort/unique shape as CandidateIndex::Candidates — the
  // differential contract is byte-identical output.
  std::vector<int> merged;
  for (const std::string& token : RecordTokenSet(probe)) {
    auto it = index_.find(token);
    if (it == index_.end()) continue;
    merged.insert(merged.end(), it->second.begin(), it->second.end());
  }
  std::sort(merged.begin(), merged.end());
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  return merged;
}

std::vector<MutableTable::MatchCandidate> MutableTable::TopK(
    const Record& probe, int k) const {
  std::unordered_map<int, int> overlap;
  for (const std::string& token : RecordTokenSet(probe)) {
    auto it = index_.find(token);
    if (it == index_.end()) continue;
    for (int row : it->second) ++overlap[row];
  }
  std::vector<MatchCandidate> ranked;
  ranked.reserve(overlap.size());
  for (const auto& [row, shared] : overlap) {
    ranked.push_back(MatchCandidate{row, records_[row].id, shared});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const MatchCandidate& a, const MatchCandidate& b) {
              if (a.overlap != b.overlap) return a.overlap > b.overlap;
              return a.row < b.row;
            });
  if (k >= 0 && static_cast<int>(ranked.size()) > k) {
    ranked.resize(static_cast<size_t>(k));
  }
  return ranked;
}

Table MutableTable::Materialize() const {
  Table table(name_, schema_);
  for (const Record& record : records_) table.Add(record);
  return table;
}

}  // namespace certa::data
