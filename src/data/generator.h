#ifndef CERTA_DATA_GENERATOR_H_
#define CERTA_DATA_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/vocab.h"

namespace certa::data {

/// Logical attribute types the generator knows how to render. Each
/// benchmark profile maps its schema onto these kinds.
enum class AttrKind {
  kName,        ///< brand + descriptors (+ model code)
  kTitle,       ///< descriptor phrase (papers, songs, software)
  kDescription, ///< long filler-padded restatement of the name
  kBrand,       ///< manufacturer / artist / brewery, possibly abbreviated
  kPrice,       ///< positive decimal with formatting variation
  kYear,        ///< publication year
  kPersonList,  ///< author list, abbreviated differently per source
  kVenue,       ///< publication venue, acronymized on one side
  kCategory,    ///< closed category vocabulary (genre, style, type)
  kCode,        ///< alphanumeric model number
  kPhone,       ///< formatted phone number
  kAddress,     ///< street address
  kCity,        ///< city name
  kTime,        ///< track duration mm:ss
  kAbv,         ///< alcohol by volume "5.4 %"
};

/// One attribute of a benchmark schema.
struct AttributeSpec {
  std::string name;
  AttrKind kind = AttrKind::kName;
  /// Probability that a rendered value is missing ("NaN").
  double missing_rate = 0.0;
};

/// Full recipe for one synthetic benchmark. Field defaults produce a
/// mid-difficulty product dataset; the twelve profiles in
/// benchmarks.h tune them to mirror the paper's Table 1 shape at a
/// laptop-friendly scale.
struct GeneratorProfile {
  std::string code;
  std::string full_name;
  Domain domain = Domain::kElectronics;
  std::vector<AttributeSpec> attributes;

  /// Distinct real-world entities to synthesize.
  int num_entities = 150;
  /// Entities are generated in families sharing brand + category; family
  /// members become the hard near-miss non-matches.
  int family_size = 3;
  /// Probability an entity is described in the left / right source.
  double left_coverage = 0.85;
  double right_coverage = 0.85;
  /// Extra right-side duplicate descriptions per matched entity
  /// (DBLP-Scholar-style: one entity, several scholar versions).
  int right_duplicates = 0;
  /// Right-only distractor entities (inflates the right table the way
  /// Scholar / Amazon catalogs dwarf the curated left sources).
  int right_distractors = 0;

  /// Labelled negatives generated per positive pair.
  int negatives_per_match = 3;
  /// Fraction of negatives drawn from the same family (hard negatives).
  double hard_negative_fraction = 0.5;

  /// Noise knobs applied when rendering a record.
  double typo_rate = 0.05;      ///< per-token chance of a character typo
  double drop_rate = 0.10;      ///< per-token chance of dropping the token
  double abbrev_rate = 0.20;    ///< chance of abbreviating brand/venue
  double reorder_rate = 0.15;   ///< chance of shuffling descriptor order
  double numeric_jitter = 0.02; ///< relative jitter on prices and ABV

  /// Dirty-variant construction (DDA/DDS/DIA/DWA): with this
  /// probability per record, a random attribute's value is moved into
  /// another attribute (appended) and replaced by "NaN" — the standard
  /// dirty-EM corruption.
  bool dirty = false;
  double dirty_rate = 0.35;

  double test_fraction = 0.25;
  uint64_t seed = 1;
};

/// Deterministically synthesizes a full benchmark dataset from the
/// profile. Identical profiles yield identical datasets.
Dataset GenerateDataset(const GeneratorProfile& profile);

}  // namespace certa::data

#endif  // CERTA_DATA_GENERATOR_H_
