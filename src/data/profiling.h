#ifndef CERTA_DATA_PROFILING_H_
#define CERTA_DATA_PROFILING_H_

#include <string>
#include <vector>

#include "data/table.h"

namespace certa::data {

/// Per-attribute profile of one table: the statistics a practitioner
/// checks before pointing an ER model (or an explainer) at a source.
struct AttributeProfile {
  std::string name;
  /// Fraction of records whose value is missing (per text::IsMissing).
  double missing_rate = 0.0;
  /// Mean token count of non-missing values.
  double mean_tokens = 0.0;
  /// Distinct non-missing values / non-missing count — 1.0 means a key.
  double distinct_ratio = 0.0;
  /// Fraction of non-missing values that parse as numbers.
  double numeric_rate = 0.0;
};

/// Profiles every attribute of a table. Empty tables yield zeroed
/// profiles.
std::vector<AttributeProfile> ProfileTable(const Table& table);

/// Renders profiles as an aligned text table.
std::string RenderProfiles(const std::vector<AttributeProfile>& profiles);

}  // namespace certa::data

#endif  // CERTA_DATA_PROFILING_H_
