#ifndef CERTA_DATA_CSV_H_
#define CERTA_DATA_CSV_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/table.h"

namespace certa::data {

/// Parses RFC-4180-style CSV text: quoted fields, embedded commas,
/// doubled quotes, and both \n and \r\n line endings. Returns one row
/// per line; rows may have differing arity (callers validate).
std::vector<std::vector<std::string>> ParseCsv(const std::string& text);

/// Serializes rows to CSV, quoting fields that contain commas, quotes
/// or newlines.
std::string WriteCsv(const std::vector<std::vector<std::string>>& rows);

/// Reads a source table from a CSV file whose header is
/// `id,<attr1>,<attr2>,...`. Returns false (and leaves `table`
/// untouched) on I/O or format errors.
bool LoadTableCsv(const std::string& path, const std::string& table_name,
                  Table* table);

/// Writes a table in the same format.
bool SaveTableCsv(const std::string& path, const Table& table);

/// Reads a labelled pair file with header `ltable_id,rtable_id,label`
/// (the DeepMatcher benchmark convention). Ids are resolved to record
/// indices against the given tables; unknown ids fail the load.
bool LoadPairsCsv(const std::string& path, const Table& left,
                  const Table& right, std::vector<LabeledPair>* pairs);

/// Writes pairs in the same format (indices mapped back to record ids).
bool SavePairsCsv(const std::string& path, const Table& left,
                  const Table& right, const std::vector<LabeledPair>& pairs);

/// Loads a full DeepMatcher-format dataset directory containing
/// tableA.csv, tableB.csv, train.csv and test.csv. Allows dropping real
/// benchmark data into the pipeline when available.
bool LoadDatasetDirectory(const std::string& directory,
                          const std::string& code, Dataset* dataset);

/// Writes a dataset in the directory layout read by
/// LoadDatasetDirectory. The directory must already exist.
bool SaveDatasetDirectory(const std::string& directory,
                          const Dataset& dataset);

}  // namespace certa::data

#endif  // CERTA_DATA_CSV_H_
