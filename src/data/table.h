#ifndef CERTA_DATA_TABLE_H_
#define CERTA_DATA_TABLE_H_

#include <string>
#include <vector>

namespace certa::data {

/// Which source a record (or attribute) belongs to. ER matches records
/// across two sources U (left) and V (right); CERTA's open triangles and
/// all explanations are side-qualified.
enum class Side {
  kLeft = 0,
  kRight = 1,
};

/// Returns the opposite side.
Side Opposite(Side side);

/// "L" / "R" prefixes used in explanation output (mirrors the paper's
/// Fig. 12 labelling).
const char* SidePrefix(Side side);

/// Ordered attribute names for one source. Sources may have different
/// schemas (the DeepMatcher benchmarks happen to use aligned ones).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<std::string> attribute_names);

  int size() const { return static_cast<int>(names_.size()); }
  const std::string& name(int index) const;
  const std::vector<std::string>& names() const { return names_; }

  /// Index of `name`, or -1 if absent.
  int IndexOf(const std::string& name) const;

  bool operator==(const Schema& other) const { return names_ == other.names_; }

 private:
  std::vector<std::string> names_;
};

/// One structured entity description: an id plus one string value per
/// schema attribute. Missing values are stored as "NaN" (the benchmark
/// convention); see text::IsMissing.
struct Record {
  int id = -1;
  std::vector<std::string> values;

  const std::string& value(int attribute) const { return values[attribute]; }

  bool operator==(const Record& other) const {
    return id == other.id && values == other.values;
  }
};

/// A named collection of records sharing a schema.
class Table {
 public:
  Table() = default;
  Table(std::string name, Schema schema);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Appends a record; its value count must match the schema.
  void Add(Record record);

  int size() const { return static_cast<int>(records_.size()); }
  const Record& record(int index) const;
  const std::vector<Record>& records() const { return records_; }

  /// Record with the given id, or nullptr. Ids need not be dense.
  const Record* FindById(int id) const;

  /// Number of distinct non-missing attribute values across the whole
  /// table (the "Values" column of the paper's Table 1).
  int CountDistinctValues() const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<Record> records_;
};

}  // namespace certa::data

#endif  // CERTA_DATA_TABLE_H_
