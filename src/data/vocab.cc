#include "data/vocab.h"

#include "util/logging.h"

namespace certa::data {
namespace {

// Shared pools reused across product-like domains.
const std::vector<std::string>& CommonFillers() {
  static const auto& fillers = *new std::vector<std::string>{
      "with",     "and",      "for",     "series",   "edition",  "pack",
      "new",      "original", "premium", "classic",  "pro",      "plus",
      "compact",  "digital",  "wireless", "portable", "advanced", "standard",
      "deluxe",   "genuine",  "official", "special",  "limited",  "extra"};
  return fillers;
}

DomainVocab* MakeElectronics() {
  auto* vocab = new DomainVocab();
  vocab->brands = {"sony",    "samsung", "panasonic", "altec lansing",
                   "canon",   "nikon",   "toshiba",   "philips",
                   "yamaha",  "denon",   "pioneer",   "jvc",
                   "sharp",   "lg",      "bose",      "sanyo",
                   "olympus", "kenwood", "garmin",    "logitech"};
  vocab->descriptors = {
      "bravia",   "theater",  "speaker",  "receiver", "camcorder", "lcd",
      "plasma",   "hdtv",     "dvd",      "player",   "changer",   "micro",
      "system",   "home",     "audio",    "video",    "flat",      "panel",
      "surround", "channel",  "inmotion", "dock",     "subwoofer", "tuner",
      "amplifier", "headphone", "battery", "charger",  "remote",    "lens",
      "zoom",     "flash",    "memory",   "card",     "cable",     "adapter"};
  vocab->categories = {"television", "audio system", "camera",
                       "dvd player", "speaker",      "accessory"};
  vocab->fillers = CommonFillers();
  vocab->persons = {};
  vocab->places = {};
  return vocab;
}

DomainVocab* MakeSoftware() {
  auto* vocab = new DomainVocab();
  vocab->brands = {"microsoft", "adobe",    "symantec", "intuit",
                   "corel",     "mcafee",   "autodesk", "apple",
                   "roxio",     "nero",     "kaspersky", "avanquest",
                   "broderbund", "encore",  "topics entertainment",
                   "sage",      "nuance",   "vmware",   "parallels"};
  vocab->descriptors = {
      "office",    "photoshop", "studio",   "suite",     "antivirus",
      "security",  "quicken",   "quickbooks", "creative", "premier",
      "elements",  "illustrator", "acrobat", "reader",   "publisher",
      "visio",     "project",   "accounting", "tax",     "backup",
      "recovery",  "utilities", "painter",  "draw",      "designer",
      "web",       "video",     "editing",  "learning",  "spanish",
      "typing",    "tutor",     "upgrade",  "license"};
  vocab->categories = {"business software", "security software",
                       "graphics software", "education software",
                       "utility software",  "operating system"};
  vocab->fillers = CommonFillers();
  vocab->persons = {};
  vocab->places = {};
  return vocab;
}

DomainVocab* MakeBeer() {
  auto* vocab = new DomainVocab();
  vocab->brands = {"deschutes brewery",    "stone brewing",
                   "sierra nevada",        "dogfish head",
                   "bainbridge island brewing", "mammoth brewing",
                   "phillips brewing",     "scuttlebutt brewing",
                   "founders brewing",     "bells brewery",
                   "lagunitas brewing",    "russian river brewing",
                   "great lakes brewing",  "rogue ales",
                   "oskar blues brewery",  "new belgium brewing",
                   "victory brewing",      "harpoon brewery",
                   "odell brewing",        "green flash brewing"};
  vocab->descriptors = {
      "amber",   "pale",   "imperial", "double",  "red",     "golden",
      "arrow",   "point",  "dragon",   "mccoy",   "lakes",   "organic",
      "hoppy",   "dark",   "old",      "winter",  "summer",  "harvest",
      "mountain", "river", "island",   "coast",   "ridge",   "valley",
      "stout",   "porter", "lager",    "ale",     "ipa",     "pilsner",
      "wheat",   "saison", "barleywine", "bock",  "dunkel",  "tripel"};
  vocab->categories = {"american amber / red ale", "american ipa",
                       "american strong ale",      "imperial stout",
                       "english porter",           "german pilsener",
                       "belgian tripel",           "american pale ale",
                       "altbier",                  "american amber ale"};
  vocab->fillers = CommonFillers();
  vocab->persons = {};
  vocab->places = {};
  return vocab;
}

DomainVocab* MakeBibliographic() {
  auto* vocab = new DomainVocab();
  // "brands" double as publication venues.
  vocab->brands = {"sigmod conference",  "vldb",
                   "icde",               "acm transactions on database systems",
                   "sigmod record",      "vldb journal",
                   "acm trans . inf . syst .", "tods",
                   "kdd",                "icdt",
                   "edbt",               "pods",
                   "cikm",               "www conference",
                   "data engineering bulletin", "journal of the acm"};
  vocab->descriptors = {
      "query",       "optimization", "database",   "distributed", "parallel",
      "transaction", "concurrency",  "control",    "indexing",    "spatial",
      "temporal",    "stream",       "processing", "mining",      "clustering",
      "classification", "learning",  "entity",     "resolution",  "integration",
      "schema",      "matching",     "semantic",   "web",         "xml",
      "relational",  "object",       "oriented",   "storage",     "recovery",
      "replication", "caching",      "view",       "maintenance", "approximate",
      "sampling",    "aggregation",  "join",       "algorithms",  "efficient",
      "scalable",    "adaptive",     "dynamic",    "incremental", "selectivity",
      "estimation",  "benchmark",    "performance"};
  vocab->categories = {"research paper", "survey", "demo", "industrial"};
  vocab->fillers = {"a",    "an",  "the", "on",   "of",  "for",
                    "in",   "and", "to",  "with", "using", "towards"};
  vocab->persons = {"garcia-molina", "stonebraker", "dewitt",   "gray",
                    "abiteboul",     "widom",       "ullman",   "bernstein",
                    "chaudhuri",     "naughton",    "carey",    "franklin",
                    "hellerstein",   "ioannidis",   "jagadish", "ramakrishnan",
                    "silberschatz",  "agrawal",     "srikant",  "faloutsos",
                    "han",           "koudas",      "srivastava", "divesh",
                    "doan",          "halevy",      "ives",     "suciu",
                    "vianu",         "libkin",      "lenzerini", "calvanese"};
  vocab->places = {};
  return vocab;
}

DomainVocab* MakeRestaurant() {
  auto* vocab = new DomainVocab();
  vocab->brands = {"ritz-carlton",   "four seasons", "campanile",
                   "chinois",        "spago",        "patina",
                   "granita",        "valentino",    "matsuhisa",
                   "nobu",           "daniel",       "lespinasse",
                   "aureole",        "union square",  "gotham",
                   "mesa grill",     "montrachet",   "chanterelle",
                   "palm",           "smith & wollensky"};
  vocab->descriptors = {"cafe",   "grill",   "bistro", "kitchen", "room",
                        "garden", "terrace", "house",  "tavern",  "brasserie",
                        "on main", "downtown", "uptown", "westside", "original"};
  vocab->categories = {"french",      "italian",   "american",
                       "californian", "japanese",  "chinese",
                       "steakhouses", "seafood",   "continental",
                       "southwestern", "delis",    "coffee shops"};
  vocab->fillers = CommonFillers();
  vocab->persons = {};
  vocab->places = {"new york",     "los angeles", "san francisco",
                   "atlanta",      "chicago",     "las vegas",
                   "beverly hills", "santa monica", "brooklyn",
                   "west hollywood", "pasadena",  "studio city"};
  return vocab;
}

DomainVocab* MakeMusic() {
  auto* vocab = new DomainVocab();
  vocab->brands = {"taylor swift",  "kanye west",   "beyonce",
                   "rihanna",       "drake",        "adele",
                   "coldplay",      "maroon 5",     "eminem",
                   "lady gaga",     "katy perry",   "bruno mars",
                   "justin bieber", "ed sheeran",   "ariana grande",
                   "the weeknd",    "imagine dragons", "one direction",
                   "shakira",       "pink"};
  vocab->descriptors = {
      "love",   "heart",  "night",  "dance",  "fire",    "dream",
      "crazy",  "beautiful", "story", "girl", "boy",     "summer",
      "midnight", "golden", "wild",  "young", "forever", "broken",
      "shine",  "star",   "light",  "dark",  "blue",     "red",
      "sweet",  "bad",    "good",   "lonely", "happy",   "tears"};
  vocab->categories = {"pop",           "hip-hop / rap", "r&b / soul",
                       "rock",          "country",       "dance",
                       "alternative",   "electronic",    "latin",
                       "singer / songwriter"};
  vocab->fillers = {"feat", "remix", "version", "deluxe", "single",
                    "album", "explicit", "clean", "live", "acoustic"};
  vocab->persons = {};
  vocab->places = {};
  return vocab;
}

DomainVocab* MakeGeneralProduct() {
  auto* vocab = new DomainVocab();
  vocab->brands = {"hp",        "dell",     "lenovo",   "asus",
                   "acer",      "belkin",   "netgear",  "linksys",
                   "brother",   "epson",    "xerox",    "kingston",
                   "sandisk",   "seagate",  "western digital", "tp-link",
                   "d-link",    "corsair",  "targus",   "kensington"};
  vocab->descriptors = {
      "laptop",   "notebook", "printer",  "scanner",  "router",  "monitor",
      "keyboard", "mouse",    "drive",    "storage",  "usb",     "flash",
      "wireless", "ethernet", "toner",    "cartridge", "ink",    "photo",
      "inkjet",   "laser",    "all-in-one", "desktop", "tablet", "case",
      "sleeve",   "bag",      "stand",    "dock",     "hub",     "switch"};
  vocab->categories = {"computers",   "printers",  "networking",
                       "storage",     "accessories", "electronics - general"};
  vocab->fillers = CommonFillers();
  vocab->persons = {};
  vocab->places = {};
  return vocab;
}

}  // namespace

const DomainVocab& GetVocab(Domain domain) {
  // Leaked singletons: static-storage objects must be trivially
  // destructible, so these are built once and never destroyed.
  static const DomainVocab* const electronics = MakeElectronics();
  static const DomainVocab* const software = MakeSoftware();
  static const DomainVocab* const beer = MakeBeer();
  static const DomainVocab* const bibliographic = MakeBibliographic();
  static const DomainVocab* const restaurant = MakeRestaurant();
  static const DomainVocab* const music = MakeMusic();
  static const DomainVocab* const general = MakeGeneralProduct();
  switch (domain) {
    case Domain::kElectronics:
      return *electronics;
    case Domain::kSoftware:
      return *software;
    case Domain::kBeer:
      return *beer;
    case Domain::kBibliographic:
      return *bibliographic;
    case Domain::kRestaurant:
      return *restaurant;
    case Domain::kMusic:
      return *music;
    case Domain::kGeneralProduct:
      return *general;
  }
  CERTA_LOG(Fatal) << "Unknown domain";
  return *electronics;
}

}  // namespace certa::data
