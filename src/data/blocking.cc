#include "data/blocking.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_set>

#include "text/tokenizer.h"
#include "util/logging.h"

namespace certa::data {

std::unordered_set<std::string> RecordTokenSet(const Record& record) {
  std::unordered_set<std::string> tokens;
  for (const std::string& value : record.values) {
    if (text::IsMissing(value)) continue;
    for (std::string& token : text::Tokenize(value)) {
      tokens.insert(std::move(token));
    }
  }
  return tokens;
}

TokenBlocker::TokenBlocker(const Table& table, BlockingOptions options)
    : table_(&table), options_(options) {
  CERTA_CHECK_GT(options_.min_shared_tokens, 0);
  CERTA_CHECK_GT(options_.max_candidates_per_record, 0);
  for (int r = 0; r < table.size(); ++r) {
    for (const std::string& token : RecordTokenSet(table.record(r))) {
      index_[token].push_back(r);
    }
  }
  // Stop-token pruning + IDF weights.
  const double n = std::max(1, table.size());
  for (auto it = index_.begin(); it != index_.end();) {
    double frequency = static_cast<double>(it->second.size()) / n;
    if (frequency > options_.max_token_frequency &&
        it->second.size() > 1) {
      it = index_.erase(it);
      continue;
    }
    idf_[it->first] =
        std::log(n / static_cast<double>(it->second.size())) + 1.0;
    ++it;
  }
}

std::vector<int> TokenBlocker::Candidates(const Record& probe) const {
  std::unordered_map<int, double> weight;
  std::unordered_map<int, int> shared;
  for (const std::string& token : RecordTokenSet(probe)) {
    auto it = index_.find(token);
    if (it == index_.end()) continue;
    double idf = idf_.at(token);
    for (int r : it->second) {
      weight[r] += idf;
      ++shared[r];
    }
  }
  std::vector<int> candidates;
  candidates.reserve(weight.size());
  for (const auto& [r, count] : shared) {
    if (count >= options_.min_shared_tokens) candidates.push_back(r);
  }
  std::sort(candidates.begin(), candidates.end(), [&](int a, int b) {
    double wa = weight.at(a);
    double wb = weight.at(b);
    if (wa != wb) return wa > wb;
    return a < b;
  });
  if (static_cast<int>(candidates.size()) >
      options_.max_candidates_per_record) {
    candidates.resize(
        static_cast<size_t>(options_.max_candidates_per_record));
  }
  return candidates;
}

std::vector<std::pair<int, int>> BlockAll(const Table& left,
                                          const Table& right,
                                          const BlockingOptions& options) {
  TokenBlocker blocker(right, options);
  std::vector<std::pair<int, int>> pairs;
  for (int li = 0; li < left.size(); ++li) {
    for (int ri : blocker.Candidates(left.record(li))) {
      pairs.emplace_back(li, ri);
    }
  }
  return pairs;
}

double BlockingRecall(const std::vector<std::pair<int, int>>& candidates,
                      const std::vector<LabeledPair>& truth) {
  std::set<std::pair<int, int>> candidate_set(candidates.begin(),
                                              candidates.end());
  int matches = 0;
  int found = 0;
  for (const LabeledPair& pair : truth) {
    if (pair.label != 1) continue;
    ++matches;
    if (candidate_set.count({pair.left_index, pair.right_index})) ++found;
  }
  if (matches == 0) return 1.0;
  return static_cast<double>(found) / matches;
}

}  // namespace certa::data
