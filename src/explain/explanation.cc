#include "explain/explanation.h"

#include <algorithm>

#include "util/logging.h"

namespace certa::explain {

std::string QualifiedAttributeName(const data::Schema& left,
                                   const data::Schema& right,
                                   AttributeRef ref) {
  const data::Schema& schema = ref.side == data::Side::kLeft ? left : right;
  return std::string(data::SidePrefix(ref.side)) + "_" +
         schema.name(ref.index);
}

SaliencyExplanation::SaliencyExplanation(int left_attributes,
                                         int right_attributes)
    : left_scores_(left_attributes, 0.0),
      right_scores_(right_attributes, 0.0) {
  CERTA_CHECK_GT(left_attributes, 0);
  CERTA_CHECK_GT(right_attributes, 0);
}

double SaliencyExplanation::score(AttributeRef ref) const {
  const auto& scores =
      ref.side == data::Side::kLeft ? left_scores_ : right_scores_;
  CERTA_CHECK_GE(ref.index, 0);
  CERTA_CHECK_LT(static_cast<size_t>(ref.index), scores.size());
  return scores[ref.index];
}

void SaliencyExplanation::set_score(AttributeRef ref, double value) {
  auto& scores = ref.side == data::Side::kLeft ? left_scores_ : right_scores_;
  CERTA_CHECK_GE(ref.index, 0);
  CERTA_CHECK_LT(static_cast<size_t>(ref.index), scores.size());
  scores[ref.index] = value;
}

std::vector<AttributeRef> SaliencyExplanation::Ranked() const {
  std::vector<AttributeRef> refs;
  for (int i = 0; i < left_size(); ++i) refs.push_back({data::Side::kLeft, i});
  for (int i = 0; i < right_size(); ++i) {
    refs.push_back({data::Side::kRight, i});
  }
  std::stable_sort(refs.begin(), refs.end(),
                   [this](AttributeRef a, AttributeRef b) {
                     double sa = score(a);
                     double sb = score(b);
                     if (sa != sb) return sa > sb;
                     if (a.side != b.side) {
                       return a.side == data::Side::kLeft;
                     }
                     return a.index < b.index;
                   });
  return refs;
}

std::vector<double> SaliencyExplanation::Flattened() const {
  std::vector<double> flat = left_scores_;
  flat.insert(flat.end(), right_scores_.begin(), right_scores_.end());
  return flat;
}

}  // namespace certa::explain
