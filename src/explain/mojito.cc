#include "explain/mojito.h"

#include "util/logging.h"

namespace certa::explain {

MojitoExplainer::MojitoExplainer(ExplainContext context, LimeOptions options)
    : context_(context), options_(options) {
  CERTA_CHECK(context_.valid());
}

SaliencyExplanation MojitoExplainer::ExplainSaliency(const data::Record& u,
                                                     const data::Record& v) {
  bool predicted_match = context_.model->Predict(u, v);
  PerturbOp op = predicted_match ? PerturbOp::kDrop : PerturbOp::kCopy;
  return FitLimeSurrogate(context_, u, v, op, /*perturb_left=*/true,
                          /*perturb_right=*/true, options_);
}

}  // namespace certa::explain
