#include "explain/lime.h"

#include <cmath>

#include "explain/perturbation.h"
#include "ml/dense.h"
#include "util/logging.h"
#include "util/random.h"

namespace certa::explain {
namespace {

uint64_t PairSeed(const data::Record& u, const data::Record& v,
                  uint64_t seed) {
  uint64_t hash = seed ^ 0x9E3779B97F4A7C15ULL;
  auto mix = [&hash](const std::string& value) {
    for (char c : value) {
      hash ^= static_cast<unsigned char>(c);
      hash *= 0x100000001b3ULL;
    }
  };
  for (const std::string& value : u.values) mix(value);
  for (const std::string& value : v.values) mix(value);
  return hash;
}

}  // namespace

void ApplyPerturbOp(const data::Record& u, const data::Record& v,
                    data::Side side, uint32_t mask, PerturbOp op,
                    data::Record* out_u, data::Record* out_v) {
  *out_u = u;
  *out_v = v;
  bool aligned = u.values.size() == v.values.size();
  data::Record& target = side == data::Side::kLeft ? *out_u : *out_v;
  const data::Record& counterpart = side == data::Side::kLeft ? v : u;
  for (size_t i = 0; i < target.values.size(); ++i) {
    if (!(mask & (1u << i))) continue;
    if (op == PerturbOp::kCopy && aligned) {
      target.values[i] = counterpart.values[i];
    } else {
      target.values[i] = "";
    }
  }
}

SaliencyExplanation FitLimeSurrogate(const ExplainContext& context,
                                     const data::Record& u,
                                     const data::Record& v, PerturbOp op,
                                     bool perturb_left, bool perturb_right,
                                     const LimeOptions& options) {
  CERTA_CHECK(context.valid());
  CERTA_CHECK(perturb_left || perturb_right);
  const int left_attributes = static_cast<int>(u.values.size());
  const int right_attributes = static_cast<int>(v.values.size());
  SaliencyExplanation explanation(left_attributes, right_attributes);

  // Interpretable feature space: one presence bit per perturbable
  // attribute, left side first.
  std::vector<AttributeRef> features;
  if (perturb_left) {
    for (int i = 0; i < left_attributes; ++i) {
      features.push_back({data::Side::kLeft, i});
    }
  }
  if (perturb_right) {
    for (int i = 0; i < right_attributes; ++i) {
      features.push_back({data::Side::kRight, i});
    }
  }
  const int d = static_cast<int>(features.size());
  if (d == 0) return explanation;

  Rng rng(PairSeed(u, v, options.seed));
  const int n = options.num_samples;
  // Design matrix: d presence bits + intercept column.
  ml::Matrix design(n, d + 1, 0.0);
  ml::Vector targets(n, 0.0);
  ml::Vector weights(n, 0.0);

  // Two-phase sampling: generate every perturbed pair first (Score
  // consumes no rng state, so the sample stream is unchanged), then
  // score them as one batch.
  std::vector<data::Record> perturbed_u(n);
  std::vector<data::Record> perturbed_v(n);
  for (int s = 0; s < n; ++s) {
    // First sample is the unperturbed input (anchor, weight 1).
    uint64_t bits = s == 0 ? ~0ull : rng.NextUint64();
    int off_count = 0;
    data::Record pu = u;
    data::Record pv = v;
    for (int f = 0; f < d; ++f) {
      bool on = (bits >> f) & 1ull;
      design.at(s, f) = on ? 1.0 : 0.0;
      if (on) continue;
      ++off_count;
      AttributeRef ref = features[f];
      data::Record tmp_u;
      data::Record tmp_v;
      ApplyPerturbOp(pu, pv, ref.side, 1u << ref.index, op, &tmp_u, &tmp_v);
      pu = std::move(tmp_u);
      pv = std::move(tmp_v);
    }
    design.at(s, d) = 1.0;  // intercept
    perturbed_u[s] = std::move(pu);
    perturbed_v[s] = std::move(pv);
    double distance = static_cast<double>(off_count) / d;
    weights[s] = std::exp(-(distance * distance) /
                          (options.kernel_width * options.kernel_width));
  }
  std::vector<models::RecordPair> pairs(n);
  for (int s = 0; s < n; ++s) pairs[s] = {&perturbed_u[s], &perturbed_v[s]};
  std::vector<double> scores = context.model->ScoreBatch(pairs);
  for (int s = 0; s < n; ++s) targets[s] = scores[s];

  ml::Vector beta;
  if (!ml::WeightedRidge(design, targets, weights, options.ridge, &beta)) {
    return explanation;  // degenerate fit -> all-zero explanation
  }
  for (int f = 0; f < d; ++f) {
    explanation.set_score(features[f], std::fabs(beta[f]));
  }
  return explanation;
}

}  // namespace certa::explain
