#ifndef CERTA_EXPLAIN_SHAP_H_
#define CERTA_EXPLAIN_SHAP_H_

#include <cstdint>

#include "explain/explainer.h"

namespace certa::explain {

/// Task-agnostic KernelSHAP (Lundberg & Lee, NeurIPS'17) over the
/// pair's attributes: coalitions of present attributes are enumerated
/// (exactly when 2^d is small, sampled otherwise), absent attributes
/// are masked out, and Shapley values are recovered by the weighted
/// least-squares formulation with the Shapley kernel. Scores are the
/// absolute Shapley values. This is the paper's semantics-agnostic
/// saliency baseline (Sect. 5.2).
class ShapExplainer : public SaliencyExplainer {
 public:
  struct Options {
    /// Coalition budget; all 2^d - 2 coalitions are used when they fit.
    int max_coalitions = 512;
    double ridge = 1e-6;
    uint64_t seed = 31;
  };

  ShapExplainer(ExplainContext context, Options options);
  explicit ShapExplainer(ExplainContext context)
      : ShapExplainer(context, Options()) {}

  std::string name() const override { return "SHAP"; }

  SaliencyExplanation ExplainSaliency(const data::Record& u,
                                      const data::Record& v) override;

 private:
  ExplainContext context_;
  Options options_;
};

}  // namespace certa::explain

#endif  // CERTA_EXPLAIN_SHAP_H_
