#include "explain/report.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"
#include "util/string_utils.h"

namespace certa::explain {
namespace {

constexpr int kBarWidth = 24;

std::string Bar(double fraction) {
  int filled = static_cast<int>(fraction * kBarWidth + 0.5);
  filled = std::clamp(filled, 0, kBarWidth);
  return std::string(static_cast<size_t>(filled), '#');
}

void AppendPairValues(std::ostringstream& out, const data::Record& record,
                      const data::Schema& schema, const char* prefix) {
  for (int a = 0; a < schema.size(); ++a) {
    out << "  " << prefix << "_" << schema.name(a) << " = "
        << record.value(a) << "\n";
  }
}

}  // namespace

std::string RenderSaliency(const SaliencyExplanation& explanation,
                           const data::Schema& left,
                           const data::Schema& right) {
  std::ostringstream out;
  double max_score = 1e-12;
  for (double score : explanation.Flattened()) {
    max_score = std::max(max_score, score);
  }
  size_t name_width = 0;
  for (const AttributeRef& ref : explanation.Ranked()) {
    name_width = std::max(name_width,
                          QualifiedAttributeName(left, right, ref).size());
  }
  for (const AttributeRef& ref : explanation.Ranked()) {
    std::string name = QualifiedAttributeName(left, right, ref);
    double score = explanation.score(ref);
    out << "  " << name << std::string(name_width - name.size(), ' ')
        << "  " << FormatDouble(score, 3) << "  " << Bar(score / max_score)
        << "\n";
  }
  return out.str();
}

std::string RenderCounterfactual(const CounterfactualExample& example,
                                 const data::Record& original_u,
                                 const data::Record& original_v,
                                 const data::Schema& left,
                                 const data::Schema& right,
                                 double original_score) {
  std::ostringstream out;
  bool was_match = original_score >= 0.5;
  out << "  changing {";
  for (size_t c = 0; c < example.changed_attributes.size(); ++c) {
    if (c > 0) out << ", ";
    out << QualifiedAttributeName(left, right,
                                  example.changed_attributes[c]);
  }
  out << "} turns the " << (was_match ? "Match" : "Non-Match");
  if (example.score >= 0.0) {
    out << " into score " << FormatDouble(example.score, 3) << " ("
        << (example.score >= 0.5 ? "Match" : "Non-Match") << ")";
  }
  if (example.sufficiency > 0.0) {
    out << ", sufficiency " << FormatDouble(example.sufficiency, 2);
  }
  out << "\n";
  auto render_changed = [&](const data::Record& modified,
                            const data::Record& original,
                            const data::Schema& schema,
                            const char* prefix) {
    for (int a = 0; a < schema.size(); ++a) {
      if (modified.value(a) == original.value(a)) continue;
      out << "    " << prefix << "_" << schema.name(a) << ": \""
          << original.value(a) << "\" -> \"" << modified.value(a)
          << "\"\n";
    }
  };
  render_changed(example.left, original_u, left, "L");
  render_changed(example.right, original_v, right, "R");
  return out.str();
}

std::string RenderReport(const data::Record& u, const data::Record& v,
                         const data::Schema& left,
                         const data::Schema& right, double score,
                         const SaliencyExplanation& saliency,
                         const std::vector<CounterfactualExample>& examples,
                         int max_examples) {
  std::ostringstream out;
  out << "prediction: " << (score >= 0.5 ? "Match" : "Non-Match")
      << " (score " << FormatDouble(score, 3) << ")\n";
  out << "input pair:\n";
  AppendPairValues(out, u, left, "L");
  AppendPairValues(out, v, right, "R");
  out << "attribute saliency (probability of necessity):\n";
  out << RenderSaliency(saliency, left, right);
  if (examples.empty()) {
    out << "no counterfactual examples found\n";
    return out.str();
  }
  out << "counterfactuals (" << examples.size() << " found):\n";
  int shown = 0;
  for (const CounterfactualExample& example : examples) {
    if (shown++ >= max_examples) break;
    out << RenderCounterfactual(example, u, v, left, right, score);
  }
  return out.str();
}

std::string RenderStatusLine(const std::string& status_name, long long calls,
                             long long retries, long long failures,
                             long long cells_skipped) {
  if (status_name == "complete") return "";
  std::ostringstream out;
  out << "status: " << status_name << " (";
  if (calls > 0) out << calls << " model calls, ";
  if (retries > 0) out << retries << " retries, ";
  if (failures > 0) out << failures << " failures, ";
  out << cells_skipped << " cells skipped)\n";
  return out.str();
}

}  // namespace certa::explain
