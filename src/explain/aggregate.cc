#include "explain/aggregate.h"

#include <cmath>

#include "util/logging.h"
#include "util/string_utils.h"

namespace certa::explain {
namespace {

double ExplanationDistance(const SaliencyExplanation& a,
                           const SaliencyExplanation& b) {
  std::vector<double> flat_a = a.Flattened();
  std::vector<double> flat_b = b.Flattened();
  CERTA_CHECK_EQ(flat_a.size(), flat_b.size());
  double sum = 0.0;
  for (size_t i = 0; i < flat_a.size(); ++i) {
    double delta = flat_a[i] - flat_b[i];
    sum += delta * delta;
  }
  return std::sqrt(sum);
}

}  // namespace

GlobalExplanation AggregateExplanations(
    const ExplainContext& context,
    const std::vector<data::LabeledPair>& pairs, const data::Table& left,
    const data::Table& right,
    const std::vector<SaliencyExplanation>& explanations,
    int num_representatives) {
  CERTA_CHECK(context.valid());
  CERTA_CHECK_EQ(pairs.size(), explanations.size());
  const int left_attributes = left.schema().size();
  const int right_attributes = right.schema().size();

  GlobalExplanation global;
  global.mean_match = SaliencyExplanation(left_attributes, right_attributes);
  global.mean_non_match =
      SaliencyExplanation(left_attributes, right_attributes);

  // Class-conditional mean saliency.
  for (size_t p = 0; p < pairs.size(); ++p) {
    bool predicted_match = context.model->Predict(
        left.record(pairs[p].left_index), right.record(pairs[p].right_index));
    SaliencyExplanation& sink =
        predicted_match ? global.mean_match : global.mean_non_match;
    (predicted_match ? global.match_count : global.non_match_count) += 1;
    for (int a = 0; a < left_attributes; ++a) {
      AttributeRef ref{data::Side::kLeft, a};
      sink.set_score(ref, sink.score(ref) + explanations[p].score(ref));
    }
    for (int a = 0; a < right_attributes; ++a) {
      AttributeRef ref{data::Side::kRight, a};
      sink.set_score(ref, sink.score(ref) + explanations[p].score(ref));
    }
  }
  auto normalize = [&](SaliencyExplanation* sink, int count) {
    if (count == 0) return;
    for (int a = 0; a < left_attributes; ++a) {
      AttributeRef ref{data::Side::kLeft, a};
      sink->set_score(ref, sink->score(ref) / count);
    }
    for (int a = 0; a < right_attributes; ++a) {
      AttributeRef ref{data::Side::kRight, a};
      sink->set_score(ref, sink->score(ref) / count);
    }
  };
  normalize(&global.mean_match, global.match_count);
  normalize(&global.mean_non_match, global.non_match_count);

  // Representative pairs: greedy k-medoids — first the pair minimizing
  // total distance to all others, then iteratively the pair minimizing
  // total distance to its still-uncovered peers.
  const int k = std::min<int>(num_representatives,
                              static_cast<int>(pairs.size()));
  std::vector<bool> chosen(pairs.size(), false);
  for (int round = 0; round < k; ++round) {
    int best = -1;
    double best_cost = 0.0;
    for (size_t candidate = 0; candidate < pairs.size(); ++candidate) {
      if (chosen[candidate]) continue;
      double cost = 0.0;
      for (size_t other = 0; other < pairs.size(); ++other) {
        if (other == candidate || chosen[other]) continue;
        cost += ExplanationDistance(explanations[candidate],
                                    explanations[other]);
      }
      if (best < 0 || cost < best_cost) {
        best = static_cast<int>(candidate);
        best_cost = cost;
      }
    }
    if (best < 0) break;
    chosen[static_cast<size_t>(best)] = true;
    global.representative_pairs.push_back(best);
  }
  return global;
}

std::string RenderGlobalExplanation(const GlobalExplanation& global,
                                    const data::Schema& left,
                                    const data::Schema& right) {
  std::string out;
  auto render_class = [&](const char* title,
                          const SaliencyExplanation& mean, int count) {
    out += std::string(title) + " (" + std::to_string(count) +
           " predictions):\n";
    if (count == 0) {
      out += "  (none)\n";
      return;
    }
    for (const AttributeRef& ref : mean.Ranked()) {
      out += "  " + QualifiedAttributeName(left, right, ref) + " = " +
             FormatDouble(mean.score(ref), 3) + "\n";
    }
  };
  render_class("mean saliency, predicted Match", global.mean_match,
               global.match_count);
  render_class("mean saliency, predicted Non-Match", global.mean_non_match,
               global.non_match_count);
  out += "representative pairs (explanation medoids): ";
  std::vector<std::string> indices;
  for (int index : global.representative_pairs) {
    indices.push_back(std::to_string(index));
  }
  out += Join(indices, ", ") + "\n";
  return out;
}

}  // namespace certa::explain
