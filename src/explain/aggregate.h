#ifndef CERTA_EXPLAIN_AGGREGATE_H_
#define CERTA_EXPLAIN_AGGREGATE_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "explain/explainer.h"
#include "explain/explanation.h"

namespace certa::explain {

/// Global (dataset-level) view over many local explanations — the
/// workflow ExplainER's front-end provides (paper Sect. 2): which
/// attributes drive the model *overall*, split by predicted class, and
/// which explained pairs are representative of distinct behaviours.
struct GlobalExplanation {
  /// Mean saliency per attribute over pairs predicted Match.
  SaliencyExplanation mean_match;
  /// Mean saliency per attribute over pairs predicted Non-Match.
  SaliencyExplanation mean_non_match;
  int match_count = 0;
  int non_match_count = 0;
  /// Indices (into the explained pair list) of representative pairs:
  /// greedy medoids under explanation-vector distance, most central
  /// first.
  std::vector<int> representative_pairs;
};

/// Aggregates local explanations into a global one. `explanations` are
/// parallel to `pairs`; `num_representatives` caps the medoid list.
GlobalExplanation AggregateExplanations(
    const ExplainContext& context,
    const std::vector<data::LabeledPair>& pairs, const data::Table& left,
    const data::Table& right,
    const std::vector<SaliencyExplanation>& explanations,
    int num_representatives = 3);

/// Renders the global explanation as text (mean saliency per class +
/// the representative pairs).
std::string RenderGlobalExplanation(const GlobalExplanation& global,
                                    const data::Schema& left,
                                    const data::Schema& right);

}  // namespace certa::explain

#endif  // CERTA_EXPLAIN_AGGREGATE_H_
