#include "explain/json_export.h"

#include "util/atomic_file.h"

namespace certa::explain {
namespace {

void WriteRecord(JsonWriter* json, const data::Record& record,
                 const data::Schema& schema) {
  json->BeginObject();
  json->Key("id");
  json->Int(record.id);
  for (int a = 0; a < schema.size(); ++a) {
    json->Key(schema.name(a));
    json->String(record.value(a));
  }
  json->EndObject();
}

}  // namespace

void WriteSaliency(JsonWriter* json, const SaliencyExplanation& explanation,
                   const data::Schema& left, const data::Schema& right) {
  json->BeginObject();
  json->Key("attributes");
  json->BeginArray();
  for (const AttributeRef& ref : explanation.Ranked()) {
    json->BeginObject();
    json->Key("name");
    json->String(QualifiedAttributeName(left, right, ref));
    json->Key("score");
    json->Number(explanation.score(ref));
    json->EndObject();
  }
  json->EndArray();
  json->EndObject();
}

void WriteCounterfactual(JsonWriter* json,
                         const CounterfactualExample& example,
                         const data::Schema& left,
                         const data::Schema& right) {
  json->BeginObject();
  json->Key("changed_attributes");
  json->BeginArray();
  for (const AttributeRef& ref : example.changed_attributes) {
    json->String(QualifiedAttributeName(left, right, ref));
  }
  json->EndArray();
  json->Key("score");
  if (example.score >= 0.0) {
    json->Number(example.score);
  } else {
    json->Null();
  }
  json->Key("sufficiency");
  json->Number(example.sufficiency);
  json->Key("left");
  WriteRecord(json, example.left, left);
  json->Key("right");
  WriteRecord(json, example.right, right);
  json->EndObject();
}

std::string SaliencyToJson(const SaliencyExplanation& explanation,
                           const data::Schema& left,
                           const data::Schema& right) {
  JsonWriter json;
  WriteSaliency(&json, explanation, left, right);
  return json.str();
}

std::string CounterfactualToJson(const CounterfactualExample& example,
                                 const data::Schema& left,
                                 const data::Schema& right) {
  JsonWriter json;
  WriteCounterfactual(&json, example, left, right);
  return json.str();
}

bool SaveJsonFile(const std::string& path, const std::string& json) {
  return util::AtomicWriteFile(path, json + "\n");
}

}  // namespace certa::explain
