#include "explain/dice.h"

#include <algorithm>
#include <set>

#include "text/similarity.h"
#include "text/tokenizer.h"
#include "util/logging.h"
#include "util/random.h"

namespace certa::explain {
namespace {

/// Mean attribute-wise dissimilarity between two counterfactual pairs,
/// used by the greedy diversity selection.
double PairDistance(const CounterfactualExample& a,
                    const CounterfactualExample& b) {
  double total = 0.0;
  int count = 0;
  for (size_t i = 0; i < a.left.values.size(); ++i) {
    total += 1.0 - text::AttributeSimilarity(a.left.values[i],
                                             b.left.values[i]);
    ++count;
  }
  for (size_t i = 0; i < a.right.values.size(); ++i) {
    total += 1.0 - text::AttributeSimilarity(a.right.values[i],
                                             b.right.values[i]);
    ++count;
  }
  return count > 0 ? total / count : 0.0;
}

std::string PairKey(const CounterfactualExample& example) {
  std::string key;
  for (const std::string& value : example.left.values) {
    key += value;
    key.push_back('\x1f');
  }
  key.push_back('\x1e');
  for (const std::string& value : example.right.values) {
    key += value;
    key.push_back('\x1f');
  }
  return key;
}

}  // namespace

DiceExplainer::DiceExplainer(ExplainContext context, Options options)
    : context_(context), options_(options) {
  CERTA_CHECK(context_.valid());
  CERTA_CHECK_GT(options_.total_cfs, 0);
}

std::vector<CounterfactualExample> DiceExplainer::ExplainCounterfactual(
    const data::Record& u, const data::Record& v) {
  const bool original = context_.model->Predict(u, v);
  const int left_attributes = static_cast<int>(u.values.size());
  const int right_attributes = static_cast<int>(v.values.size());

  // Empirical value pools per (side, attribute).
  auto pool_value = [&](data::Side side, int attribute, Rng* rng) {
    const data::Table& table =
        side == data::Side::kLeft ? *context_.left : *context_.right;
    if (table.size() == 0) return std::string(text::kMissingValue);
    for (int attempt = 0; attempt < 8; ++attempt) {
      const std::string& value =
          table.record(static_cast<int>(rng->Index(table.size())))
              .value(attribute);
      if (!text::IsMissing(value)) return value;
    }
    return std::string(text::kMissingValue);
  };

  uint64_t seed = options_.seed;
  for (const std::string& value : u.values) {
    for (char c : value) seed = seed * 0x100000001b3ULL + (unsigned char)c;
  }
  for (const std::string& value : v.values) {
    for (char c : value) seed = seed * 0x100000001b3ULL + (unsigned char)c;
  }
  Rng rng(seed);

  std::vector<CounterfactualExample> candidates;
  // Best-effort fallback: DiCE returns the requested number of examples
  // even when none of them actually flips (its validity can be < 1 —
  // the CERTA paper's footnote 6). Track the proposals that move the
  // score closest to the decision boundary.
  std::vector<CounterfactualExample> near_misses;
  std::set<std::string> seen;
  const int enough = options_.total_cfs * 3;

  for (int proposal = 0;
       proposal < options_.max_proposals &&
       static_cast<int>(candidates.size()) < enough;
       ++proposal) {
    CounterfactualExample candidate;
    candidate.left = u;
    candidate.right = v;
    std::vector<AttributeRef> changed;
    for (int i = 0; i < left_attributes; ++i) {
      if (!rng.Bernoulli(options_.change_probability)) continue;
      candidate.left.values[i] = pool_value(data::Side::kLeft, i, &rng);
      changed.push_back({data::Side::kLeft, i});
    }
    for (int i = 0; i < right_attributes; ++i) {
      if (!rng.Bernoulli(options_.change_probability)) continue;
      candidate.right.values[i] = pool_value(data::Side::kRight, i, &rng);
      changed.push_back({data::Side::kRight, i});
    }
    if (changed.empty()) continue;
    if (context_.model->Predict(candidate.left, candidate.right) ==
        original) {
      // Not a flip: remember it as a near miss if it moved the score
      // toward the boundary.
      if (near_misses.size() < 32) {
        candidate.changed_attributes = changed;
        candidate.score =
            context_.model->Score(candidate.left, candidate.right);
        near_misses.push_back(std::move(candidate));
      }
      continue;
    }
    // Sparsity pass: revert each change that is not needed for the flip.
    rng.Shuffle(&changed);
    std::vector<AttributeRef> kept;
    for (const AttributeRef& ref : changed) {
      std::string* slot = ref.side == data::Side::kLeft
                              ? &candidate.left.values[ref.index]
                              : &candidate.right.values[ref.index];
      const std::string& original_value = ref.side == data::Side::kLeft
                                              ? u.values[ref.index]
                                              : v.values[ref.index];
      std::string replaced = *slot;
      *slot = original_value;
      if (context_.model->Predict(candidate.left, candidate.right) ==
          original) {
        *slot = replaced;  // the change is necessary
        kept.push_back(ref);
      }
    }
    if (kept.empty()) continue;  // degenerate (flip vanished entirely)
    candidate.changed_attributes = kept;
    candidate.score = context_.model->Score(candidate.left, candidate.right);
    if (!seen.insert(PairKey(candidate)).second) continue;
    candidates.push_back(std::move(candidate));
  }

  if (candidates.empty() && !near_misses.empty()) {
    // No actual flip found: fall back to the proposals whose score came
    // closest to crossing the 0.5 boundary (best-effort examples).
    std::sort(near_misses.begin(), near_misses.end(),
              [original](const CounterfactualExample& a,
                         const CounterfactualExample& b) {
                double da = original ? a.score : -a.score;
                double db = original ? b.score : -b.score;
                return da < db;  // closest to flipping first
              });
    if (static_cast<int>(near_misses.size()) > options_.total_cfs) {
      near_misses.resize(static_cast<size_t>(options_.total_cfs));
    }
    return near_misses;
  }

  // Greedy selection of total_cfs examples optimizing DiCE's combined
  // objective: stay close to the input (proximity) while spreading the
  // set out (max-min diversity).
  std::vector<double> proximities(candidates.size(), 0.0);
  for (size_t c = 0; c < candidates.size(); ++c) {
    double similarity = 0.0;
    int count = 0;
    for (size_t i = 0; i < u.values.size(); ++i) {
      similarity += text::AttributeSimilarity(candidates[c].left.values[i],
                                              u.values[i]);
      ++count;
    }
    for (size_t i = 0; i < v.values.size(); ++i) {
      similarity += text::AttributeSimilarity(
          candidates[c].right.values[i], v.values[i]);
      ++count;
    }
    proximities[c] = count > 0 ? similarity / count : 0.0;
  }
  std::vector<CounterfactualExample> selected;
  std::vector<bool> used(candidates.size(), false);
  while (static_cast<int>(selected.size()) <
             std::min<int>(options_.total_cfs,
                           static_cast<int>(candidates.size()))) {
    int best = -1;
    double best_gain = -1e18;
    for (size_t c = 0; c < candidates.size(); ++c) {
      if (used[c]) continue;
      double spread = 0.0;
      if (!selected.empty()) {
        spread = 1e9;
        for (const CounterfactualExample& chosen : selected) {
          spread = std::min(spread, PairDistance(candidates[c], chosen));
        }
      }
      double gain = proximities[c] + 0.5 * spread;
      if (best < 0 || gain > best_gain) {
        best = static_cast<int>(c);
        best_gain = gain;
      }
    }
    if (best < 0) break;
    used[best] = true;
    selected.push_back(candidates[best]);
  }
  return selected;
}

}  // namespace certa::explain
