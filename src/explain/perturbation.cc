#include "explain/perturbation.h"

#include "text/tokenizer.h"
#include "util/logging.h"
#include "util/string_utils.h"

namespace certa::explain {

int MaskSize(AttrMask mask) { return __builtin_popcount(mask); }

std::vector<int> MaskToIndices(AttrMask mask) {
  std::vector<int> indices;
  for (int i = 0; mask != 0; ++i, mask >>= 1) {
    if (mask & 1u) indices.push_back(i);
  }
  return indices;
}

data::Record CopyAttributes(const data::Record& base,
                            const data::Record& source, AttrMask mask) {
  CERTA_CHECK_EQ(base.values.size(), source.values.size());
  data::Record result = base;
  for (size_t i = 0; i < base.values.size(); ++i) {
    if (mask & (1u << i)) result.values[i] = source.values[i];
  }
  return result;
}

data::Record DropAttributes(const data::Record& base, AttrMask mask) {
  data::Record result = base;
  for (size_t i = 0; i < base.values.size(); ++i) {
    if (mask & (1u << i)) result.values[i] = "";
  }
  return result;
}

data::Record DropTokenRuns(const data::Record& base, AttrMask mask,
                           Rng* rng) {
  data::Record result = base;
  for (size_t i = 0; i < base.values.size(); ++i) {
    if (!(mask & (1u << i))) continue;
    if (text::IsMissing(result.values[i])) continue;
    std::vector<std::string> tokens = text::RawTokens(result.values[i]);
    if (tokens.size() < 2) continue;
    int k = rng->UniformInt(1, static_cast<int>(tokens.size()) - 1);
    std::vector<std::string> kept;
    if (rng->Bernoulli(0.5)) {
      // Drop the first k tokens.
      kept.assign(tokens.begin() + k, tokens.end());
    } else {
      // Drop the last k tokens.
      kept.assign(tokens.begin(), tokens.end() - k);
    }
    result.values[i] = Join(kept, " ");
  }
  return result;
}

AttrMask RandomProperSubset(int num_attributes, Rng* rng) {
  CERTA_CHECK_GE(num_attributes, 2);
  AttrMask full = (1u << num_attributes) - 1u;
  for (;;) {
    AttrMask mask =
        static_cast<AttrMask>(rng->UniformUint64(full + 1ull));
    if (mask != 0u && mask != full) return mask;
  }
}

}  // namespace certa::explain
