#include "explain/sedc.h"

#include "explain/mojito.h"
#include "util/logging.h"

namespace certa::explain {

SedcExplainer::SedcExplainer(ExplainContext context, Base base)
    : context_(context), base_(base) {
  CERTA_CHECK(context_.valid());
  if (base == Base::kLimeC) {
    saliency_ = std::make_unique<MojitoExplainer>(context);
  } else {
    saliency_ = std::make_unique<ShapExplainer>(context);
  }
}

std::vector<CounterfactualExample> SedcExplainer::ExplainCounterfactual(
    const data::Record& u, const data::Record& v) {
  const bool original = context_.model->Predict(u, v);
  const PerturbOp op = original ? PerturbOp::kDrop : PerturbOp::kCopy;
  SaliencyExplanation saliency = saliency_->ExplainSaliency(u, v);

  CounterfactualExample example;
  example.left = u;
  example.right = v;
  for (const AttributeRef& ref : saliency.Ranked()) {
    data::Record next_u;
    data::Record next_v;
    ApplyPerturbOp(example.left, example.right, ref.side, 1u << ref.index,
                   op, &next_u, &next_v);
    if (next_u.values == example.left.values &&
        next_v.values == example.right.values) {
      continue;  // no-op perturbation (e.g., already-missing value)
    }
    example.left = std::move(next_u);
    example.right = std::move(next_v);
    example.changed_attributes.push_back(ref);
    if (context_.model->Predict(example.left, example.right) != original) {
      example.score = context_.model->Score(example.left, example.right);
      return {example};
    }
  }
  return {};
}

}  // namespace certa::explain
