#include "explain/shap.h"

#include <cmath>
#include <unordered_set>

#include "explain/lime.h"
#include "explain/perturbation.h"
#include "ml/dense.h"
#include "util/logging.h"
#include "util/random.h"

namespace certa::explain {
namespace {

/// Shapley kernel weight for a coalition of size s out of d players.
double ShapleyKernel(int d, int s) {
  if (s == 0 || s == d) return 1e6;  // anchor coalitions, near-infinite
  // (d - 1) / (C(d, s) * s * (d - s)) with C computed in log space.
  double log_comb = std::lgamma(d + 1) - std::lgamma(s + 1) -
                    std::lgamma(d - s + 1);
  return (d - 1.0) / (std::exp(log_comb) * s * (d - s));
}

}  // namespace

ShapExplainer::ShapExplainer(ExplainContext context, Options options)
    : context_(context), options_(options) {
  CERTA_CHECK(context_.valid());
  CERTA_CHECK_GT(options_.max_coalitions, 2);
}

SaliencyExplanation ShapExplainer::ExplainSaliency(const data::Record& u,
                                                   const data::Record& v) {
  const int left_attributes = static_cast<int>(u.values.size());
  const int right_attributes = static_cast<int>(v.values.size());
  const int d = left_attributes + right_attributes;
  SaliencyExplanation explanation(left_attributes, right_attributes);
  CERTA_CHECK_LE(d, 30);

  auto ref_of = [&](int feature) {
    return feature < left_attributes
               ? AttributeRef{data::Side::kLeft, feature}
               : AttributeRef{data::Side::kRight, feature - left_attributes};
  };

  // Perturbed input for a coalition: absent attributes dropped.
  auto build_pair = [&](uint32_t coalition, data::Record* out_u,
                        data::Record* out_v) {
    data::Record pu = u;
    data::Record pv = v;
    for (int f = 0; f < d; ++f) {
      if (coalition & (1u << f)) continue;  // present
      AttributeRef ref = ref_of(f);
      data::Record tmp_u;
      data::Record tmp_v;
      ApplyPerturbOp(pu, pv, ref.side, 1u << ref.index, PerturbOp::kDrop,
                     &tmp_u, &tmp_v);
      pu = std::move(tmp_u);
      pv = std::move(tmp_v);
    }
    *out_u = std::move(pu);
    *out_v = std::move(pv);
  };

  const uint32_t full = d >= 31 ? 0u : (1u << d) - 1u;
  std::vector<uint32_t> coalitions;
  const long long all = (1ll << d) - 2;
  if (all <= options_.max_coalitions) {
    for (uint32_t c = 1; c < full; ++c) coalitions.push_back(c);
  } else {
    // Sample distinct coalitions, seeding with all singletons and
    // all leave-one-out coalitions (the highest-weight levels).
    Rng rng(options_.seed);
    std::unordered_set<uint32_t> chosen;
    for (int f = 0; f < d; ++f) {
      chosen.insert(1u << f);
      chosen.insert(full & ~(1u << f));
    }
    while (static_cast<int>(chosen.size()) < options_.max_coalitions) {
      uint32_t c = static_cast<uint32_t>(rng.UniformUint64(full + 1ull));
      if (c == 0u || c == full) continue;
      chosen.insert(c);
    }
    coalitions.assign(chosen.begin(), chosen.end());
  }

  // One batched model call for every coalition value (plus the empty
  // and full anchors, slots 0 and 1).
  const size_t num_values = coalitions.size() + 2;
  std::vector<data::Record> coalition_u(num_values);
  std::vector<data::Record> coalition_v(num_values);
  build_pair(0u, &coalition_u[0], &coalition_v[0]);
  build_pair(full, &coalition_u[1], &coalition_v[1]);
  for (size_t c = 0; c < coalitions.size(); ++c) {
    build_pair(coalitions[c], &coalition_u[c + 2], &coalition_v[c + 2]);
  }
  std::vector<models::RecordPair> pairs(num_values);
  for (size_t i = 0; i < num_values; ++i) {
    pairs[i] = {&coalition_u[i], &coalition_v[i]};
  }
  std::vector<double> values = context_.model->ScoreBatch(pairs);

  const double base_value = values[0];
  const double full_value = values[1];

  // Weighted least squares with the efficiency constraint folded in:
  // v(S) - v(0) ≈ Σ_{i∈S} φ_i, with Shapley kernel weights. The last
  // feature's φ is eliminated via φ_d = (v(full)-v(0)) - Σ_{i<d} φ_i.
  const int free_params = d - 1;
  ml::Matrix design(static_cast<size_t>(coalitions.size()), free_params);
  ml::Vector targets(coalitions.size(), 0.0);
  ml::Vector weights(coalitions.size(), 0.0);
  const double delta = full_value - base_value;
  for (size_t row = 0; row < coalitions.size(); ++row) {
    uint32_t coalition = coalitions[row];
    bool has_last = (coalition >> (d - 1)) & 1u;
    for (int f = 0; f < free_params; ++f) {
      bool present = (coalition >> f) & 1u;
      design.at(row, f) =
          (present ? 1.0 : 0.0) - (has_last ? 1.0 : 0.0);
    }
    targets[row] = values[row + 2] - base_value -
                   (has_last ? delta : 0.0);
    weights[row] = ShapleyKernel(d, MaskSize(coalition));
  }

  ml::Vector beta;
  if (!ml::WeightedRidge(design, targets, weights, options_.ridge, &beta)) {
    return explanation;
  }
  double sum = 0.0;
  for (int f = 0; f < free_params; ++f) {
    explanation.set_score(ref_of(f), std::fabs(beta[f]));
    sum += beta[f];
  }
  explanation.set_score(ref_of(d - 1), std::fabs(delta - sum));
  return explanation;
}

}  // namespace certa::explain
