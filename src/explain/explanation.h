#ifndef CERTA_EXPLAIN_EXPLANATION_H_
#define CERTA_EXPLAIN_EXPLANATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/table.h"

namespace certa::explain {

/// Side-qualified attribute reference. An ER explanation scores
/// attributes of *both* input records, so every attribute is addressed
/// by (side, index within that side's schema).
struct AttributeRef {
  data::Side side = data::Side::kLeft;
  int index = 0;

  bool operator==(const AttributeRef& other) const {
    return side == other.side && index == other.index;
  }
};

/// "L_name" / "R_price" display names (the paper's Fig. 12 convention).
std::string QualifiedAttributeName(const data::Schema& left,
                                   const data::Schema& right,
                                   AttributeRef ref);

/// Saliency explanation: one importance score per attribute of each
/// side (the paper's Φ = Φ_{A_U} ∪ Φ_{A_V}).
class SaliencyExplanation {
 public:
  SaliencyExplanation() = default;
  SaliencyExplanation(int left_attributes, int right_attributes);

  int left_size() const { return static_cast<int>(left_scores_.size()); }
  int right_size() const { return static_cast<int>(right_scores_.size()); }

  double score(AttributeRef ref) const;
  void set_score(AttributeRef ref, double value);

  const std::vector<double>& left_scores() const { return left_scores_; }
  const std::vector<double>& right_scores() const { return right_scores_; }

  /// All attribute refs ordered by descending score (ties broken by
  /// side then index, so the order is deterministic). Used by the
  /// Faithfulness metric's top-fraction masking.
  std::vector<AttributeRef> Ranked() const;

  /// Scores flattened left-then-right (feature vector for the
  /// Confidence Indication probe).
  std::vector<double> Flattened() const;

 private:
  std::vector<double> left_scores_;
  std::vector<double> right_scores_;
};

/// One counterfactual example: a modified copy of the input pair that
/// (ideally) flips the model's prediction, together with which
/// attributes were changed.
struct CounterfactualExample {
  data::Record left;
  data::Record right;
  /// The modified attributes (CERTA changes one side per example;
  /// baseline methods may touch both).
  std::vector<AttributeRef> changed_attributes;
  /// Model score on the modified pair, if the producer computed it;
  /// negative when unknown.
  double score = -1.0;
  /// CERTA's probability of sufficiency χ of the changed attribute set;
  /// 0 for methods without that notion.
  double sufficiency = 0.0;
};

}  // namespace certa::explain

#endif  // CERTA_EXPLAIN_EXPLANATION_H_
