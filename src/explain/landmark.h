#ifndef CERTA_EXPLAIN_LANDMARK_H_
#define CERTA_EXPLAIN_LANDMARK_H_

#include "explain/explainer.h"
#include "explain/lime.h"

namespace certa::explain {

/// LandMark (Baraldi et al., EDBT'21): a further LIME adaptation to ER
/// that generates *two* explanations per pair — one per record, each
/// obtained by perturbing that record's attributes while the other
/// record is kept unchanged as the "landmark". The two half
/// explanations are concatenated into the full attribute scoring.
class LandmarkExplainer : public SaliencyExplainer {
 public:
  LandmarkExplainer(ExplainContext context, LimeOptions options);
  explicit LandmarkExplainer(ExplainContext context)
      : LandmarkExplainer(context, LimeOptions()) {}

  std::string name() const override { return "LandMark"; }

  SaliencyExplanation ExplainSaliency(const data::Record& u,
                                      const data::Record& v) override;

 private:
  ExplainContext context_;
  LimeOptions options_;
};

}  // namespace certa::explain

#endif  // CERTA_EXPLAIN_LANDMARK_H_
