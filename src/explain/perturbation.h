#ifndef CERTA_EXPLAIN_PERTURBATION_H_
#define CERTA_EXPLAIN_PERTURBATION_H_

#include <cstdint>
#include <vector>

#include "data/table.h"
#include "util/random.h"

namespace certa::explain {

/// Bitmask over one side's attributes (attribute counts are small,
/// <= 8 in every benchmark, so 32 bits are ample).
using AttrMask = uint32_t;

/// Number of set bits.
int MaskSize(AttrMask mask);

/// Attribute indices contained in the mask, ascending.
std::vector<int> MaskToIndices(AttrMask mask);

/// The paper's perturbing record function ψ(u, w, A): a copy of `base`
/// whose attributes in `mask` are replaced by `source`'s values. Both
/// records must have the same arity.
data::Record CopyAttributes(const data::Record& base,
                            const data::Record& source, AttrMask mask);

/// Masks (blanks out) the attributes in `mask` — the DROP operator used
/// by Mojito/LIME perturbations and the Faithfulness metric's
/// attribute masking. Blanked values become "" (treated as missing).
data::Record DropAttributes(const data::Record& base, AttrMask mask);

/// Drops a random contiguous prefix or suffix of tokens (between 1 and
/// tokens-1) from each attribute in `mask` — the data-augmentation
/// operator of Sect. 3.3. Attributes with fewer than 2 tokens are left
/// unchanged.
data::Record DropTokenRuns(const data::Record& base, AttrMask mask, Rng* rng);

/// Random non-empty proper-subset mask over `num_attributes` (never the
/// empty or the full set; requires num_attributes >= 2).
AttrMask RandomProperSubset(int num_attributes, Rng* rng);

}  // namespace certa::explain

#endif  // CERTA_EXPLAIN_PERTURBATION_H_
