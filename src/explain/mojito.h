#ifndef CERTA_EXPLAIN_MOJITO_H_
#define CERTA_EXPLAIN_MOJITO_H_

#include "explain/explainer.h"
#include "explain/lime.h"

namespace certa::explain {

/// Mojito (Di Cicco et al., aiDM'19): LIME adapted to ER. Record pairs
/// are flattened into one interpretable representation, and two
/// ER-specific perturbation operators are used in line with the
/// method's semantics (Sect. 5.2 of the CERTA paper):
///  - mojito-drop explains Match predictions (removing evidence should
///    lower the score);
///  - mojito-copy explains Non-Match predictions (copying values across
///    the pair should raise the score).
class MojitoExplainer : public SaliencyExplainer {
 public:
  MojitoExplainer(ExplainContext context, LimeOptions options);
  explicit MojitoExplainer(ExplainContext context)
      : MojitoExplainer(context, LimeOptions()) {}

  std::string name() const override { return "Mojito"; }

  SaliencyExplanation ExplainSaliency(const data::Record& u,
                                      const data::Record& v) override;

 private:
  ExplainContext context_;
  LimeOptions options_;
};

}  // namespace certa::explain

#endif  // CERTA_EXPLAIN_MOJITO_H_
