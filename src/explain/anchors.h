#ifndef CERTA_EXPLAIN_ANCHORS_H_
#define CERTA_EXPLAIN_ANCHORS_H_

#include <cstdint>
#include <vector>

#include "explain/explainer.h"
#include "util/random.h"

namespace certa::explain {

/// An anchor: a set of attributes that, when held fixed, keeps the
/// model's prediction stable under perturbation of everything else
/// (Ribeiro et al., AAAI'18 — the rule-based method ExplainER plugs in
/// alongside LIME, per the paper's related work).
struct AnchorExplanation {
  /// The anchored attributes, in the order the greedy search added
  /// them (most stabilizing first).
  std::vector<AttributeRef> anchor;
  /// Estimated P(prediction unchanged | anchor held, rest perturbed).
  double precision = 0.0;
  /// Fraction of sampled perturbations the anchor applies to (here
  /// always 1.0 minus degenerate samples; reported for completeness).
  double coverage = 0.0;
};

/// Greedy beam-1 anchor search over attribute-presence predicates:
/// non-anchored attributes are perturbed (dropped or replaced with
/// random same-attribute values from the sources), and attributes are
/// added until the precision target is met. Also usable through the
/// SaliencyExplainer interface, where anchored attributes receive
/// descending scores by insertion order.
class AnchorsExplainer : public SaliencyExplainer {
 public:
  struct Options {
    /// Perturbation samples per precision estimate.
    int num_samples = 64;
    /// Stop growing the anchor at this precision.
    double precision_target = 0.95;
    /// Probability a non-anchored attribute is replaced by a random
    /// pool value instead of dropped.
    double replace_probability = 0.5;
    uint64_t seed = 47;
  };

  AnchorsExplainer(ExplainContext context, Options options);
  explicit AnchorsExplainer(ExplainContext context)
      : AnchorsExplainer(context, Options()) {}

  std::string name() const override { return "Anchors"; }

  /// Runs the anchor search for the prediction M(<u, v>).
  AnchorExplanation ExplainAnchor(const data::Record& u,
                                  const data::Record& v);

  /// Saliency adapter: anchor members get scores (1, 1/2, 1/3, ...) by
  /// insertion order; everything else 0.
  SaliencyExplanation ExplainSaliency(const data::Record& u,
                                      const data::Record& v) override;

 private:
  /// Precision of a candidate anchor set (bitmask over left-then-right
  /// attribute positions).
  double EstimatePrecision(const data::Record& u, const data::Record& v,
                           bool original_prediction, uint64_t anchored,
                           Rng* rng) const;

  ExplainContext context_;
  Options options_;
};

}  // namespace certa::explain

#endif  // CERTA_EXPLAIN_ANCHORS_H_
