#include "explain/landmark.h"

#include "util/logging.h"

namespace certa::explain {

LandmarkExplainer::LandmarkExplainer(ExplainContext context,
                                     LimeOptions options)
    : context_(context), options_(options) {
  CERTA_CHECK(context_.valid());
}

SaliencyExplanation LandmarkExplainer::ExplainSaliency(
    const data::Record& u, const data::Record& v) {
  // Right record as landmark: perturb the left attributes only.
  LimeOptions left_options = options_;
  SaliencyExplanation left_half =
      FitLimeSurrogate(context_, u, v, PerturbOp::kDrop,
                       /*perturb_left=*/true, /*perturb_right=*/false,
                       left_options);
  // Left record as landmark: perturb the right attributes only.
  LimeOptions right_options = options_;
  right_options.seed = options_.seed + 1;
  SaliencyExplanation right_half =
      FitLimeSurrogate(context_, u, v, PerturbOp::kDrop,
                       /*perturb_left=*/false, /*perturb_right=*/true,
                       right_options);

  SaliencyExplanation combined(left_half.left_size(),
                               right_half.right_size());
  for (int i = 0; i < left_half.left_size(); ++i) {
    AttributeRef ref{data::Side::kLeft, i};
    combined.set_score(ref, left_half.score(ref));
  }
  for (int i = 0; i < right_half.right_size(); ++i) {
    AttributeRef ref{data::Side::kRight, i};
    combined.set_score(ref, right_half.score(ref));
  }
  return combined;
}

}  // namespace certa::explain
