#ifndef CERTA_EXPLAIN_EXPLAINER_H_
#define CERTA_EXPLAIN_EXPLAINER_H_

#include <string>
#include <vector>

#include "data/table.h"
#include "explain/explanation.h"
#include "models/matcher.h"

namespace certa::explain {

/// Everything an explanation method may consult: the black-box model
/// and both source tables (used as pools of realistic replacement
/// values / support records). Explainers never see the ground truth.
struct ExplainContext {
  const models::Matcher* model = nullptr;
  const data::Table* left = nullptr;
  const data::Table* right = nullptr;

  bool valid() const {
    return model != nullptr && left != nullptr && right != nullptr;
  }
};

/// Post-hoc local saliency explainer (Sect. 3.1): scores every
/// attribute of a single prediction input.
class SaliencyExplainer {
 public:
  virtual ~SaliencyExplainer() = default;

  /// Method name as it appears in the paper's tables.
  virtual std::string name() const = 0;

  /// Explains the prediction M(<u, v>). `u`/`v` need not belong to the
  /// context tables (perturbed inputs can be explained too).
  virtual SaliencyExplanation ExplainSaliency(const data::Record& u,
                                              const data::Record& v) = 0;
};

/// Post-hoc local counterfactual explainer (Sect. 3.2): produces
/// modified copies of the input pair intended to flip the prediction.
class CounterfactualExplainer {
 public:
  virtual ~CounterfactualExplainer() = default;

  virtual std::string name() const = 0;

  /// Returns candidate counterfactual examples (possibly empty when the
  /// method fails to find any flip).
  virtual std::vector<CounterfactualExample> ExplainCounterfactual(
      const data::Record& u, const data::Record& v) = 0;
};

}  // namespace certa::explain

#endif  // CERTA_EXPLAIN_EXPLAINER_H_
