#ifndef CERTA_EXPLAIN_LIME_H_
#define CERTA_EXPLAIN_LIME_H_

#include <cstdint>

#include "explain/explainer.h"

namespace certa::explain {

/// Perturbation operator applied to an attribute whose interpretable
/// feature is switched off in a LIME sample:
///  - kDrop blanks the value (LIME's classic text DROP);
///  - kCopy copies the aligned attribute value from the *other* record
///    of the pair (Mojito's ER-specific COPY, which makes the records
///    more similar instead of less).
enum class PerturbOp {
  kDrop,
  kCopy,
};

/// Knobs for the LIME surrogate fit.
struct LimeOptions {
  /// Number of perturbed samples drawn around the input.
  int num_samples = 256;
  /// Ridge regularization of the local linear surrogate.
  double ridge = 1e-2;
  /// Proximity kernel width (in units of normalized Hamming distance).
  double kernel_width = 0.75;
  uint64_t seed = 23;
};

/// Fits a local weighted-ridge surrogate of the model score around
/// <u, v> over binary attribute-presence features and returns the
/// absolute surrogate coefficients as saliency scores.
///
/// `perturb_left` / `perturb_right` select which sides' attributes are
/// perturbable (LandMark fixes one side as the landmark); attributes of
/// non-perturbed sides get score 0. kCopy requires aligned schemas and
/// falls back to kDrop per attribute when arities differ.
SaliencyExplanation FitLimeSurrogate(const ExplainContext& context,
                                     const data::Record& u,
                                     const data::Record& v, PerturbOp op,
                                     bool perturb_left, bool perturb_right,
                                     const LimeOptions& options);

/// Applies `op` to the attributes of `mask` on the given side of the
/// pair, returning the perturbed pair. Exposed for the SEDC-style
/// counterfactual searches (LIME-C / SHAP-C) and for tests.
void ApplyPerturbOp(const data::Record& u, const data::Record& v,
                    data::Side side, uint32_t mask, PerturbOp op,
                    data::Record* out_u, data::Record* out_v);

}  // namespace certa::explain

#endif  // CERTA_EXPLAIN_LIME_H_
