#include "explain/anchors.h"

#include "text/tokenizer.h"
#include "util/logging.h"

namespace certa::explain {
namespace {

uint64_t ContentSeed(const data::Record& u, const data::Record& v,
                     uint64_t seed) {
  uint64_t hash = seed ^ 0xA17C4025ULL;
  auto mix = [&hash](const std::string& value) {
    for (char c : value) {
      hash ^= static_cast<unsigned char>(c);
      hash *= 0x100000001b3ULL;
    }
  };
  for (const std::string& value : u.values) mix(value);
  for (const std::string& value : v.values) mix(value);
  return hash;
}

}  // namespace

AnchorsExplainer::AnchorsExplainer(ExplainContext context, Options options)
    : context_(context), options_(options) {
  CERTA_CHECK(context_.valid());
  CERTA_CHECK_GT(options_.num_samples, 0);
}

double AnchorsExplainer::EstimatePrecision(const data::Record& u,
                                           const data::Record& v,
                                           bool original_prediction,
                                           uint64_t anchored,
                                           Rng* rng) const {
  const int left_attributes = static_cast<int>(u.values.size());
  const int right_attributes = static_cast<int>(v.values.size());
  const int total = left_attributes + right_attributes;
  int stable = 0;
  for (int s = 0; s < options_.num_samples; ++s) {
    data::Record pu = u;
    data::Record pv = v;
    for (int f = 0; f < total; ++f) {
      if ((anchored >> f) & 1ull) continue;
      bool is_left = f < left_attributes;
      int index = is_left ? f : f - left_attributes;
      const data::Table& pool =
          is_left ? *context_.left : *context_.right;
      std::string& slot =
          is_left ? pu.values[index] : pv.values[index];
      if (pool.size() > 0 && rng->Bernoulli(options_.replace_probability)) {
        slot = pool.record(static_cast<int>(rng->Index(pool.size())))
                   .value(index);
      } else {
        slot = "";
      }
    }
    if (context_.model->Predict(pu, pv) == original_prediction) ++stable;
  }
  return static_cast<double>(stable) / options_.num_samples;
}

AnchorExplanation AnchorsExplainer::ExplainAnchor(const data::Record& u,
                                                  const data::Record& v) {
  const int left_attributes = static_cast<int>(u.values.size());
  const int right_attributes = static_cast<int>(v.values.size());
  const int total = left_attributes + right_attributes;
  CERTA_CHECK_LE(total, 62);
  const bool original_prediction = context_.model->Predict(u, v);
  Rng rng(ContentSeed(u, v, options_.seed));

  AnchorExplanation explanation;
  explanation.coverage = 1.0;
  uint64_t anchored = 0;
  explanation.precision =
      EstimatePrecision(u, v, original_prediction, anchored, &rng);

  while (explanation.precision < options_.precision_target &&
         static_cast<int>(explanation.anchor.size()) < total) {
    int best_feature = -1;
    double best_precision = -1.0;
    for (int f = 0; f < total; ++f) {
      if ((anchored >> f) & 1ull) continue;
      double precision = EstimatePrecision(
          u, v, original_prediction, anchored | (1ull << f), &rng);
      if (precision > best_precision) {
        best_precision = precision;
        best_feature = f;
      }
    }
    if (best_feature < 0) break;
    anchored |= 1ull << best_feature;
    explanation.precision = best_precision;
    bool is_left = best_feature < left_attributes;
    explanation.anchor.push_back(
        {is_left ? data::Side::kLeft : data::Side::kRight,
         is_left ? best_feature : best_feature - left_attributes});
  }
  return explanation;
}

SaliencyExplanation AnchorsExplainer::ExplainSaliency(
    const data::Record& u, const data::Record& v) {
  AnchorExplanation anchor = ExplainAnchor(u, v);
  SaliencyExplanation explanation(static_cast<int>(u.values.size()),
                                  static_cast<int>(v.values.size()));
  double rank = 1.0;
  for (const AttributeRef& ref : anchor.anchor) {
    explanation.set_score(ref, 1.0 / rank);
    rank += 1.0;
  }
  return explanation;
}

}  // namespace certa::explain
