#ifndef CERTA_EXPLAIN_SEDC_H_
#define CERTA_EXPLAIN_SEDC_H_

#include <memory>

#include "explain/explainer.h"
#include "explain/lime.h"
#include "explain/shap.h"

namespace certa::explain {

/// LIME-C / SHAP-C (Ramon et al., ADAC'20): counterfactual search that
/// re-uses an additive saliency explanation, SEDC-style. Attributes are
/// perturbed cumulatively in descending saliency order — treating the
/// record pair as text, with DROP for Match predictions and COPY for
/// Non-Match, per the ER adaptation of Sect. 5.2 — until the prediction
/// flips; the flipped pair is the (single) counterfactual. The search
/// can fail, in which case no example is returned (which is why these
/// baselines average below one example in the paper's Fig. 10).
class SedcExplainer : public CounterfactualExplainer {
 public:
  /// Which saliency method seeds the search. Per the paper, LIME-C uses
  /// Mojito instead of plain LIME "to have a better fit with the ER
  /// setting".
  enum class Base {
    kLimeC,
    kShapC,
  };

  SedcExplainer(ExplainContext context, Base base);

  std::string name() const override {
    return base_ == Base::kLimeC ? "LIME-C" : "SHAP-C";
  }

  std::vector<CounterfactualExample> ExplainCounterfactual(
      const data::Record& u, const data::Record& v) override;

 private:
  ExplainContext context_;
  Base base_;
  std::unique_ptr<SaliencyExplainer> saliency_;
};

}  // namespace certa::explain

#endif  // CERTA_EXPLAIN_SEDC_H_
