#ifndef CERTA_EXPLAIN_REPORT_H_
#define CERTA_EXPLAIN_REPORT_H_

#include <string>
#include <vector>

#include "data/table.h"
#include "explain/explanation.h"

namespace certa::explain {

/// Renders explanations as human-readable text — the form a data
/// steward debugging an ER pipeline actually reads. All functions are
/// pure formatting; nothing touches the model.

/// One-per-line "L_name  0.742  #######" bars, ranked by score.
std::string RenderSaliency(const SaliencyExplanation& explanation,
                           const data::Schema& left,
                           const data::Schema& right);

/// The original pair and a counterfactual side by side, with changed
/// attributes marked and the flip summarized.
std::string RenderCounterfactual(const CounterfactualExample& example,
                                 const data::Record& original_u,
                                 const data::Record& original_v,
                                 const data::Schema& left,
                                 const data::Schema& right,
                                 double original_score);

/// Full report for one prediction: header with the scores, the
/// saliency block, and up to `max_examples` counterfactual blocks.
std::string RenderReport(const data::Record& u, const data::Record& v,
                         const data::Schema& left,
                         const data::Schema& right, double score,
                         const SaliencyExplanation& saliency,
                         const std::vector<CounterfactualExample>& examples,
                         int max_examples = 2);

/// One-line resilience footer for a partial explanation, e.g.
/// "status: degraded (412 model calls, 7 retries, 3 cells skipped)".
/// Empty string when status_name is "complete" — a clean run adds no
/// noise to the report. Takes plain numbers (summed over phases) so the
/// formatting layer stays independent of core's result types.
std::string RenderStatusLine(const std::string& status_name, long long calls,
                             long long retries, long long failures,
                             long long cells_skipped);

}  // namespace certa::explain

#endif  // CERTA_EXPLAIN_REPORT_H_
