#ifndef CERTA_EXPLAIN_REPORT_H_
#define CERTA_EXPLAIN_REPORT_H_

#include <string>
#include <vector>

#include "data/table.h"
#include "explain/explanation.h"

namespace certa::explain {

/// Renders explanations as human-readable text — the form a data
/// steward debugging an ER pipeline actually reads. All functions are
/// pure formatting; nothing touches the model.

/// One-per-line "L_name  0.742  #######" bars, ranked by score.
std::string RenderSaliency(const SaliencyExplanation& explanation,
                           const data::Schema& left,
                           const data::Schema& right);

/// The original pair and a counterfactual side by side, with changed
/// attributes marked and the flip summarized.
std::string RenderCounterfactual(const CounterfactualExample& example,
                                 const data::Record& original_u,
                                 const data::Record& original_v,
                                 const data::Schema& left,
                                 const data::Schema& right,
                                 double original_score);

/// Full report for one prediction: header with the scores, the
/// saliency block, and up to `max_examples` counterfactual blocks.
std::string RenderReport(const data::Record& u, const data::Record& v,
                         const data::Schema& left,
                         const data::Schema& right, double score,
                         const SaliencyExplanation& saliency,
                         const std::vector<CounterfactualExample>& examples,
                         int max_examples = 2);

}  // namespace certa::explain

#endif  // CERTA_EXPLAIN_REPORT_H_
