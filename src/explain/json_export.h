#ifndef CERTA_EXPLAIN_JSON_EXPORT_H_
#define CERTA_EXPLAIN_JSON_EXPORT_H_

#include <string>

#include "data/table.h"
#include "explain/explanation.h"
#include "util/json_writer.h"

namespace certa::explain {

/// JSON export of explanations, for downstream dashboards and notebook
/// workflows. Attribute names are embedded so the documents are
/// self-contained. (The full CertaResult export lives in
/// core/certa_explainer.h as CertaResultToJson.)

/// {"attributes":[{"name":"L_title","score":0.42}, ...]}, ranked by
/// descending score.
std::string SaliencyToJson(const SaliencyExplanation& explanation,
                           const data::Schema& left,
                           const data::Schema& right);

/// One counterfactual example with its change list and scores.
std::string CounterfactualToJson(const CounterfactualExample& example,
                                 const data::Schema& left,
                                 const data::Schema& right);

/// Durably writes a JSON document to `path` via temp-file + fsync +
/// atomic rename (util::AtomicWriteFile): readers never observe a
/// half-written document, and a crash mid-export leaves any previous
/// file intact. All result/bench JSON exports route through here.
bool SaveJsonFile(const std::string& path, const std::string& json);

/// Streaming building blocks used by both exports and by the core
/// CertaResult export.
void WriteSaliency(JsonWriter* json, const SaliencyExplanation& explanation,
                   const data::Schema& left, const data::Schema& right);
void WriteCounterfactual(JsonWriter* json,
                         const CounterfactualExample& example,
                         const data::Schema& left,
                         const data::Schema& right);

}  // namespace certa::explain

#endif  // CERTA_EXPLAIN_JSON_EXPORT_H_
