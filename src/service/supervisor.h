#ifndef CERTA_SERVICE_SUPERVISOR_H_
#define CERTA_SERVICE_SUPERVISOR_H_

#include <sys/types.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

namespace certa::service {

/// Multi-process master/worker serving (the dovecot master-service
/// model). The master is a supervisor, not a data path: it resolves and
/// holds the fleet's TCP port, forks N worker processes that each run
/// their own NetServer+JobRunner over a private job-dir partition
/// (`<root>/w<slot>`) plus one SHARED score-store directory (each
/// worker appends to its own stream inside it and reuses siblings'
/// paid scores — see WorkerLaunch::store_dir), and then only watches:
///
///   - waitpid(2) supervision distinguishing clean exit, exit-3
///     (parked work on disk), and crashes;
///   - crashed workers restart with exponential backoff; a slot that
///     keeps flapping is abandoned and its partition's parked jobs are
///     ADOPTed by a live worker's resume sweep — a SIGKILL'd worker
///     costs zero completed work;
///   - SIGTERM/SIGINT drain the whole fleet (every admitted job
///     complete-or-parked; the master exits 3 iff any worker parked);
///   - SIGHUP rolls the fleet one worker at a time (drain via
///     park/resume, respawn, wait READY) for zero-downtime upgrades;
///   - per-worker stats fan in over a control socketpair and the
///     aggregate is broadcast back so any worker can answer the wire
///     protocol's `stats` verb fleet-wide.
///
/// Socket sharing: SO_REUSEPORT by default (each worker binds its own
/// listener; the kernel spreads accepts), with a single-listener
/// fallback (master binds+listens once, workers inherit the fd) when
/// the option is unavailable or disabled.

/// Everything one forked worker needs to serve its share of the fleet.
struct WorkerLaunch {
  int slot = 0;
  pid_t master_pid = 0;
  /// This worker's private job-dir partition: <job_root>/w<slot>.
  std::string partition_root;
  /// The fleet's SHARED score-store directory ("" = no store). Unlike
  /// job dirs, the store is not partitioned: every worker opens the
  /// same directory in shared-stream mode with its slot as the stream
  /// slot, appending to its own `segment-w<slot>-*.seg` stream while
  /// absorbing siblings' paid scores read-only (see
  /// persist::ScoreStore::Options::stream_slot). A worker crash
  /// strands nothing and adoption never moves store data — the
  /// surviving workers already read the dead worker's stream.
  std::string store_dir;
  /// The fleet's SHARED stream directory ("" = streaming off). Like
  /// the score store it is not partitioned: every worker opens one
  /// service::StreamCoordinator on it with its slot as the stream
  /// slot, appending record ops to its own `ops-w<slot>.wal` while
  /// absorbing siblings' acked ops read-only — so an upsert acked by
  /// any worker is seen by every worker, and a crashed worker's acked
  /// ops survive in its stream for the others to keep absorbing.
  std::string stream_dir;
  /// Worker end of the master<->worker control socketpair.
  int control_fd = -1;
  /// The fleet's resolved TCP port.
  int listen_port = 0;
  /// >= 0 in single-listener fallback mode: the master's listening
  /// socket, inherited across fork(); -1 in SO_REUSEPORT mode (the
  /// worker binds its own listener with reuse_port set).
  int inherited_listen_fd = -1;
};

struct SupervisorOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; the resolved port is readable via port() after
  /// Start and is printed in the LISTENING line.
  int port = 0;
  int workers = 2;
  std::string job_root = "jobs";
  /// "" = no score store.
  std::string store_dir;
  /// "" = streaming off (see WorkerLaunch::stream_dir).
  std::string stream_dir;
  /// Exponential restart backoff: initial * 2^(streak-1), capped.
  long long restart_backoff_initial_ms = 200;
  long long restart_backoff_max_ms = 4000;
  /// Consecutive fast crashes before a slot is abandoned and its
  /// partition adopted by a live worker (never applied to the last
  /// remaining slot — some listener must survive).
  int flap_limit = 5;
  /// A worker alive longer than this resets its slot's crash streak.
  long long stable_after_ms = 2000;
  /// Cadence of the stats fan-in/broadcast and of supervision polls.
  long long stats_interval_ms = 200;
  /// SIGKILL a worker that has not exited this long after a drain
  /// SIGTERM (its durable state stays resumable).
  long long shutdown_grace_ms = 30000;
  /// Force the inherited-fd single-listener mode even when
  /// SO_REUSEPORT works (tests pin the fallback via
  /// CERTA_FLEET_NO_REUSEPORT=1, which the CLI maps here).
  bool disable_reuse_port = false;
  /// Extra fds the forked child must close (the master's job-root
  /// DirLock fd, for one: flock is shared across fork, so a child that
  /// kept it would hold the lock after the master died).
  std::vector<int> close_in_child;
};

class Supervisor {
 public:
  /// Runs in the forked child; its return value is the worker's exit
  /// code (kInterruptedExitCode = parked work left on disk).
  using WorkerMain = std::function<int(const WorkerLaunch&)>;

  explicit Supervisor(SupervisorOptions options);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Resolves + holds the listen port, installs SIGCHLD/SIGHUP
  /// handling, and forks the initial workers. False on setup failure.
  bool Start(WorkerMain worker_main, std::string* error);

  /// The supervision loop, on the calling thread. Prints one
  /// "WORKER <slot> pid=<pid>" line per (re)spawn and one
  /// "LISTENING <host>:<port>" line once every initial worker is READY
  /// (both to stdout, machine-parseable). Returns the master exit
  /// code: 0 = every job fleet-wide completed, 3 = some worker exited
  /// with parked (resumable) work, 1 = abnormal (a worker died
  /// unreaped during final drain, or the whole fleet flapped out).
  int Run();

  int port() const { return port_; }
  bool reuse_port_mode() const { return reuse_port_mode_; }

 private:
  struct Slot {
    pid_t pid = -1;
    int control_fd = -1;
    std::string line_buffer;
    /// Last STATS payload received (JSON object text).
    std::string stats_json;
    bool ready = false;
    bool abandoned = false;
    /// Exit bookkeeping.
    bool alive = false;
    int final_exit_code = -1;
    bool crashed = false;
    /// Restart policy state.
    int crash_streak = 0;
    int64_t spawned_ms = 0;
    int64_t respawn_at_ms = 0;  // 0 = no respawn pending
    /// Drain bookkeeping.
    bool term_sent = false;
    int64_t term_sent_ms = 0;
  };

  bool SetupListenSocket(std::string* error);
  bool SpawnWorker(int slot, std::string* error);
  /// One supervision beat: poll control fds + the SIGCHLD pipe, read
  /// worker lines, reap exits, fire due respawns, fan stats in/out.
  void PollOnce(int timeout_ms);
  void ReapExits();
  void HandleExit(int slot, int status);
  void ProcessControlLine(int slot, const std::string& line);
  void FireDueRespawns();
  void AdvanceRollingRestart();
  void AssignOrphans();
  void BroadcastFleetStats();
  std::string AggregateFleetJson() const;
  /// Writes one framed control line; false if the worker is gone or
  /// the write failed/was short (callers needing delivery retry).
  bool SendToWorker(int slot, const std::string& line);
  int LiveWorkerForAdoption() const;
  int64_t NowMs() const;
  std::string PartitionRoot(int slot) const;

  SupervisorOptions options_;
  WorkerMain worker_main_;
  std::vector<Slot> slots_;
  int port_ = 0;
  bool reuse_port_mode_ = true;
  /// SO_REUSEPORT mode: a bound-but-never-listening socket that pins
  /// the (possibly ephemeral) port for the fleet's whole life.
  /// Fallback mode: the one listening socket every worker inherits.
  int listen_fd_ = -1;
  bool started_ = false;
  bool announced_ = false;
  bool draining_ = false;
  /// Rolling restart state machine (-1 = idle): the slot currently
  /// being drained/respawned.
  int rolling_slot_ = -1;
  bool rolling_respawning_ = false;
  /// Partitions of abandoned slots waiting for a live worker to adopt.
  std::vector<std::string> orphan_partitions_;
  long long restarts_total_ = 0;
  long long partitions_adopted_ = 0;
  long long rolling_restarts_ = 0;
  int64_t last_broadcast_ms_ = 0;
};

/// Splits the newline-framed control-channel buffer into complete
/// lines: invokes `on_line` once per line (newline stripped, in order)
/// and erases the consumed prefix, leaving any trailing partial line in
/// `buffer` for the next read to complete. Both ends of the control
/// protocol frame with this; it is what makes a worker SIGKILLed
/// mid-`STATS` write harmless — the torn fragment stays in the buffer
/// and is dropped wholesale (never parsed) when the fd reaches EOF.
void SplitControlLines(std::string* buffer,
                       const std::function<void(const std::string&)>& on_line);

/// Worker-process side of the control channel. Owns one background
/// thread that polls the control fd for master lines — "ADOPT <dir>"
/// (resume-sweep an orphaned partition) and "FLEET <json>" (the
/// aggregate spliced into stats responses) — pushes "STATS <json>"
/// snapshots back on a fixed cadence, and requests worker shutdown when
/// the fd reaches EOF (a dead master must not leave orphan listeners).
class WorkerControl {
 public:
  struct Hooks {
    std::function<void(const std::string& partition_dir)> on_adopt;
    std::function<void(const std::string& fleet_json)> on_fleet;
    /// Returns one serialized JSON object (the worker's runner/server
    /// counters); called from the control thread.
    std::function<std::string()> stats_provider;
  };

  WorkerControl(int control_fd, long long stats_interval_ms);
  ~WorkerControl();

  WorkerControl(const WorkerControl&) = delete;
  WorkerControl& operator=(const WorkerControl&) = delete;

  /// Announces the worker's listener to the master. Call before
  /// Start() — afterwards the control thread owns all writes.
  void SendReady(int listen_port);

  void Start(Hooks hooks);
  /// Sends one final STATS snapshot and joins the thread. Idempotent.
  void Stop();

 private:
  void ThreadMain();
  void SendLine(const std::string& line);

  int fd_;
  long long stats_interval_ms_;
  Hooks hooks_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  bool running_ = false;
};

}  // namespace certa::service

#endif  // CERTA_SERVICE_SUPERVISOR_H_
