#include "service/job_runner.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <unordered_set>
#include <utility>

#include "data/benchmarks.h"
#include "data/csv.h"
#include "data/dataset.h"
#include "models/trainer.h"
#include "persist/dir_lock.h"
#include "persist/journal.h"
#include "util/atomic_file.h"
#include "util/string_utils.h"

namespace certa::service {
namespace {

bool ModelKindFromName(const std::string& name, models::ModelKind* kind) {
  std::string lowered = ToLowerAscii(name);
  if (lowered == "deeper") *kind = models::ModelKind::kDeepEr;
  else if (lowered == "deepmatcher") *kind = models::ModelKind::kDeepMatcher;
  else if (lowered == "ditto") *kind = models::ModelKind::kDitto;
  else if (lowered == "svm") *kind = models::ModelKind::kSvm;
  else return false;
  return true;
}

persist::JobCheckpoint CheckpointFromSpec(const JobSpec& spec) {
  persist::JobCheckpoint checkpoint;
  checkpoint.request = spec;
  return checkpoint;
}

/// Content fingerprint of the *training inputs* a model was trained on
/// — the model half of a score-store key. Training is seeded and
/// deterministic, and every Fit implementation reads exactly the train
/// pairs plus the records those pairs reference (models/trainer.cc),
/// so (model kind, training inputs) pins the matcher's parameters
/// exactly. Hashing record contents (not the dataset code or path)
/// means a store entry can never be served to a model trained on
/// different data that happens to share a name — while records outside
/// the train set (streaming upserts of test-side rows) leave the
/// fingerprint unchanged, so a mutated dataset keeps sharing every
/// paid score its unchanged model can still vouch for. (Stale pair
/// scores are impossible regardless: models::PairKey hashes the pair's
/// record contents.)
uint64_t DatasetFingerprint(const data::Dataset& dataset) {
  uint64_t hash = 1469598103934665603ULL;
  auto mix = [&hash](const std::string& value) {
    for (char c : value) {
      hash ^= static_cast<unsigned char>(c);
      hash *= 1099511628211ULL;
    }
    hash ^= 0x1F;
    hash *= 1099511628211ULL;
  };
  auto mix_int = [&hash](long long value) {
    for (int i = 0; i < 8; ++i) {
      hash ^= static_cast<unsigned char>(value >> (8 * i));
      hash *= 1099511628211ULL;
    }
  };
  for (const data::Table* table : {&dataset.left, &dataset.right}) {
    for (const std::string& name : table->schema().names()) mix(name);
  }
  mix_int(static_cast<long long>(dataset.train.size()));
  for (const data::LabeledPair& pair : dataset.train) {
    mix_int(pair.left_index);
    mix_int(pair.right_index);
    mix_int(pair.label);
    for (const std::string& value :
         dataset.left.record(pair.left_index).values) {
      mix(value);
    }
    for (const std::string& value :
         dataset.right.record(pair.right_index).values) {
      mix(value);
    }
  }
  return hash;
}

}  // namespace

JobSpec SpecFromCheckpoint(const persist::JobCheckpoint& checkpoint) {
  return checkpoint.request;
}

core::CertaExplainer::Options ExplainerOptionsFromRequest(
    const api::ExplainRequest& request, bool include_deadline) {
  core::CertaExplainer::Options options;
  options.num_triangles = std::max(2, request.triangles);
  options.num_threads = std::max(1, request.threads);
  options.use_cache = request.use_cache;
  options.seed = request.seed;
  options.resilience.enabled =
      request.budget > 0 || request.fault_rate > 0.0 ||
      (include_deadline && request.deadline_ms > 0);
  options.resilience.max_model_calls = request.budget;
  options.resilience.deadline_micros =
      include_deadline ? request.deadline_ms * 1000 : 0;
  return options;
}

std::string JobStateName(JobState state) {
  switch (state) {
    case JobState::kComplete:
      return "complete";
    case JobState::kParked:
      return "parked";
    case JobState::kFailed:
      return "failed";
  }
  return "unknown";
}

std::string JobQueryStateName(JobQueryState state) {
  switch (state) {
    case JobQueryState::kUnknown:
      return "unknown";
    case JobQueryState::kQueued:
      return "queued";
    case JobQueryState::kRunning:
      return "running";
    case JobQueryState::kComplete:
      return "complete";
    case JobQueryState::kParked:
      return "parked";
    case JobQueryState::kFailed:
      return "failed";
  }
  return "unknown";
}

JobOutcome RunDurableExplain(const JobSpec& spec, const std::string& job_dir,
                             const DurableRunOptions& options) {
  JobOutcome outcome;
  outcome.job_id = spec.id;
  outcome.job_dir = job_dir;
  auto fail = [&](const std::string& error) {
    outcome.state = JobState::kFailed;
    outcome.error = error;
    return outcome;
  };
  std::string request_error;
  if (!spec.Validate(&request_error)) {
    return fail("invalid request: " + request_error);
  }
  if (spec.fault_rate > 0.0) {
    // Journaled scores must come from the real model: a replayed fault
    // would poison every future resume of this job dir.
    return fail("fault_rate is not supported for durable jobs");
  }
  if (!util::EnsureDirectory(job_dir)) {
    return fail("cannot create job directory " + job_dir);
  }
  // Exclusivity: two runs in one job dir would interleave journal
  // appends and checkpoint writes. Held for the rest of this run (flock
  // dies with the process, so a SIGKILL never wedges the dir). A busy
  // lock is the fleet's double-execution safety net — the master
  // guarantees restart XOR adopt per partition, and if that ever
  // breaks, the loser parks here without touching durable state.
  persist::DirLock job_lock;
  std::string lock_error;
  if (!job_lock.Acquire(job_dir, &lock_error)) {
    outcome.state = JobState::kParked;
    outcome.error = "job dir busy: " + lock_error;
    return outcome;
  }

  // -- inputs (validated before any durable state is touched) --
  data::Dataset dataset;
  if (options.dataset_provider) {
    // Streaming: the coordinator materializes the live overlays and
    // durably registers this job's record dependencies at the snapshot
    // it hands out (the staleness contract).
    std::string provider_error;
    if (!options.dataset_provider(spec, &dataset, &provider_error)) {
      return fail("dataset provider: " + provider_error);
    }
  } else if (!spec.data_dir.empty()) {
    if (!data::LoadDatasetDirectory(spec.data_dir, spec.dataset, &dataset)) {
      return fail("cannot load dataset directory " + spec.data_dir);
    }
  } else {
    bool known = false;
    for (const std::string& code : data::BenchmarkCodes()) {
      if (code == spec.dataset) known = true;
    }
    if (!known) return fail("unknown dataset code " + spec.dataset);
    dataset = data::MakeBenchmark(spec.dataset);
  }
  if (spec.pair_index < 0 ||
      spec.pair_index >= static_cast<int>(dataset.test.size())) {
    return fail("pair index out of range (test set has " +
                std::to_string(dataset.test.size()) + " pairs)");
  }
  models::ModelKind kind;
  if (!ModelKindFromName(spec.model, &kind)) {
    return fail("unknown model " + spec.model);
  }

  // -- journal: recover, replay, compact --
  const std::string journal_path = persist::JournalPathInDir(job_dir);
  persist::JournalReplay replay;
  persist::JournalWriter journal;
  journal.BindMetrics(options.metrics);
  if (!journal.Open(journal_path, &replay)) {
    return fail("cannot open journal " + journal_path);
  }
  outcome.resumed = !replay.entries.empty();
  outcome.replayed_scores = static_cast<long long>(replay.entries.size());
  std::vector<std::pair<models::PairKey, double>> prewarm;
  prewarm.reserve(replay.entries.size());
  for (const persist::JournalEntry& entry : replay.entries) {
    prewarm.emplace_back(entry.key, entry.score);
  }
  if (replay.duplicates > 0) {
    // Resumes of resumes re-log replayed-then-recomputed pairs; compact
    // so the journal stays proportional to the unique work. The rewrite
    // is atomic — a crash here leaves the old journal.
    std::vector<persist::JournalEntry> unique;
    unique.reserve(replay.entries.size() - replay.duplicates);
    std::unordered_set<models::PairKey, models::PairKeyHasher> seen;
    for (const persist::JournalEntry& entry : replay.entries) {
      if (seen.insert(entry.key).second) unique.push_back(entry);
    }
    journal.Close();
    if (!persist::CompactJournal(journal_path, unique) ||
        !journal.Open(journal_path, nullptr)) {
      return fail("cannot compact journal " + journal_path);
    }
  }

  // -- model (training is seeded and deterministic: every run of this
  // job dir scores with the identical matcher) --
  std::unique_ptr<models::Matcher> model = models::TrainMatcher(kind, dataset);

  // -- durable run --
  persist::JobCheckpoint checkpoint = CheckpointFromSpec(spec);
  checkpoint.state = "running";
  checkpoint.replayed_scores = outcome.replayed_scores;
  const std::string checkpoint_path = persist::CheckpointPathInDir(job_dir);
  obs::Counter* checkpoint_saves =
      options.metrics != nullptr
          ? options.metrics->counter("checkpoint.saves")
          : nullptr;
  obs::Histogram* checkpoint_save_us =
      options.metrics != nullptr
          ? options.metrics->histogram("checkpoint.save_us",
                                        obs::LatencyBuckets())
          : nullptr;
  long long fresh = 0;
  int since_flush = 0;
  auto flush = [&] {
    journal.Sync();
    // The cross-job store shares the journal's durability cadence: a
    // score that survived a crash in one is in the other too. The same
    // beat absorbs whatever sibling streams have published since the
    // last flush (no-op outside shared-store fleet mode), so a
    // long-running job keeps benefiting from scores its siblings are
    // paying for right now.
    if (options.store != nullptr) {
      options.store->Sync();
      options.store->RefreshPeers();
    }
    checkpoint.fresh_scores = fresh;
    const bool timed =
        checkpoint_save_us != nullptr && options.metrics->enabled();
    const auto save_start = timed ? std::chrono::steady_clock::now()
                                  : std::chrono::steady_clock::time_point();
    persist::SaveCheckpoint(checkpoint_path, checkpoint);
    if (checkpoint_saves != nullptr) checkpoint_saves->Increment();
    if (timed) {
      checkpoint_save_us->Record(static_cast<double>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - save_start)
              .count()));
    }
  };
  flush();  // job dir is self-describing before the first model call

  // The runner's watchdog owns deadline_ms for durable jobs (park and
  // resume, not truncate), so the adapter leaves it out here.
  core::CertaExplainer::Options explainer_options =
      ExplainerOptionsFromRequest(spec, /*include_deadline=*/false);
  explainer_options.replayed_scores = &prewarm;
  explainer_options.cancel = options.cancel;
  explainer_options.metrics = options.metrics;
  explainer_options.trace = options.trace;
  explainer_options.use_candidate_index = options.use_candidate_index;
  if (options.store != nullptr && options.store->is_open()) {
    // Scope store entries to (matcher id, model fingerprint): the
    // deterministic trainer makes (kind, training data) the model's
    // identity, so jobs over the same benchmark share paid scores
    // while different models/data can never collide.
    const uint64_t scope =
        persist::HashScope(spec.model, DatasetFingerprint(dataset));
    persist::ScoreStore* store = options.store;
    // Start the run with the freshest view of sibling streams a shared
    // store can offer (no-op for a single-writer store).
    store->RefreshPeers();
    explainer_options.store_probe = [store, scope, &outcome](
                                        const models::PairKey& key,
                                        double* score) {
      bool from_peer = false;
      if (!store->Lookup(scope, key, score, &from_peer)) return 0;
      ++outcome.store_hits;
      if (from_peer) ++outcome.store_peer_hits;
      return from_peer ? 2 : 1;
    };
    explainer_options.store_write = [store, scope](const models::PairKey& key,
                                                   double score) {
      store->Put(scope, key, score);
    };
  }
  explainer_options.score_observer = [&](const models::PairKey& key,
                                         double score) {
    journal.Append(key, score);
    ++fresh;
    if (options.heartbeat) options.heartbeat();
    if (options.checkpoint_every > 0 &&
        ++since_flush >= options.checkpoint_every) {
      since_flush = 0;
      flush();
    }
  };
  explainer_options.progress = [&](const core::ExplainProgress& progress) {
    checkpoint.phase = progress.phase;
    checkpoint.triangles_total = progress.triangles_total;
    checkpoint.triangles_tagged = progress.triangles_tagged;
    checkpoint.predictions_performed = progress.predictions_performed;
    checkpoint.total_flips = progress.total_flips;
    if (progress.last_tags != nullptr) {
      // Tagged-antichain record of the triangle just finished.
      checkpoint.tagged_lattices.push_back(
          progress.last_lattice->SerializeTags(*progress.last_tags));
    } else {
      flush();  // phase boundaries are always durable
    }
    if (options.heartbeat) options.heartbeat();
    if (options.progress) options.progress(progress);
  };

  explain::ExplainContext context{model.get(), &dataset.left,
                                  &dataset.right};
  core::CertaExplainer explainer(context, explainer_options);
  const data::LabeledPair& pair =
      dataset.test[static_cast<size_t>(spec.pair_index)];
  core::CertaResult result = explainer.Explain(
      dataset.left.record(pair.left_index),
      dataset.right.record(pair.right_index));
  outcome.fresh_scores = fresh;

  if (options.cancel != nullptr &&
      options.cancel->load(std::memory_order_relaxed)) {
    // Parked (watchdog) or interrupted (shutdown): flush everything so
    // the next run resumes from exactly here.
    checkpoint.state = options.cancelled_state;
    flush();
    outcome.state = JobState::kParked;
    return outcome;
  }

  outcome.result_json = core::CertaResultToJson(result, dataset.left.schema(),
                                                dataset.right.schema());
  outcome.result = std::move(result);
  if (!util::AtomicWriteFile(persist::ResultPathInDir(job_dir),
                             outcome.result_json)) {
    flush();
    return fail("cannot write result file");
  }
  checkpoint.state = "complete";
  checkpoint.phase = "done";
  flush();
  outcome.state = JobState::kComplete;
  return outcome;
}

JobRunner::JobRunner(JobRunnerOptions options)
    : options_(std::move(options)) {
  if (options_.workers < 1) options_.workers = 1;
  if (options_.queue_capacity < 1) options_.queue_capacity = 1;
  util::EnsureDirectory(options_.job_root);
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *options_.metrics;
    metric_.queue_depth = reg.gauge("service.queue.depth");
    metric_.running = reg.gauge("service.jobs.running");
    metric_.submitted = reg.counter("service.jobs.submitted");
    metric_.accepted = reg.counter("service.jobs.accepted");
    metric_.rejected_closed = reg.counter("service.rejected.closed");
    metric_.rejected_queue_full = reg.counter("service.rejected.queue_full");
    metric_.rejected_deadline = reg.counter("service.rejected.deadline");
    metric_.completed = reg.counter("service.jobs.completed");
    metric_.parked = reg.counter("service.jobs.parked");
    metric_.failed = reg.counter("service.jobs.failed");
    metric_.job_us = reg.histogram("service.job_us", obs::LatencyBuckets());
  }
  if (!options_.store_dir.empty()) {
    auto store = std::make_unique<persist::ScoreStore>();
    persist::ScoreStore::Options store_options;
    store_options.exclusive_lock = options_.store_exclusive_lock;
    store_options.stream_slot = options_.store_stream_slot;
    if (store->Open(options_.store_dir, store_options)) {
      store->BindMetrics(options_.metrics);
      store_ = std::move(store);
    } else {
      std::fprintf(stderr, "warning: cannot open score store %s (%s); running without\n",
                   options_.store_dir.c_str(), store->open_error().c_str());
    }
  }
  workers_.reserve(static_cast<size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  watchdog_ = std::thread([this] { WatchdogLoop(); });
}

JobRunner::~JobRunner() { Shutdown(/*drain=*/true); }

int64_t JobRunner::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

JobRunner::SubmitResult JobRunner::Submit(JobSpec spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.submitted;
  if (metric_.submitted != nullptr) metric_.submitted->Increment();
  if (closed_) {
    ++counters_.rejected_closed;
    if (metric_.rejected_closed != nullptr) {
      metric_.rejected_closed->Increment();
    }
    return {false, "", "admission closed (shutting down)",
            RejectCode::kClosed};
  }
  if (queue_.size() >= options_.queue_capacity) {
    ++counters_.rejected_queue_full;
    if (metric_.rejected_queue_full != nullptr) {
      metric_.rejected_queue_full->Increment();
    }
    return {false, "",
            "queue full (" + std::to_string(queue_.size()) +
                " jobs waiting, capacity " +
                std::to_string(options_.queue_capacity) + ")",
            RejectCode::kQueueFull};
  }
  if (spec.deadline_ms == 0) spec.deadline_ms = options_.default_deadline_ms;
  if (spec.deadline_ms > 0 && ema_job_micros_ > 0.0) {
    // Deadline-aware shedding: if the queue wait alone is already past
    // the client's deadline, reject now — cheaper for everyone than
    // admitting work that can only be parked later.
    const double estimated_wait_micros =
        static_cast<double>(queue_.size() + running_.size()) *
        ema_job_micros_;
    if (estimated_wait_micros > static_cast<double>(spec.deadline_ms) * 1000.0) {
      ++counters_.rejected_deadline;
      if (metric_.rejected_deadline != nullptr) {
        metric_.rejected_deadline->Increment();
      }
      return {false, "",
              "deadline unmeetable (~" +
                  std::to_string(
                      static_cast<long long>(estimated_wait_micros / 1000.0)) +
                  "ms estimated wait exceeds " +
                  std::to_string(spec.deadline_ms) + "ms deadline)",
              RejectCode::kDeadline};
    }
  }
  if (spec.id.empty()) {
    char id[32];
    std::snprintf(id, sizeof(id), "job-%04d", next_job_number_++);
    spec.id = options_.job_id_prefix + id;
  }
  ++counters_.accepted;
  if (metric_.accepted != nullptr) metric_.accepted->Increment();
  // Durable admission: a spec-only checkpoint written before the accept
  // response means even a SIGKILL of this process loses nothing — the
  // resume sweep (or an adopting sibling worker) re-admits the job from
  // disk exactly as it re-admits parked work.
  std::string job_dir = options_.job_root + "/" + spec.id;
  if (util::EnsureDirectory(job_dir)) {
    persist::JobCheckpoint checkpoint = CheckpointFromSpec(spec);
    checkpoint.state = "queued";
    persist::SaveCheckpoint(persist::CheckpointPathInDir(job_dir),
                            checkpoint);
  }
  queue_.push_back(QueuedJob{std::move(spec), NowMicros(),
                             std::move(job_dir)});
  if (metric_.queue_depth != nullptr) {
    metric_.queue_depth->Set(static_cast<long long>(queue_.size()));
  }
  work_available_.notify_one();
  return {true, queue_.back().spec.id, "", RejectCode::kNone};
}

void JobRunner::WorkerLoop() {
  for (;;) {
    std::shared_ptr<RunningJob> running;
    JobSpec spec;
    std::string job_dir;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stop_ || closed_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_ || closed_) return;
        continue;
      }
      spec = std::move(queue_.front().spec);
      job_dir = std::move(queue_.front().job_dir);
      queue_.pop_front();
      if (metric_.queue_depth != nullptr) {
        metric_.queue_depth->Set(static_cast<long long>(queue_.size()));
      }
      running = std::make_shared<RunningJob>();
      running->id = spec.id;
      running->started_micros = NowMicros();
      running->last_heartbeat_micros.store(running->started_micros,
                                           std::memory_order_relaxed);
      running->deadline_ms = spec.deadline_ms;
      if (cancel_running_) running->cancel.store(true);
      running_.push_back(running);
      if (metric_.running != nullptr) {
        metric_.running->Set(static_cast<long long>(running_.size()));
      }
    }

    DurableRunOptions run_options;
    run_options.checkpoint_every = options_.checkpoint_every;
    run_options.cancel = &running->cancel;
    run_options.cancelled_state = "parked";
    run_options.metrics = options_.metrics;
    run_options.trace = options_.trace;
    run_options.store = store_.get();
    run_options.use_candidate_index = options_.use_candidate_index;
    run_options.dataset_provider = options_.dataset_provider;
    RunningJob* heartbeat_target = running.get();
    run_options.heartbeat = [this, heartbeat_target] {
      heartbeat_target->last_heartbeat_micros.store(
          NowMicros(), std::memory_order_relaxed);
    };
    if (options_.on_progress) {
      const std::string job_id = spec.id;
      run_options.progress = [this,
                              job_id](const core::ExplainProgress& progress) {
        options_.on_progress(job_id, progress);
      };
    }
    JobOutcome outcome;
    {
      obs::TraceSpan job_span(options_.trace, "job:" + spec.id);
      if (job_dir.empty()) job_dir = options_.job_root + "/" + spec.id;
      outcome = RunDurableExplain(spec, job_dir, run_options);
      job_span.AddArg("state", static_cast<long long>(outcome.state));
      job_span.AddArg("fresh_scores", outcome.fresh_scores);
      job_span.AddArg("replayed_scores", outcome.replayed_scores);
    }
    if (metric_.job_us != nullptr) {
      metric_.job_us->Record(
          static_cast<double>(NowMicros() - running->started_micros));
    }

    bool dump_stats = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (size_t i = 0; i < running_.size(); ++i) {
        if (running_[i].get() == running.get()) {
          running_.erase(running_.begin() + static_cast<ptrdiff_t>(i));
          break;
        }
      }
      if (metric_.running != nullptr) {
        metric_.running->Set(static_cast<long long>(running_.size()));
      }
      switch (outcome.state) {
        case JobState::kComplete: {
          ++counters_.completed;
          if (metric_.completed != nullptr) metric_.completed->Increment();
          const double duration = static_cast<double>(
              NowMicros() - running->started_micros);
          ema_job_micros_ = ema_job_micros_ == 0.0
                                ? duration
                                : 0.7 * ema_job_micros_ + 0.3 * duration;
          break;
        }
        case JobState::kParked:
          ++counters_.parked;
          if (metric_.parked != nullptr) metric_.parked->Increment();
          break;
        case JobState::kFailed:
          ++counters_.failed;
          if (metric_.failed != nullptr) metric_.failed->Increment();
          break;
      }
      outcomes_.push_back(outcome);
      dump_stats = options_.stats_every > 0 &&
                   outcomes_.size() %
                           static_cast<size_t>(options_.stats_every) ==
                       0;
      idle_.notify_all();
    }
    if (options_.on_terminal) options_.on_terminal(outcome);
    if (dump_stats) DumpStats();
  }
}

void JobRunner::DumpStats() {
  if (options_.metrics == nullptr || options_.stats_path.empty()) return;
  util::AtomicWriteFile(options_.stats_path,
                        options_.metrics->ToJson() + "\n");
}

void JobRunner::WatchdogLoop() {
  for (;;) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(std::max<long long>(1, options_.watchdog_poll_ms)));
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) return;
    const int64_t now = NowMicros();
    for (const std::shared_ptr<RunningJob>& job : running_) {
      if (job->cancel.load(std::memory_order_relaxed)) continue;
      const bool over_deadline =
          job->deadline_ms > 0 &&
          now - job->started_micros > job->deadline_ms * 1000;
      const bool stalled =
          options_.stall_timeout_ms > 0 &&
          now - job->last_heartbeat_micros.load(std::memory_order_relaxed) >
              options_.stall_timeout_ms * 1000;
      if (over_deadline || stalled) {
        // Park, don't kill: the job checkpoints at its next poll point
        // and every paid model call stays in its journal.
        job->cancel.store(true, std::memory_order_relaxed);
      }
    }
  }
}

void JobRunner::Shutdown(bool drain) {
  std::vector<JobOutcome> parked_in_queue;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ && workers_.empty()) return;  // already shut down
    closed_ = true;
    if (!drain) {
      for (const std::shared_ptr<RunningJob>& job : running_) {
        job->cancel.store(true, std::memory_order_relaxed);
      }
      cancel_running_ = true;
      // Queued jobs never started; leave each a spec-only checkpoint so
      // nothing admitted is lost without a resumable trail.
      for (const QueuedJob& queued : queue_) {
        const std::string job_dir =
            queued.job_dir.empty() ? options_.job_root + "/" + queued.spec.id
                                   : queued.job_dir;
        if (util::EnsureDirectory(job_dir)) {
          persist::JobCheckpoint checkpoint =
              CheckpointFromSpec(queued.spec);
          checkpoint.state = "interrupted";
          persist::SaveCheckpoint(persist::CheckpointPathInDir(job_dir),
                                  checkpoint);
        }
        JobOutcome outcome;
        outcome.state = JobState::kParked;
        outcome.job_id = queued.spec.id;
        outcome.job_dir = job_dir;
        outcome.error = "interrupted before start (resumable checkpoint written)";
        outcomes_.push_back(outcome);
        parked_in_queue.push_back(std::move(outcome));
        ++counters_.parked;
      }
      queue_.clear();
    }
    work_available_.notify_all();
  }
  if (options_.on_terminal) {
    for (const JobOutcome& outcome : parked_in_queue) {
      options_.on_terminal(outcome);
    }
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
    idle_.notify_all();
  }
  if (watchdog_.joinable()) watchdog_.join();
  if (store_ != nullptr) store_->Sync();  // every worker has stopped
  DumpStats();  // final snapshot: every terminal outcome is in
}

void JobRunner::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && running_.empty(); });
}

JobQueryState JobRunner::Query(const std::string& job_id,
                               JobOutcome* outcome) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const QueuedJob& queued : queue_) {
    if (queued.spec.id == job_id) return JobQueryState::kQueued;
  }
  for (const std::shared_ptr<RunningJob>& job : running_) {
    if (job->id == job_id) return JobQueryState::kRunning;
  }
  // Latest outcome wins: a parked job can be re-submitted and finish.
  for (auto it = outcomes_.rbegin(); it != outcomes_.rend(); ++it) {
    if (it->job_id != job_id) continue;
    if (outcome != nullptr) *outcome = *it;
    switch (it->state) {
      case JobState::kComplete:
        return JobQueryState::kComplete;
      case JobState::kParked:
        return JobQueryState::kParked;
      case JobState::kFailed:
        return JobQueryState::kFailed;
    }
  }
  return JobQueryState::kUnknown;
}

bool JobRunner::Cancel(const std::string& job_id, std::string* reason) {
  JobOutcome cancelled;
  bool notify_terminal = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (size_t i = 0; i < queue_.size(); ++i) {
      if (queue_[i].spec.id != job_id) continue;
      // Same trail as a drain-less shutdown: the job never started, so
      // a spec-only resumable checkpoint is its whole durable state.
      const JobSpec spec = queue_[i].spec;
      const std::string job_dir =
          queue_[i].job_dir.empty() ? options_.job_root + "/" + spec.id
                                    : queue_[i].job_dir;
      queue_.erase(queue_.begin() + static_cast<ptrdiff_t>(i));
      if (metric_.queue_depth != nullptr) {
        metric_.queue_depth->Set(static_cast<long long>(queue_.size()));
      }
      if (util::EnsureDirectory(job_dir)) {
        persist::JobCheckpoint checkpoint = CheckpointFromSpec(spec);
        checkpoint.state = "interrupted";
        persist::SaveCheckpoint(persist::CheckpointPathInDir(job_dir),
                                checkpoint);
      }
      cancelled.state = JobState::kParked;
      cancelled.job_id = spec.id;
      cancelled.job_dir = job_dir;
      cancelled.error = "cancelled before start (resumable checkpoint written)";
      outcomes_.push_back(cancelled);
      ++counters_.parked;
      if (metric_.parked != nullptr) metric_.parked->Increment();
      notify_terminal = true;
      idle_.notify_all();
      break;
    }
    if (!notify_terminal) {
      for (const std::shared_ptr<RunningJob>& job : running_) {
        if (job->id != job_id) continue;
        job->cancel.store(true, std::memory_order_relaxed);
        return true;  // parks at its next poll point
      }
    }
  }
  if (notify_terminal) {
    if (options_.on_terminal) options_.on_terminal(cancelled);
    return true;
  }
  if (reason != nullptr) *reason = "job is not queued or running";
  return false;
}

int JobRunner::AdoptParked(const std::string& partition_root,
                           std::vector<std::string>* adopted_ids) {
  namespace fs = std::filesystem;
  struct Candidate {
    JobSpec spec;
    std::string job_dir;
    persist::JobCheckpoint checkpoint;
  };
  std::vector<Candidate> candidates;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(partition_root, ec)) {
    if (ec) break;
    if (!entry.is_directory(ec)) continue;
    const std::string job_dir = entry.path().string();
    persist::JobCheckpoint checkpoint;
    if (!persist::LoadCheckpoint(persist::CheckpointPathInDir(job_dir),
                                 &checkpoint)) {
      continue;  // no (or corrupt) checkpoint: nothing admitted to honor
    }
    if (checkpoint.state == "complete" || checkpoint.state == "failed") {
      continue;
    }
    Candidate candidate;
    candidate.spec = SpecFromCheckpoint(checkpoint);
    if (candidate.spec.id.empty()) {
      candidate.spec.id = entry.path().filename().string();
    }
    candidate.job_dir = job_dir;
    candidate.checkpoint = std::move(checkpoint);
    candidates.push_back(std::move(candidate));
  }
  // Deterministic adoption order regardless of readdir order.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.job_dir < b.job_dir;
            });

  int adopted = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return 0;
    for (Candidate& candidate : candidates) {
      bool in_flight = false;
      for (const QueuedJob& queued : queue_) {
        if (queued.spec.id == candidate.spec.id) in_flight = true;
      }
      for (const std::shared_ptr<RunningJob>& job : running_) {
        if (job->id == candidate.spec.id) in_flight = true;
      }
      if (in_flight) continue;
      // Deliberately past queue_capacity: these jobs were admitted once
      // (by the dead worker); shedding them now would silently lose
      // admitted work.
      ++counters_.submitted;
      ++counters_.accepted;
      if (metric_.submitted != nullptr) metric_.submitted->Increment();
      if (metric_.accepted != nullptr) metric_.accepted->Increment();
      if (adopted_ids != nullptr) adopted_ids->push_back(candidate.spec.id);
      // Rewrite the durable state before the job enters the queue:
      // sibling workers answer status polls from this checkpoint, and a
      // re-admitted job must read as active ("queued"), not still
      // "parked"/"interrupted", while it waits for a worker thread.
      // Progress fields are preserved — this re-saves the loaded
      // checkpoint, only flipping the state label.
      candidate.checkpoint.state = "queued";
      persist::SaveCheckpoint(persist::CheckpointPathInDir(candidate.job_dir),
                              candidate.checkpoint);
      queue_.push_back(QueuedJob{std::move(candidate.spec), NowMicros(),
                                 std::move(candidate.job_dir)});
      ++adopted;
    }
    if (adopted > 0) {
      if (metric_.queue_depth != nullptr) {
        metric_.queue_depth->Set(static_cast<long long>(queue_.size()));
      }
      work_available_.notify_all();
    }
  }
  return adopted;
}

void JobRunner::RefreshStorePeers() {
  // The store is internally locked; no runner state is touched.
  if (store_ != nullptr) store_->RefreshPeers();
}

JobRunner::Counters JobRunner::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

std::vector<JobOutcome> JobRunner::outcomes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return outcomes_;
}

}  // namespace certa::service
