#include "service/signals.h"

#include <csignal>

#include <atomic>

namespace certa::service {
namespace {

std::atomic<bool> g_shutdown{false};
std::atomic<bool> g_rolling_restart{false};

/// Async-signal-safe: one atomic store, plus re-arming default
/// disposition so a repeat signal force-kills (escape hatch when the
/// graceful path wedges).
void OnSignal(int signum) {
  g_shutdown.store(true, std::memory_order_relaxed);
  std::signal(signum, SIG_DFL);
}

/// Async-signal-safe: one atomic store; the handler stays armed so
/// every SIGHUP requests another rolling restart pass.
void OnRollingRestartSignal(int) {
  g_rolling_restart.store(true, std::memory_order_relaxed);
}

}  // namespace

void InstallShutdownHandlers() {
  struct sigaction action = {};
  action.sa_handler = OnSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: interrupt blocking reads
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

bool ShutdownRequested() {
  return g_shutdown.load(std::memory_order_relaxed);
}

void RequestShutdown() { g_shutdown.store(true, std::memory_order_relaxed); }

const std::atomic<bool>* ShutdownFlag() { return &g_shutdown; }

void ResetShutdownForTesting() {
  g_shutdown.store(false, std::memory_order_relaxed);
}

void InstallRollingRestartHandler() {
  struct sigaction action = {};
  action.sa_handler = OnRollingRestartSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: interrupt blocking waits
  sigaction(SIGHUP, &action, nullptr);
}

bool RollingRestartRequested() {
  return g_rolling_restart.load(std::memory_order_relaxed);
}

bool ConsumeRollingRestartRequest() {
  return g_rolling_restart.exchange(false, std::memory_order_relaxed);
}

}  // namespace certa::service
