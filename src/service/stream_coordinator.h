#ifndef CERTA_SERVICE_STREAM_COORDINATOR_H_
#define CERTA_SERVICE_STREAM_COORDINATOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/explain_request.h"
#include "data/dataset.h"
#include "data/mutable_table.h"
#include "obs/metrics.h"

namespace certa::service {

/// The streaming/online half of the service (docs/OPERATIONS.md
/// "Streaming mode"): record upserts and removals arrive through the
/// v2 wire protocol, mutate per-dataset data::MutableTable overlays,
/// and lazily invalidate explanations whose inputs drifted.
///
/// Durability mirrors the score store's shared-directory discipline
/// (persist::ScoreStore): one stream directory serves the whole fleet,
/// every byte has exactly one writer. Worker `slot` appends CRC'd ops
/// to its own `ops-w<slot>.wal` (fsync BEFORE the ack frame goes out,
/// so an acked upsert survives SIGKILL), absorbs sibling streams
/// read-only from remembered offsets (torn or in-flight tails are
/// simply not absorbed yet, never interpreted), and checkpoints its
/// whole derived state — overlay tables, absorbed offsets, dependency
/// registry — atomically to `state-w<slot>.ckpt` so a restart replays
/// only each stream's tail. A corrupt checkpoint is never trusted:
/// recovery falls back to replaying every stream from byte 0, which is
/// always safe because ops converge by per-record last-writer-wins.
///
/// Ordering. Every op carries a Lamport sequence (seq, slot): local
/// ops take seq = ++clock, absorbed ops advance the clock, and a
/// record's state is the op with the largest (seq, slot) that touched
/// it — so all workers converge to the same record states regardless
/// of absorption order. (Row *numbering* of appended records follows
/// each worker's application order; one worker is internally
/// deterministic, which is what replay-for-recovery and the
/// recompute-equals-fresh-batch guarantee need.)
///
/// Staleness. ProvideDataset — the runner's dataset hook — registers
/// which record ids a job's explained pair reads, stamped with the
/// clock value the job's snapshot was taken at (a `deps` op, so the
/// registry itself is durable and fleet-visible). A later op on any
/// of those records makes the job stale: `result` fetches answer
/// `stale_recomputing` and re-submit the job, `invalidations`
/// subscribers get an event, and the recompute re-registers deps at
/// the new snapshot. Content-hashed pair keys (models::PairKey) keep
/// the score store safe across mutations — a mutated record hashes to
/// new keys, so recompute re-uses every paid score that is still
/// valid and can never be served a stale one.
class StreamCoordinator {
 public:
  struct Options {
    /// The shared stream directory (created when missing).
    std::string dir;
    /// This writer's stream slot (fleet workers pass their worker
    /// slot; single-process serving uses 0).
    int slot = 0;
    /// Rewrite the atomic state checkpoint after this many locally
    /// applied or absorbed ops (Close always checkpoints).
    int checkpoint_every = 64;
    /// Minimum interval between MaybeAbsorbPeers directory scans.
    long long absorb_interval_ms = 200;
    /// Observability (not owned; nullptr = uninstrumented).
    obs::MetricsRegistry* metrics = nullptr;
  };

  /// Machine-mappable failure kind of one streaming call (the wire
  /// layer maps these onto stable error codes).
  enum class OpStatus {
    kOk = 0,
    /// Dataset code unknown / dataset directory unloadable.
    kUnknownDataset = 1,
    /// Record shape does not fit the dataset (value count vs schema,
    /// negative id).
    kBadRecord = 2,
    /// WAL append/fsync or checkpoint I/O failure.
    kIo = 3,
  };

  /// What one accepted upsert/remove durably became.
  struct Ack {
    uint64_t seq = 0;
    int slot = 0;
    int row = -1;
    /// Upsert only: appended a new row (vs replaced in place).
    bool created = false;
    /// Remove only: a live record was actually tombstoned (false =
    /// acknowledged no-op on an unknown or already-removed id).
    bool removed = false;
  };

  /// One completed job whose inputs just drifted.
  struct Invalidation {
    std::string job_id;
    std::string dataset;
    int side = 0;
    int record_id = -1;
  };

  struct MatchCandidate {
    int id = -1;
    int overlap = 0;
    std::vector<std::string> values;
  };

  struct Stats {
    uint64_t clock = 0;
    long long ops_applied = 0;
    long long ops_absorbed = 0;
    long long upserts = 0;
    long long removes = 0;
    long long deps_registered = 0;
    long long invalidations = 0;
    long long checkpoints = 0;
    long long torn_bytes_dropped = 0;
    long long replayed_ops = 0;
    int datasets = 0;
    int stale_jobs = 0;
  };

  StreamCoordinator() = default;
  ~StreamCoordinator();

  StreamCoordinator(const StreamCoordinator&) = delete;
  StreamCoordinator& operator=(const StreamCoordinator&) = delete;

  /// Loads the checkpoint (when valid), recovers the own stream
  /// (truncating a torn tail), replays every stream's unabsorbed tail,
  /// and opens the own stream for appending. False + *error on I/O
  /// failure.
  bool Open(const Options& options, std::string* error);
  bool is_open() const { return fd_ >= 0; }
  /// Final checkpoint + close. Idempotent.
  void Close();

  /// Applies one record upsert durably: WAL append + fsync, then the
  /// in-memory overlay. `invalidated` (optional) receives completed
  /// jobs this op just made stale. The record's id addresses the row
  /// (data::MutableTable::Upsert semantics).
  OpStatus Upsert(const std::string& dataset, const std::string& data_dir,
                  int side, const data::Record& record, Ack* ack,
                  std::vector<Invalidation>* invalidated, std::string* error);

  /// Tombstones a record (durable, same path as Upsert). Removing an
  /// id the table does not hold is acknowledged as a no-op row -1.
  OpStatus Remove(const std::string& dataset, const std::string& data_dir,
                  int side, int record_id, Ack* ack,
                  std::vector<Invalidation>* invalidated, std::string* error);

  /// Top-k candidates for a probe record against `side` of the
  /// dataset, ranked by (shared-token overlap desc, record id asc) —
  /// the id tiebreak makes replies convergent fleet-wide once ops are
  /// absorbed. Absorbs sibling streams first, so a match sees every
  /// already-acked sibling upsert the directory holds.
  OpStatus Match(const std::string& dataset, const std::string& data_dir,
                 int side, const std::vector<std::string>& probe_values,
                 int k, std::vector<MatchCandidate>* candidates,
                 std::string* error);

  /// service::DurableRunOptions::dataset_provider — materializes the
  /// job's dataset from the current overlays (absorbing sibling
  /// streams first) and durably registers the job's record
  /// dependencies at this snapshot. Clears any previous staleness of
  /// the job id (the recompute path re-registers here).
  bool ProvideDataset(const api::ExplainRequest& request,
                      data::Dataset* dataset, std::string* error);

  /// Whether a completed job's registered inputs have drifted since
  /// its snapshot. Unregistered jobs are never stale.
  bool IsStale(const std::string& job_id) const;

  /// Every job currently known stale, sorted by id (the catch-up list
  /// an `invalidations` subscription answers with).
  std::vector<std::string> StaleJobs() const;

  /// Time-gated sibling-stream absorption for idle servers (the event
  /// loop calls this every beat; most calls are no-ops). Returns jobs
  /// newly invalidated by absorbed ops.
  std::vector<Invalidation> MaybeAbsorbPeers();
  /// Unconditional absorption pass.
  std::vector<Invalidation> AbsorbPeers();

  Stats stats() const;
  /// The stats() snapshot as one compact JSON object — spliced into
  /// the wire stats frame as its "stream" section.
  std::string StatsJson() const;
  const std::string& dir() const { return options_.dir; }
  int slot() const { return options_.slot; }

  /// Name of this slot's stream / checkpoint file inside dir.
  static std::string WalFileName(int slot);
  static std::string CheckpointFileName(int slot);

 private:
  struct Version {
    uint64_t seq = 0;
    int slot = -1;
    bool Newer(const Version& other) const {
      return seq != other.seq ? seq > other.seq : slot > other.slot;
    }
  };

  struct StreamOp {
    enum class Kind { kUpsert, kRemove, kDeps };
    Kind kind = Kind::kUpsert;
    uint64_t seq = 0;
    int slot = 0;
    std::string dataset;
    std::string data_dir;
    int side = 0;
    data::Record record;  // upsert: id+values; remove: id only
    // deps:
    std::string job_id;
    uint64_t snapshot = 0;
    struct DepRecord {
      std::string dataset;
      std::string data_dir;
      int side = 0;
      int id = -1;
    };
    std::vector<DepRecord> dep_records;
  };

  struct Overlay {
    std::string dataset;
    std::string data_dir;
    data::Dataset base;  // frozen splits; tables superseded by sides
    data::MutableTable sides[2];
    int base_rows[2] = {0, 0};
  };

  struct JobDeps {
    Version version;  // of the deps op (last-writer-wins)
    uint64_t snapshot = 0;
    std::vector<StreamOp::DepRecord> records;
  };

  static std::string DatasetKey(const std::string& dataset,
                                const std::string& data_dir);
  static std::string RecordKey(const std::string& dataset,
                               const std::string& data_dir, int side, int id);

  Overlay* GetOverlayLocked(const std::string& dataset,
                            const std::string& data_dir, std::string* error);
  /// Appends one serialized op line to the own WAL and fsyncs — the
  /// ack durability boundary. False on I/O failure.
  bool AppendOpLocked(const StreamOp& op, std::string* error);
  /// Applies an op to the overlays/deps registry (last-writer-wins),
  /// collecting invalidations. Returns false only when the op's
  /// dataset cannot be loaded (the op is then counted and skipped).
  bool ApplyOpLocked(const StreamOp& op, Ack* ack,
                     std::vector<Invalidation>* invalidated);
  void RecomputeJobStalenessLocked(const std::string& job_id);
  void MarkWatchersStaleLocked(const StreamOp& op,
                               std::vector<Invalidation>* invalidated);
  std::vector<Invalidation> AbsorbPeersLocked();
  /// Reads complete, CRC-valid op lines of `path` starting at
  /// *offset, applying each; advances *offset past consumed bytes.
  void AbsorbFileLocked(const std::string& path, size_t* offset,
                        std::vector<Invalidation>* invalidated);
  void MaybeCheckpointLocked();
  bool WriteCheckpointLocked();
  bool LoadCheckpointLocked(std::string* error);
  /// Truncates the own WAL to its longest valid prefix; returns false
  /// on I/O failure.
  bool RecoverOwnWalLocked(std::string* error);
  static std::string SerializeOp(const StreamOp& op);
  static bool ParseOp(std::string_view json, StreamOp* op);
  int64_t NowMs() const;

  Options options_;
  mutable std::mutex mutex_;
  int fd_ = -1;
  uint64_t clock_ = 0;
  std::map<std::string, Overlay> overlays_;  // by DatasetKey
  std::unordered_map<std::string, Version> mods_;  // by RecordKey
  std::map<std::string, JobDeps> deps_;  // by job id
  std::unordered_map<std::string, std::set<std::string>> watchers_;
  std::set<std::string> stale_;
  /// Per stream-file absorbed byte offsets (own file included: the
  /// prefix already reflected by checkpoint + replay).
  std::map<std::string, size_t> offsets_;
  Stats stats_;
  int ops_since_checkpoint_ = 0;
  int64_t last_absorb_ms_ = 0;
  obs::Counter* metric_ops_ = nullptr;
  obs::Counter* metric_absorbed_ = nullptr;
  obs::Counter* metric_invalidations_ = nullptr;
  obs::Counter* metric_checkpoints_ = nullptr;
};

}  // namespace certa::service

#endif  // CERTA_SERVICE_STREAM_COORDINATOR_H_
