#ifndef CERTA_SERVICE_SIGNALS_H_
#define CERTA_SERVICE_SIGNALS_H_

#include <atomic>

namespace certa::service {

/// Process exit code meaning "interrupted by SIGINT/SIGTERM, durable
/// state (journal + checkpoint) flushed; resume with the same job dir".
/// Distinct from 0 (complete), 1 (error), and 2 (usage).
constexpr int kInterruptedExitCode = 3;

/// Installs SIGINT/SIGTERM handlers that set an internal flag instead
/// of killing the process — the serve loop and durable explain poll
/// ShutdownRequested() to stop admission, flush the journal and a final
/// checkpoint, and exit(kInterruptedExitCode). Idempotent. A second
/// signal while shutdown is already pending restores default
/// disposition, so a stuck flush can still be killed with one more ^C.
void InstallShutdownHandlers();

/// True once a SIGINT/SIGTERM has been received (or RequestShutdown
/// was called).
bool ShutdownRequested();

/// Programmatic trigger, equivalent to receiving a signal (tests,
/// in-process embedding).
void RequestShutdown();

/// The flag itself, for APIs that take a cooperative-cancel pointer
/// (DurableRunOptions::cancel). Never null; process lifetime.
const std::atomic<bool>* ShutdownFlag();

/// Clears the flag (tests only; real shutdowns are one-way).
void ResetShutdownForTesting();

/// Installs a SIGHUP handler that latches a rolling-restart request
/// instead of killing the process (default SIGHUP disposition is
/// terminate). Used by the fleet master: each SIGHUP triggers one
/// rolling restart pass over the workers. The handler stays armed, so
/// repeated SIGHUPs request repeated rolling restarts. Idempotent.
void InstallRollingRestartHandler();

/// True once a SIGHUP has been received since the last Clear. Unlike
/// shutdown, rolling restart is a repeatable event, so consumers clear
/// the latch after acting on it.
bool RollingRestartRequested();

/// Consumes the rolling-restart latch (returns the previous value, so
/// a check-and-clear is race-free against a concurrent SIGHUP).
bool ConsumeRollingRestartRequest();

}  // namespace certa::service

#endif  // CERTA_SERVICE_SIGNALS_H_
