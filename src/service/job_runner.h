#ifndef CERTA_SERVICE_JOB_RUNNER_H_
#define CERTA_SERVICE_JOB_RUNNER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/certa_explainer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "persist/checkpoint.h"

namespace certa::service {

/// One explanation request, as admitted by the serve loop. Everything
/// needed to re-create the run exactly is here (and is persisted into
/// the job's checkpoint, so a job dir alone suffices to resume).
struct JobSpec {
  /// Job-dir name under the runner's job root; empty = assigned
  /// ("job-0001", ...).
  std::string id;
  /// Built-in benchmark code, or any code when data_dir is set.
  std::string dataset = "AB";
  /// DeepMatcher-format directory; empty = built-in benchmark.
  std::string data_dir;
  /// "deeper" | "deepmatcher" | "ditto" | "svm".
  std::string model = "svm";
  int pair_index = 0;
  int triangles = 100;
  int threads = 1;
  uint64_t seed = 7;
  bool use_cache = true;
  /// Whole-job deadline. Admission rejects a job whose estimated queue
  /// wait already exceeds it (shed early, while rejection is cheap);
  /// the watchdog parks a *running* job that overruns it (its paid work
  /// survives in the journal). 0 = none.
  long long deadline_ms = 0;
};

/// Reconstructs the spec a checkpoint was written under — the resume
/// path: `certa serve --resume <job-dir>` needs only the directory.
JobSpec SpecFromCheckpoint(const persist::JobCheckpoint& checkpoint);

/// Terminal state of one job.
enum class JobState {
  /// Finished; result.json written atomically.
  kComplete = 0,
  /// Stopped cooperatively (watchdog deadline/stall, or shutdown) with
  /// journal + checkpoint flushed; resumable.
  kParked = 1,
  /// Unrunnable (bad dataset/model/pair, I/O failure). Not resumable.
  kFailed = 2,
};

std::string JobStateName(JobState state);

/// What one durable run produced.
struct JobOutcome {
  JobState state = JobState::kFailed;
  std::string job_id;
  std::string job_dir;
  std::string error;
  /// True when an existing journal was found and replayed.
  bool resumed = false;
  /// Journal entries replayed at start / fresh model scores paid by
  /// this run (the resume savings are `replayed` calls never re-paid).
  long long replayed_scores = 0;
  long long fresh_scores = 0;
  /// Valid when state == kComplete.
  core::CertaResult result;
  std::string result_json;
};

/// Knobs for one durable explain run.
struct DurableRunOptions {
  /// Journal fsync + checkpoint after this many fresh scores (phase
  /// boundaries always checkpoint). Smaller = less repaid work after a
  /// crash, more fsync overhead (bench_durability quantifies).
  int checkpoint_every = 256;
  /// Cooperative stop (not owned): when set, the run parks at the next
  /// poll point with durable state flushed.
  const std::atomic<bool>* cancel = nullptr;
  /// Checkpoint `state` recorded when cancelled: "parked" (watchdog)
  /// or "interrupted" (signal-driven shutdown). Both resume the same.
  const char* cancelled_state = "parked";
  /// Invoked on every fresh score and phase boundary — the runner's
  /// watchdog heartbeat.
  std::function<void()> heartbeat;
  /// Observability (not owned; nullptr = uninstrumented). Flows into
  /// the journal (journal.*), checkpoint writes (checkpoint.*), and the
  /// explainer/engine underneath (explain.*, scoring.*). Results and
  /// durable state are bit-identical either way.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceRecorder* trace = nullptr;
};

/// Runs one explanation job durably inside `job_dir`:
///   - replays any existing journal (torn tails discarded) into the
///     prediction cache, so already-paid model calls are never re-paid;
///   - write-ahead journals every fresh score, fsync'd on the
///     checkpoint cadence;
///   - checkpoints progress (phase, triangle frontier, tagged-lattice
///     antichains) atomically alongside;
///   - on completion writes result.json atomically and marks the
///     checkpoint "complete".
/// Kill this process at any instruction and re-run: the result is
/// bit-identical, with strictly fewer model calls.
JobOutcome RunDurableExplain(const JobSpec& spec, const std::string& job_dir,
                             const DurableRunOptions& options);

/// Serve-loop configuration.
struct JobRunnerOptions {
  /// Job dirs are created under here.
  std::string job_root = "jobs";
  /// Bounded admission queue; a full queue sheds new jobs with a clear
  /// rejection instead of degrading the ones already running.
  size_t queue_capacity = 8;
  int workers = 1;
  int checkpoint_every = 256;
  /// Default whole-job deadline applied to specs without one; 0 = none.
  long long default_deadline_ms = 0;
  /// Park a running job with no heartbeat for this long; 0 = off.
  long long stall_timeout_ms = 0;
  /// Watchdog poll period.
  long long watchdog_poll_ms = 20;
  /// Observability (not owned; nullptr = uninstrumented). The runner
  /// keeps the service.* gauges/counters/histograms live and passes the
  /// same registry/recorder down to every durable run.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceRecorder* trace = nullptr;
  /// Write a JSON metrics snapshot to `stats_path` after every N
  /// terminal job outcomes (plus a final dump on Shutdown); 0 = only
  /// the final dump. Requires both `metrics` and a non-empty path.
  int stats_every = 0;
  std::string stats_path;
};

/// Bounded-queue job service: admission control in front, durable
/// worker runs in the middle, a watchdog on the side. Overload policy
/// (docs/OPERATIONS.md): reject new work first; a job that was admitted
/// either completes or parks with a resumable checkpoint — no admitted
/// job is ever silently lost.
class JobRunner {
 public:
  struct SubmitResult {
    bool accepted = false;
    std::string job_id;
    /// Why admission refused ("admission closed", "queue full ...",
    /// "deadline unmeetable ...").
    std::string reason;
  };

  struct Counters {
    long long submitted = 0;
    long long accepted = 0;
    long long rejected_closed = 0;
    long long rejected_queue_full = 0;
    long long rejected_deadline = 0;
    long long completed = 0;
    long long parked = 0;
    long long failed = 0;
  };

  explicit JobRunner(JobRunnerOptions options);
  /// Graceful: equivalent to Shutdown(/*drain=*/true).
  ~JobRunner();

  JobRunner(const JobRunner&) = delete;
  JobRunner& operator=(const JobRunner&) = delete;

  /// Admission control; never blocks. Accepted specs are queued and
  /// will run to completion or a resumable park.
  SubmitResult Submit(JobSpec spec);

  /// Stops admission. drain=true lets queued + running jobs finish;
  /// drain=false cancels running jobs (they park with flushed state)
  /// and fails queued ones back as parked-in-queue outcomes. Joins all
  /// threads; idempotent.
  void Shutdown(bool drain);

  /// Blocks until every accepted job has a terminal outcome (admission
  /// stays open).
  void Wait();

  Counters counters() const;
  /// Terminal outcomes so far, in completion order.
  std::vector<JobOutcome> outcomes() const;

 private:
  struct QueuedJob {
    JobSpec spec;
    int64_t enqueued_micros = 0;
  };

  /// Watchdog view of one in-flight job.
  struct RunningJob {
    std::string id;
    std::atomic<bool> cancel{false};
    std::atomic<int64_t> last_heartbeat_micros{0};
    int64_t started_micros = 0;
    long long deadline_ms = 0;
  };

  void WorkerLoop();
  void WatchdogLoop();
  int64_t NowMicros() const;
  /// Writes a metrics snapshot to options_.stats_path (no-op without a
  /// registry or path). Called outside mutex_ — ToJson locks only the
  /// registry.
  void DumpStats();

  /// Registry handles, resolved once in the constructor (all null when
  /// options_.metrics is null).
  struct MetricHandles {
    obs::Gauge* queue_depth = nullptr;
    obs::Gauge* running = nullptr;
    obs::Counter* submitted = nullptr;
    obs::Counter* accepted = nullptr;
    obs::Counter* rejected_closed = nullptr;
    obs::Counter* rejected_queue_full = nullptr;
    obs::Counter* rejected_deadline = nullptr;
    obs::Counter* completed = nullptr;
    obs::Counter* parked = nullptr;
    obs::Counter* failed = nullptr;
    obs::Histogram* job_us = nullptr;
  };

  JobRunnerOptions options_;
  MetricHandles metric_;
  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<QueuedJob> queue_;
  std::vector<std::shared_ptr<RunningJob>> running_;
  std::vector<JobOutcome> outcomes_;
  Counters counters_;
  bool closed_ = false;
  bool cancel_running_ = false;
  bool stop_ = false;
  int next_job_number_ = 1;
  /// EMA of completed-job wall time, for deadline-aware admission.
  double ema_job_micros_ = 0.0;
  std::vector<std::thread> workers_;
  std::thread watchdog_;
};

}  // namespace certa::service

#endif  // CERTA_SERVICE_JOB_RUNNER_H_
