#ifndef CERTA_SERVICE_JOB_RUNNER_H_
#define CERTA_SERVICE_JOB_RUNNER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/explain_request.h"
#include "core/certa_explainer.h"
#include "data/dataset.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "persist/checkpoint.h"
#include "persist/score_store.h"

namespace certa::service {

/// One explanation request, as admitted by the serve loop — the
/// versioned api::ExplainRequest is the single spec shared by the CLI,
/// the wire protocol (src/net) and job checkpoints; the service layer
/// uses it directly. `id` is the job-dir name under the runner's job
/// root (empty = assigned "job-0001", ...); `deadline_ms` is the
/// whole-job deadline: admission rejects a job whose estimated queue
/// wait already exceeds it, and the watchdog parks a *running* job
/// that overruns it (its paid work survives in the journal).
using JobSpec = api::ExplainRequest;

/// Reconstructs the request a checkpoint was written under — the
/// resume path: `certa serve --resume <job-dir>` needs only the
/// directory.
JobSpec SpecFromCheckpoint(const persist::JobCheckpoint& checkpoint);

/// The one spec → explainer translation (shared by the durable runner
/// and the CLI's in-process explain). `include_deadline` applies
/// request.deadline_ms as a resilience deadline — the in-process path
/// wants that; durable runs leave it false because the runner's
/// watchdog owns the job deadline (park + resume, not truncate).
/// Durability hooks (cancel/observer/progress) are the caller's to
/// fill in afterwards.
core::CertaExplainer::Options ExplainerOptionsFromRequest(
    const api::ExplainRequest& request, bool include_deadline);

/// Terminal state of one job.
enum class JobState {
  /// Finished; result.json written atomically.
  kComplete = 0,
  /// Stopped cooperatively (watchdog deadline/stall, or shutdown) with
  /// journal + checkpoint flushed; resumable.
  kParked = 1,
  /// Unrunnable (bad dataset/model/pair, I/O failure). Not resumable.
  kFailed = 2,
};

std::string JobStateName(JobState state);

/// What one durable run produced.
struct JobOutcome {
  JobState state = JobState::kFailed;
  std::string job_id;
  std::string job_dir;
  std::string error;
  /// True when an existing journal was found and replayed.
  bool resumed = false;
  /// Journal entries replayed at start / fresh model scores paid by
  /// this run (the resume savings are `replayed` calls never re-paid).
  long long replayed_scores = 0;
  long long fresh_scores = 0;
  /// Cache misses served from the cross-job score store instead of the
  /// model (0 when no store is attached). Like replayed_scores these
  /// are calls never re-paid; unlike them they survive across jobs and
  /// server restarts.
  long long store_hits = 0;
  /// Subset of store_hits served by an entry a *sibling* worker paid
  /// for (absorbed from its stream in a shared store directory); 0
  /// outside shared-store fleet mode.
  long long store_peer_hits = 0;
  /// Valid when state == kComplete.
  core::CertaResult result;
  std::string result_json;
};

/// Knobs for one durable explain run.
struct DurableRunOptions {
  /// Journal fsync + checkpoint after this many fresh scores (phase
  /// boundaries always checkpoint). Smaller = less repaid work after a
  /// crash, more fsync overhead (bench_durability quantifies).
  int checkpoint_every = 256;
  /// Cooperative stop (not owned): when set, the run parks at the next
  /// poll point with durable state flushed.
  const std::atomic<bool>* cancel = nullptr;
  /// Checkpoint `state` recorded when cancelled: "parked" (watchdog)
  /// or "interrupted" (signal-driven shutdown). Both resume the same.
  const char* cancelled_state = "parked";
  /// Invoked on every fresh score and phase boundary — the runner's
  /// watchdog heartbeat.
  std::function<void()> heartbeat;
  /// Observes the same ExplainProgress snapshots the checkpoint is fed
  /// from (phase boundaries and per-triangle frontier advances) — the
  /// network layer streams progress events from here. Pointer fields
  /// inside the snapshot are valid only for the callback's duration.
  std::function<void(const core::ExplainProgress&)> progress;
  /// Observability (not owned; nullptr = uninstrumented). Flows into
  /// the journal (journal.*), checkpoint writes (checkpoint.*), and the
  /// explainer/engine underneath (explain.*, scoring.*). Results and
  /// durable state are bit-identical either way.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceRecorder* trace = nullptr;
  /// Cross-job durable prediction store (not owned; nullptr = none).
  /// Scoped to (model, dataset fingerprint): the run probes it on
  /// cache misses — skipping the paid model call on a hit — and feeds
  /// every fresh score back. Synced on the checkpoint cadence.
  /// Results are byte-identical with or without a store attached.
  persist::ScoreStore* store = nullptr;
  /// Answer support discovery from the inverted candidate index
  /// (byte-identical to the linear reference scan; see
  /// CertaExplainer::Options::use_candidate_index).
  bool use_candidate_index = true;
  /// When set, supplies the job's dataset instead of the default
  /// load-from-disk/benchmark path — the streaming coordinator's hook
  /// (service::StreamCoordinator::ProvideDataset): it materializes the
  /// live overlay tables and durably registers the job's record
  /// dependencies at the snapshot it hands out. False + *error fails
  /// the job.
  std::function<bool(const api::ExplainRequest&, data::Dataset*,
                     std::string*)>
      dataset_provider;
};

/// Runs one explanation job durably inside `job_dir`:
///   - replays any existing journal (torn tails discarded) into the
///     prediction cache, so already-paid model calls are never re-paid;
///   - write-ahead journals every fresh score, fsync'd on the
///     checkpoint cadence;
///   - checkpoints progress (phase, triangle frontier, tagged-lattice
///     antichains) atomically alongside;
///   - on completion writes result.json atomically and marks the
///     checkpoint "complete".
/// Kill this process at any instruction and re-run: the result is
/// bit-identical, with strictly fewer model calls.
JobOutcome RunDurableExplain(const JobSpec& spec, const std::string& job_dir,
                             const DurableRunOptions& options);

/// Serve-loop configuration.
struct JobRunnerOptions {
  /// Job dirs are created under here.
  std::string job_root = "jobs";
  /// Prepended to auto-assigned job ids ("job-0001" → "w2-job-0001").
  /// Fleet workers set their slot prefix so ids stay unique across the
  /// whole fleet even though every worker numbers from 1.
  std::string job_id_prefix;
  /// Bounded admission queue; a full queue sheds new jobs with a clear
  /// rejection instead of degrading the ones already running.
  size_t queue_capacity = 8;
  int workers = 1;
  int checkpoint_every = 256;
  /// Default whole-job deadline applied to specs without one; 0 = none.
  long long default_deadline_ms = 0;
  /// Park a running job with no heartbeat for this long; 0 = off.
  long long stall_timeout_ms = 0;
  /// Watchdog poll period.
  long long watchdog_poll_ms = 20;
  /// Observability (not owned; nullptr = uninstrumented). The runner
  /// keeps the service.* gauges/counters/histograms live and passes the
  /// same registry/recorder down to every durable run.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceRecorder* trace = nullptr;
  /// Write a JSON metrics snapshot to `stats_path` after every N
  /// terminal job outcomes (plus a final dump on Shutdown); 0 = only
  /// the final dump. Requires both `metrics` and a non-empty path.
  int stats_every = 0;
  std::string stats_path;
  /// Directory of the cross-job score store; empty = no store. The
  /// runner opens it once, shares it across workers (the store is
  /// internally locked), and closes it (final sync) on Shutdown.
  std::string store_dir;
  /// Hold a flock DirLock on store_dir for the runner's lifetime (the
  /// serve paths set this so two serve processes can never attach the
  /// same store namespace; see persist::DirLock). In shared-stream
  /// mode the lock covers only this runner's stream (".lock-w<slot>"),
  /// so fleet siblings coexist in one directory.
  bool store_exclusive_lock = false;
  /// >= 0 opens the store in shared-stream mode with this stream slot
  /// (fleet workers pass their worker slot): the runner appends only
  /// to its own segment stream and absorbs sibling streams read-only,
  /// at job start and on the checkpoint/sync cadence. -1 = the store
  /// directory is this runner's single-writer namespace.
  int store_stream_slot = -1;
  /// Forwarded to every durable run (see DurableRunOptions).
  bool use_candidate_index = true;
  /// Forwarded to every durable run (see DurableRunOptions): streaming
  /// deployments point this at StreamCoordinator::ProvideDataset so
  /// jobs explain against the live overlays.
  std::function<bool(const api::ExplainRequest&, data::Dataset*,
                     std::string*)>
      dataset_provider;
  /// Progress/terminal event hooks (the network front-end's feed).
  /// Both are invoked from worker threads — on_progress from inside a
  /// running job, on_terminal after its outcome is recorded (never
  /// under the runner's lock) — so sinks must be thread-safe.
  std::function<void(const std::string& job_id,
                     const core::ExplainProgress& progress)>
      on_progress;
  std::function<void(const JobOutcome& outcome)> on_terminal;
};

/// Where one job currently is, as seen by JobRunner::Query.
enum class JobQueryState {
  /// Never submitted to this runner (or id unknown).
  kUnknown = 0,
  kQueued = 1,
  kRunning = 2,
  /// Terminal states mirror JobState; Query carries the outcome.
  kComplete = 3,
  kParked = 4,
  kFailed = 5,
};

std::string JobQueryStateName(JobQueryState state);

/// Bounded-queue job service: admission control in front, durable
/// worker runs in the middle, a watchdog on the side. Overload policy
/// (docs/OPERATIONS.md): reject new work first; a job that was admitted
/// either completes or parks with a resumable checkpoint — no admitted
/// job is ever silently lost.
class JobRunner {
 public:
  /// Machine-readable admission verdict (the wire protocol maps these
  /// to stable error codes; `reason` stays the human-readable text).
  enum class RejectCode {
    kNone = 0,
    kClosed = 1,
    kQueueFull = 2,
    kDeadline = 3,
  };

  struct SubmitResult {
    bool accepted = false;
    std::string job_id;
    /// Why admission refused ("admission closed", "queue full ...",
    /// "deadline unmeetable ...").
    std::string reason;
    RejectCode reject_code = RejectCode::kNone;
  };

  struct Counters {
    long long submitted = 0;
    long long accepted = 0;
    long long rejected_closed = 0;
    long long rejected_queue_full = 0;
    long long rejected_deadline = 0;
    long long completed = 0;
    long long parked = 0;
    long long failed = 0;
  };

  explicit JobRunner(JobRunnerOptions options);
  /// Graceful: equivalent to Shutdown(/*drain=*/true).
  ~JobRunner();

  JobRunner(const JobRunner&) = delete;
  JobRunner& operator=(const JobRunner&) = delete;

  /// Admission control; never blocks. Accepted specs are queued and
  /// will run to completion or a resumable park.
  SubmitResult Submit(JobSpec spec);

  /// Stops admission. drain=true lets queued + running jobs finish;
  /// drain=false cancels running jobs (they park with flushed state)
  /// and fails queued ones back as parked-in-queue outcomes. Joins all
  /// threads; idempotent.
  void Shutdown(bool drain);

  /// Blocks until every accepted job has a terminal outcome (admission
  /// stays open).
  void Wait();

  /// Point-in-time lookup of one job by id. For terminal states
  /// *outcome (optional) receives the recorded outcome.
  JobQueryState Query(const std::string& job_id,
                      JobOutcome* outcome = nullptr) const;

  /// Cooperative cancel: a queued job is removed and parked with a
  /// spec-only resumable checkpoint; a running job is flagged and
  /// parks at its next poll point (journal + checkpoint flushed).
  /// False (with *reason) for unknown or already-terminal jobs.
  bool Cancel(const std::string& job_id, std::string* reason);

  Counters counters() const;
  /// Terminal outcomes so far, in completion order.
  std::vector<JobOutcome> outcomes() const;

  /// Sweeps `partition_root` for job dirs whose checkpoint is not
  /// "complete" and enqueues each for a resume run *in place* (the job
  /// keeps its original directory, so its journal and checkpoint are
  /// reused and the result lands where the original submitter will look
  /// for it). Bypasses queue capacity — adopted jobs were already
  /// admitted once, by a worker that since died; re-shedding them would
  /// break the admitted-jobs-complete-or-park invariant. Jobs already
  /// queued or running under the same id are skipped. Returns the
  /// number adopted. This is both the fleet master's orphan-adoption
  /// path and a restarted worker's own-partition resume sweep.
  int AdoptParked(const std::string& partition_root,
                  std::vector<std::string>* adopted_ids = nullptr);

  /// The cross-job score store (null when options_.store_dir is empty
  /// or the directory could not be opened).
  const persist::ScoreStore* store() const { return store_.get(); }

  /// Absorbs sibling score streams now (no-op without a shared store).
  /// The scoring engine refreshes on its own periodic cadence; read
  /// paths (result/match fetches) call this so a reader never waits a
  /// full cadence for scores a sibling already published. Thread-safe.
  void RefreshStorePeers();

 private:
  struct QueuedJob {
    JobSpec spec;
    int64_t enqueued_micros = 0;
    /// Non-empty for adopted jobs: run in this existing directory
    /// instead of options_.job_root + "/" + id (the adopted dir lives
    /// in a dead worker's partition).
    std::string job_dir;
  };

  /// Watchdog view of one in-flight job.
  struct RunningJob {
    std::string id;
    std::atomic<bool> cancel{false};
    std::atomic<int64_t> last_heartbeat_micros{0};
    int64_t started_micros = 0;
    long long deadline_ms = 0;
  };

  void WorkerLoop();
  void WatchdogLoop();
  int64_t NowMicros() const;
  /// Writes a metrics snapshot to options_.stats_path (no-op without a
  /// registry or path). Called outside mutex_ — ToJson locks only the
  /// registry.
  void DumpStats();

  /// Registry handles, resolved once in the constructor (all null when
  /// options_.metrics is null).
  struct MetricHandles {
    obs::Gauge* queue_depth = nullptr;
    obs::Gauge* running = nullptr;
    obs::Counter* submitted = nullptr;
    obs::Counter* accepted = nullptr;
    obs::Counter* rejected_closed = nullptr;
    obs::Counter* rejected_queue_full = nullptr;
    obs::Counter* rejected_deadline = nullptr;
    obs::Counter* completed = nullptr;
    obs::Counter* parked = nullptr;
    obs::Counter* failed = nullptr;
    obs::Histogram* job_us = nullptr;
  };

  JobRunnerOptions options_;
  MetricHandles metric_;
  /// Cross-job score store shared by every worker; see
  /// JobRunnerOptions::store_dir.
  std::unique_ptr<persist::ScoreStore> store_;
  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<QueuedJob> queue_;
  std::vector<std::shared_ptr<RunningJob>> running_;
  std::vector<JobOutcome> outcomes_;
  Counters counters_;
  bool closed_ = false;
  bool cancel_running_ = false;
  bool stop_ = false;
  int next_job_number_ = 1;
  /// EMA of completed-job wall time, for deadline-aware admission.
  double ema_job_micros_ = 0.0;
  std::vector<std::thread> workers_;
  std::thread watchdog_;
};

}  // namespace certa::service

#endif  // CERTA_SERVICE_JOB_RUNNER_H_
