#include "service/stream_coordinator.h"

#include <dirent.h>
#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "data/benchmarks.h"
#include "data/csv.h"
#include "util/atomic_file.h"
#include "util/clock.h"
#include "util/crc32.h"
#include "util/json_parser.h"
#include "util/json_writer.h"

namespace certa::service {
namespace {

constexpr char kWalHeader[] = "CERTASTREAM v1\n";
constexpr size_t kWalHeaderLen = sizeof(kWalHeader) - 1;
constexpr char kCheckpointMagic[] = "CERTASTRCKPT v1 ";

std::string HexCrc(uint32_t crc) {
  char buffer[9];
  std::snprintf(buffer, sizeof(buffer), "%08x", crc);
  return std::string(buffer, 8);
}

bool ParseHexCrc(std::string_view text, uint32_t* crc) {
  if (text.size() != 8) return false;
  uint32_t value = 0;
  for (char c : text) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return false;
    }
    value = (value << 4) | static_cast<uint32_t>(digit);
  }
  *crc = value;
  return true;
}

void WriteRecordFields(JsonWriter* writer,
                       const std::string& dataset,
                       const std::string& data_dir, int side, int id) {
  writer->Key("dataset");
  writer->String(dataset);
  writer->Key("data_dir");
  writer->String(data_dir);
  writer->Key("side");
  writer->Int(side);
  writer->Key("id");
  writer->Int(id);
}

bool ReadStringField(const JsonValue& object, const char* key,
                     std::string* out) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr || !value->is_string()) return false;
  *out = value->string_value();
  return true;
}

bool ReadIntField(const JsonValue& object, const char* key,
                  long long* out) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr || !value->is_integer()) return false;
  *out = value->int_value();
  return true;
}

}  // namespace

StreamCoordinator::~StreamCoordinator() { Close(); }

std::string StreamCoordinator::WalFileName(int slot) {
  return "ops-w" + std::to_string(slot) + ".wal";
}

std::string StreamCoordinator::CheckpointFileName(int slot) {
  return "state-w" + std::to_string(slot) + ".ckpt";
}

std::string StreamCoordinator::DatasetKey(const std::string& dataset,
                                          const std::string& data_dir) {
  return dataset + '\x1f' + data_dir;
}

std::string StreamCoordinator::RecordKey(const std::string& dataset,
                                         const std::string& data_dir,
                                         int side, int id) {
  return dataset + '\x1f' + data_dir + '\x1f' + std::to_string(side) +
         '\x1f' + std::to_string(id);
}

int64_t StreamCoordinator::NowMs() const {
  return util::RealClock()->NowMicros() / 1000;
}

bool StreamCoordinator::Open(const Options& options, std::string* error) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ >= 0) {
    if (error != nullptr) *error = "stream coordinator already open";
    return false;
  }
  options_ = options;
  if (options_.slot < 0) options_.slot = 0;
  if (options_.checkpoint_every < 1) options_.checkpoint_every = 1;
  if (!util::EnsureDirectory(options_.dir)) {
    if (error != nullptr) {
      *error = "cannot create stream directory " + options_.dir;
    }
    return false;
  }
  if (options_.metrics != nullptr) {
    metric_ops_ = options_.metrics->counter("stream_ops_applied");
    metric_absorbed_ = options_.metrics->counter("stream_ops_absorbed");
    metric_invalidations_ =
        options_.metrics->counter("stream_invalidations");
    metric_checkpoints_ = options_.metrics->counter("stream_checkpoints");
  }

  // 1. Derived state from the last atomic checkpoint, when it is valid.
  //    A missing or corrupt checkpoint just means replaying every
  //    stream from its header — slower, never wrong.
  std::string checkpoint_error;
  LoadCheckpointLocked(&checkpoint_error);

  // 2. The own stream is the only file this worker may write: truncate
  //    a torn (never fsync'd) tail so the append point is clean.
  if (!RecoverOwnWalLocked(error)) return false;

  // 3. Replay the own tail, then absorb every sibling tail, so the
  //    in-memory overlays reflect everything durable in the directory.
  const std::string own_path =
      options_.dir + "/" + WalFileName(options_.slot);
  std::vector<Invalidation> ignored;
  const long long absorbed_before = stats_.ops_absorbed;
  AbsorbFileLocked(own_path, &offsets_[WalFileName(options_.slot)],
                   &ignored);
  stats_.replayed_ops += stats_.ops_absorbed - absorbed_before;
  stats_.ops_absorbed = absorbed_before;
  AbsorbPeersLocked();

  // 4. Staleness is derived, never persisted: re-judge every
  //    registered job against the recovered record versions.
  for (auto it = deps_.begin(); it != deps_.end(); ++it) {
    RecomputeJobStalenessLocked(it->first);
  }

  fd_ = ::open(own_path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd_ < 0) {
    if (error != nullptr) {
      *error = "cannot open stream wal " + own_path + " for append: " +
               std::strerror(errno);
    }
    return false;
  }
  last_absorb_ms_ = NowMs();
  return true;
}

void StreamCoordinator::Close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) return;
  WriteCheckpointLocked();
  ::close(fd_);
  fd_ = -1;
}

StreamCoordinator::Overlay* StreamCoordinator::GetOverlayLocked(
    const std::string& dataset, const std::string& data_dir,
    std::string* error) {
  const std::string key = DatasetKey(dataset, data_dir);
  auto it = overlays_.find(key);
  if (it != overlays_.end()) return &it->second;
  data::Dataset base;
  if (!data_dir.empty()) {
    if (!data::LoadDatasetDirectory(data_dir, dataset, &base)) {
      if (error != nullptr) {
        *error = "cannot load dataset directory " + data_dir;
      }
      return nullptr;
    }
  } else {
    const std::vector<std::string>& codes = data::BenchmarkCodes();
    if (std::find(codes.begin(), codes.end(), dataset) == codes.end()) {
      if (error != nullptr) *error = "unknown benchmark code " + dataset;
      return nullptr;
    }
    base = data::MakeBenchmark(dataset);
  }
  Overlay& overlay = overlays_[key];
  overlay.dataset = dataset;
  overlay.data_dir = data_dir;
  overlay.sides[0] = data::MutableTable(base.left);
  overlay.sides[1] = data::MutableTable(base.right);
  overlay.base_rows[0] = base.left.size();
  overlay.base_rows[1] = base.right.size();
  overlay.base = std::move(base);
  return &overlay;
}

std::string StreamCoordinator::SerializeOp(const StreamOp& op) {
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("op");
  switch (op.kind) {
    case StreamOp::Kind::kUpsert:
      writer.String("upsert");
      break;
    case StreamOp::Kind::kRemove:
      writer.String("remove");
      break;
    case StreamOp::Kind::kDeps:
      writer.String("deps");
      break;
  }
  writer.Key("seq");
  writer.Int(static_cast<long long>(op.seq));
  writer.Key("slot");
  writer.Int(op.slot);
  if (op.kind == StreamOp::Kind::kDeps) {
    writer.Key("job_id");
    writer.String(op.job_id);
    writer.Key("snapshot");
    writer.Int(static_cast<long long>(op.snapshot));
    writer.Key("records");
    writer.BeginArray();
    for (const StreamOp::DepRecord& dep : op.dep_records) {
      writer.BeginObject();
      WriteRecordFields(&writer, dep.dataset, dep.data_dir, dep.side,
                        dep.id);
      writer.EndObject();
    }
    writer.EndArray();
  } else {
    WriteRecordFields(&writer, op.dataset, op.data_dir, op.side,
                      op.record.id);
    if (op.kind == StreamOp::Kind::kUpsert) {
      writer.Key("values");
      writer.BeginArray();
      for (const std::string& value : op.record.values) {
        writer.String(value);
      }
      writer.EndArray();
    }
  }
  writer.EndObject();
  return writer.str();
}

bool StreamCoordinator::ParseOp(std::string_view json, StreamOp* op) {
  JsonValue value;
  std::string error;
  if (!JsonValue::Parse(json, &value, &error) || !value.is_object()) {
    return false;
  }
  std::string kind;
  if (!ReadStringField(value, "op", &kind)) return false;
  long long seq = 0;
  long long slot = 0;
  if (!ReadIntField(value, "seq", &seq) ||
      !ReadIntField(value, "slot", &slot) || seq < 0 || slot < 0) {
    return false;
  }
  op->seq = static_cast<uint64_t>(seq);
  op->slot = static_cast<int>(slot);
  if (kind == "deps") {
    op->kind = StreamOp::Kind::kDeps;
    long long snapshot = 0;
    if (!ReadStringField(value, "job_id", &op->job_id) ||
        !ReadIntField(value, "snapshot", &snapshot)) {
      return false;
    }
    op->snapshot = static_cast<uint64_t>(snapshot);
    const JsonValue* records = value.Find("records");
    if (records == nullptr || !records->is_array()) return false;
    op->dep_records.clear();
    for (const JsonValue& entry : records->array_items()) {
      if (!entry.is_object()) return false;
      StreamOp::DepRecord dep;
      long long side = 0;
      long long id = 0;
      if (!ReadStringField(entry, "dataset", &dep.dataset) ||
          !ReadStringField(entry, "data_dir", &dep.data_dir) ||
          !ReadIntField(entry, "side", &side) ||
          !ReadIntField(entry, "id", &id)) {
        return false;
      }
      dep.side = static_cast<int>(side);
      dep.id = static_cast<int>(id);
      op->dep_records.push_back(std::move(dep));
    }
    return true;
  }
  if (kind == "upsert") {
    op->kind = StreamOp::Kind::kUpsert;
  } else if (kind == "remove") {
    op->kind = StreamOp::Kind::kRemove;
  } else {
    return false;
  }
  long long side = 0;
  long long id = 0;
  if (!ReadStringField(value, "dataset", &op->dataset) ||
      !ReadStringField(value, "data_dir", &op->data_dir) ||
      !ReadIntField(value, "side", &side) ||
      !ReadIntField(value, "id", &id) || side < 0 || side > 1) {
    return false;
  }
  op->side = static_cast<int>(side);
  op->record.id = static_cast<int>(id);
  op->record.values.clear();
  if (op->kind == StreamOp::Kind::kUpsert) {
    const JsonValue* values = value.Find("values");
    if (values == nullptr || !values->is_array()) return false;
    for (const JsonValue& entry : values->array_items()) {
      if (!entry.is_string()) return false;
      op->record.values.push_back(entry.string_value());
    }
  }
  return true;
}

bool StreamCoordinator::AppendOpLocked(const StreamOp& op,
                                       std::string* error) {
  const std::string json = SerializeOp(op);
  const std::string line = HexCrc(util::Crc32(json)) + " " + json + "\n";
  size_t written = 0;
  while (written < line.size()) {
    const ssize_t n =
        ::write(fd_, line.data() + written, line.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) {
        *error = std::string("stream wal write failed: ") +
                 std::strerror(errno);
      }
      return false;
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd_) != 0) {
    if (error != nullptr) {
      *error =
          std::string("stream wal fsync failed: ") + std::strerror(errno);
    }
    return false;
  }
  // The own stream's absorbed offset tracks the bytes this process has
  // already applied, so re-opening after a clean run replays nothing.
  offsets_[WalFileName(options_.slot)] += line.size();
  return true;
}

void StreamCoordinator::MarkWatchersStaleLocked(
    const StreamOp& op, std::vector<Invalidation>* invalidated) {
  const std::string key =
      RecordKey(op.dataset, op.data_dir, op.side, op.record.id);
  auto it = watchers_.find(key);
  if (it == watchers_.end()) return;
  for (const std::string& job_id : it->second) {
    // Application-order rule: any state-changing op that lands on a
    // watched record after the job registered makes the job stale.
    // Deliberately conservative — a replayed op the materialization
    // already included can re-flag the job after a crash, costing one
    // redundant recompute over identical data (same bytes out), never
    // a silently-stale answer. Open()'s final version-compare pass
    // clears those false positives when the record versions prove the
    // snapshot already covered them.
    if (stale_.insert(job_id).second) {
      ++stats_.invalidations;
      if (metric_invalidations_ != nullptr) {
        metric_invalidations_->Increment();
      }
      if (invalidated != nullptr) {
        invalidated->push_back(Invalidation{job_id, op.dataset, op.side,
                                            op.record.id});
      }
    }
  }
}

void StreamCoordinator::RecomputeJobStalenessLocked(
    const std::string& job_id) {
  auto it = deps_.find(job_id);
  if (it == deps_.end()) {
    stale_.erase(job_id);
    return;
  }
  bool stale = false;
  for (const StreamOp::DepRecord& dep : it->second.records) {
    auto mod = mods_.find(
        RecordKey(dep.dataset, dep.data_dir, dep.side, dep.id));
    if (mod != mods_.end() && mod->second.Newer(it->second.version)) {
      stale = true;
      break;
    }
  }
  if (stale) {
    stale_.insert(job_id);
  } else {
    stale_.erase(job_id);
  }
}

bool StreamCoordinator::ApplyOpLocked(
    const StreamOp& op, Ack* ack, std::vector<Invalidation>* invalidated) {
  ++ops_since_checkpoint_;
  if (op.kind == StreamOp::Kind::kDeps) {
    Version version{op.seq, op.slot};
    auto it = deps_.find(op.job_id);
    if (it != deps_.end() && !version.Newer(it->second.version)) {
      return true;  // older registration — last writer wins
    }
    if (it != deps_.end()) {
      for (const StreamOp::DepRecord& dep : it->second.records) {
        auto watch = watchers_.find(
            RecordKey(dep.dataset, dep.data_dir, dep.side, dep.id));
        if (watch != watchers_.end()) {
          watch->second.erase(op.job_id);
          if (watch->second.empty()) watchers_.erase(watch);
        }
      }
    }
    JobDeps& deps = deps_[op.job_id];
    deps.version = version;
    deps.snapshot = op.snapshot;
    deps.records = op.dep_records;
    for (const StreamOp::DepRecord& dep : deps.records) {
      watchers_[RecordKey(dep.dataset, dep.data_dir, dep.side, dep.id)]
          .insert(op.job_id);
    }
    ++stats_.deps_registered;
    RecomputeJobStalenessLocked(op.job_id);
    return true;
  }

  const std::string record_key =
      RecordKey(op.dataset, op.data_dir, op.side, op.record.id);
  Version version{op.seq, op.slot};
  auto mod = mods_.find(record_key);
  if (mod != mods_.end() && !version.Newer(mod->second)) {
    // A newer op already decided this record — convergence over
    // absorption order is exactly this skip.
    if (ack != nullptr) {
      ack->seq = op.seq;
      ack->slot = op.slot;
      ack->row = -1;
    }
    return true;
  }
  std::string error;
  Overlay* overlay = GetOverlayLocked(op.dataset, op.data_dir, &error);
  if (overlay == nullptr) return false;
  mods_[record_key] = version;
  int row = -1;
  bool created = false;
  bool removed = false;
  if (op.kind == StreamOp::Kind::kUpsert) {
    row = overlay->sides[op.side].Upsert(op.record, &created, &error);
    if (row < 0) {
      // A malformed-but-durable op (schema changed underneath the
      // stream): keep the version so convergence holds, touch nothing.
      return false;
    }
    ++stats_.upserts;
  } else {
    removed = overlay->sides[op.side].Remove(op.record.id);
    ++stats_.removes;
  }
  ++stats_.ops_applied;
  if (metric_ops_ != nullptr) metric_ops_->Increment();
  if (ack != nullptr) {
    ack->seq = op.seq;
    ack->slot = op.slot;
    ack->row = row;
    ack->created = created;
    ack->removed = removed;
  }
  MarkWatchersStaleLocked(op, invalidated);
  return true;
}

StreamCoordinator::OpStatus StreamCoordinator::Upsert(
    const std::string& dataset, const std::string& data_dir, int side,
    const data::Record& record, Ack* ack,
    std::vector<Invalidation>* invalidated, std::string* error) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) {
    if (error != nullptr) *error = "stream coordinator not open";
    return OpStatus::kIo;
  }
  if (side < 0 || side > 1) {
    if (error != nullptr) *error = "side must be 0 (left) or 1 (right)";
    return OpStatus::kBadRecord;
  }
  Overlay* overlay = GetOverlayLocked(dataset, data_dir, error);
  if (overlay == nullptr) return OpStatus::kUnknownDataset;
  if (record.id < 0) {
    if (error != nullptr) *error = "record id must be >= 0";
    return OpStatus::kBadRecord;
  }
  const data::Schema& schema = overlay->sides[side].schema();
  if (static_cast<int>(record.values.size()) != schema.size()) {
    if (error != nullptr) {
      *error = "record has " + std::to_string(record.values.size()) +
               " values; side " + std::to_string(side) + " schema wants " +
               std::to_string(schema.size());
    }
    return OpStatus::kBadRecord;
  }
  StreamOp op;
  op.kind = StreamOp::Kind::kUpsert;
  op.seq = ++clock_;
  op.slot = options_.slot;
  op.dataset = dataset;
  op.data_dir = data_dir;
  op.side = side;
  op.record = record;
  if (!AppendOpLocked(op, error)) return OpStatus::kIo;
  ApplyOpLocked(op, ack, invalidated);
  MaybeCheckpointLocked();
  return OpStatus::kOk;
}

StreamCoordinator::OpStatus StreamCoordinator::Remove(
    const std::string& dataset, const std::string& data_dir, int side,
    int record_id, Ack* ack, std::vector<Invalidation>* invalidated,
    std::string* error) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) {
    if (error != nullptr) *error = "stream coordinator not open";
    return OpStatus::kIo;
  }
  if (side < 0 || side > 1) {
    if (error != nullptr) *error = "side must be 0 (left) or 1 (right)";
    return OpStatus::kBadRecord;
  }
  if (record_id < 0) {
    if (error != nullptr) *error = "record id must be >= 0";
    return OpStatus::kBadRecord;
  }
  Overlay* overlay = GetOverlayLocked(dataset, data_dir, error);
  if (overlay == nullptr) return OpStatus::kUnknownDataset;
  (void)overlay;
  StreamOp op;
  op.kind = StreamOp::Kind::kRemove;
  op.seq = ++clock_;
  op.slot = options_.slot;
  op.dataset = dataset;
  op.data_dir = data_dir;
  op.side = side;
  op.record.id = record_id;
  if (!AppendOpLocked(op, error)) return OpStatus::kIo;
  ApplyOpLocked(op, ack, invalidated);
  MaybeCheckpointLocked();
  return OpStatus::kOk;
}

StreamCoordinator::OpStatus StreamCoordinator::Match(
    const std::string& dataset, const std::string& data_dir, int side,
    const std::vector<std::string>& probe_values, int k,
    std::vector<MatchCandidate>* candidates, std::string* error) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (side < 0 || side > 1) {
    if (error != nullptr) *error = "side must be 0 (left) or 1 (right)";
    return OpStatus::kBadRecord;
  }
  AbsorbPeersLocked();
  Overlay* overlay = GetOverlayLocked(dataset, data_dir, error);
  if (overlay == nullptr) return OpStatus::kUnknownDataset;
  const data::MutableTable& table = overlay->sides[side];
  if (static_cast<int>(probe_values.size()) > table.schema().size()) {
    if (error != nullptr) {
      *error = "probe has " + std::to_string(probe_values.size()) +
               " values; side " + std::to_string(side) + " schema wants at "
               "most " + std::to_string(table.schema().size());
    }
    return OpStatus::kBadRecord;
  }
  data::Record probe;
  probe.id = -1;
  probe.values = probe_values;
  // Short probes are fine: missing attributes contribute no tokens.
  probe.values.resize(static_cast<size_t>(table.schema().size()), "NaN");
  std::vector<data::MutableTable::MatchCandidate> ranked =
      table.TopK(probe, k < 0 ? 0 : k);
  // Re-rank on (overlap desc, id asc): record ids are stable across
  // the fleet while row numbers are per-worker, so this is the
  // convergent order once every sibling op is absorbed.
  std::sort(ranked.begin(), ranked.end(),
            [](const data::MutableTable::MatchCandidate& a,
               const data::MutableTable::MatchCandidate& b) {
              if (a.overlap != b.overlap) return a.overlap > b.overlap;
              return a.id < b.id;
            });
  candidates->clear();
  candidates->reserve(ranked.size());
  for (const data::MutableTable::MatchCandidate& entry : ranked) {
    MatchCandidate out;
    out.id = entry.id;
    out.overlap = entry.overlap;
    out.values = table.record(entry.row).values;
    candidates->push_back(std::move(out));
  }
  return OpStatus::kOk;
}

bool StreamCoordinator::ProvideDataset(const api::ExplainRequest& request,
                                       data::Dataset* dataset,
                                       std::string* error) {
  std::lock_guard<std::mutex> lock(mutex_);
  AbsorbPeersLocked();
  Overlay* overlay =
      GetOverlayLocked(request.dataset, request.data_dir, error);
  if (overlay == nullptr) return false;
  *dataset = overlay->base;
  dataset->left = overlay->sides[0].Materialize();
  dataset->right = overlay->sides[1].Materialize();
  if (fd_ < 0 || request.id.empty() || request.pair_index < 0 ||
      request.pair_index >= static_cast<int>(dataset->test.size())) {
    // Nothing to register (anonymous request or the runner will reject
    // the pair index anyway) — still serve the overlay view.
    return true;
  }
  const data::LabeledPair& pair =
      dataset->test[static_cast<size_t>(request.pair_index)];
  StreamOp op;
  op.kind = StreamOp::Kind::kDeps;
  op.seq = ++clock_;
  op.slot = options_.slot;
  op.job_id = request.id;
  op.snapshot = op.seq - 1;
  StreamOp::DepRecord left;
  left.dataset = request.dataset;
  left.data_dir = request.data_dir;
  left.side = 0;
  left.id = dataset->left.record(pair.left_index).id;
  StreamOp::DepRecord right;
  right.dataset = request.dataset;
  right.data_dir = request.data_dir;
  right.side = 1;
  right.id = dataset->right.record(pair.right_index).id;
  op.dep_records.push_back(std::move(left));
  op.dep_records.push_back(std::move(right));
  if (!AppendOpLocked(op, error)) return false;
  ApplyOpLocked(op, nullptr, nullptr);
  MaybeCheckpointLocked();
  return true;
}

bool StreamCoordinator::IsStale(const std::string& job_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stale_.count(job_id) != 0;
}

std::vector<std::string> StreamCoordinator::StaleJobs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<std::string>(stale_.begin(), stale_.end());
}

std::vector<StreamCoordinator::Invalidation>
StreamCoordinator::MaybeAbsorbPeers() {
  std::lock_guard<std::mutex> lock(mutex_);
  const int64_t now = NowMs();
  if (now - last_absorb_ms_ < options_.absorb_interval_ms) return {};
  return AbsorbPeersLocked();
}

std::vector<StreamCoordinator::Invalidation>
StreamCoordinator::AbsorbPeers() {
  std::lock_guard<std::mutex> lock(mutex_);
  return AbsorbPeersLocked();
}

std::vector<StreamCoordinator::Invalidation>
StreamCoordinator::AbsorbPeersLocked() {
  last_absorb_ms_ = NowMs();
  std::vector<Invalidation> invalidated;
  DIR* dir = ::opendir(options_.dir.c_str());
  if (dir == nullptr) return invalidated;
  const std::string own = WalFileName(options_.slot);
  std::vector<std::string> peers;
  while (struct dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name == own) continue;
    if (name.rfind("ops-w", 0) != 0) continue;
    if (name.size() < 5 || name.compare(name.size() - 4, 4, ".wal") != 0) {
      continue;
    }
    peers.push_back(name);
  }
  ::closedir(dir);
  std::sort(peers.begin(), peers.end());
  for (const std::string& name : peers) {
    const long long before = stats_.ops_absorbed;
    AbsorbFileLocked(options_.dir + "/" + name, &offsets_[name],
                     &invalidated);
    if (metric_absorbed_ != nullptr) {
      metric_absorbed_->Add(stats_.ops_absorbed - before);
    }
  }
  MaybeCheckpointLocked();
  return invalidated;
}

void StreamCoordinator::AbsorbFileLocked(
    const std::string& path, size_t* offset,
    std::vector<Invalidation>* invalidated) {
  std::string content;
  if (!util::ReadFileToString(path, &content)) return;
  if (*offset == 0) {
    if (content.size() < kWalHeaderLen ||
        content.compare(0, kWalHeaderLen, kWalHeader) != 0) {
      return;  // header not durable yet (or not a stream file)
    }
    *offset = kWalHeaderLen;
  }
  if (content.size() < *offset) return;  // should not happen; be safe
  size_t pos = *offset;
  while (pos < content.size()) {
    const size_t newline = content.find('\n', pos);
    if (newline == std::string::npos) break;  // incomplete tail line
    const std::string_view line(content.data() + pos, newline - pos);
    const size_t space = line.find(' ');
    uint32_t expected = 0;
    if (space == std::string_view::npos ||
        !ParseHexCrc(line.substr(0, space), &expected)) {
      break;  // torn or foreign bytes — the owner's problem, not ours
    }
    const std::string_view json = line.substr(space + 1);
    if (util::Crc32(json.data(), json.size()) != expected) break;
    StreamOp op;
    if (!ParseOp(json, &op)) break;
    if (op.seq > clock_) clock_ = op.seq;  // Lamport receive
    ApplyOpLocked(op, nullptr, invalidated);
    ++stats_.ops_absorbed;
    pos = newline + 1;
  }
  *offset = pos;
}

bool StreamCoordinator::RecoverOwnWalLocked(std::string* error) {
  const std::string path =
      options_.dir + "/" + WalFileName(options_.slot);
  std::string content;
  if (!util::ReadFileToString(path, &content)) {
    // Fresh stream: write the header durably before any op can land.
    if (!util::AtomicWriteFile(path, kWalHeader)) {
      if (error != nullptr) {
        *error = "cannot create stream wal " + path;
      }
      return false;
    }
    offsets_[WalFileName(options_.slot)] = kWalHeaderLen;
    return true;
  }
  size_t valid = 0;
  if (content.size() >= kWalHeaderLen &&
      content.compare(0, kWalHeaderLen, kWalHeader) == 0) {
    valid = kWalHeaderLen;
    while (valid < content.size()) {
      const size_t newline = content.find('\n', valid);
      if (newline == std::string::npos) break;
      const std::string_view line(content.data() + valid, newline - valid);
      const size_t space = line.find(' ');
      uint32_t expected = 0;
      if (space == std::string_view::npos ||
          !ParseHexCrc(line.substr(0, space), &expected)) {
        break;
      }
      const std::string_view json = line.substr(space + 1);
      if (util::Crc32(json.data(), json.size()) != expected) break;
      StreamOp op;
      if (!ParseOp(json, &op)) break;
      valid = newline + 1;
    }
  }
  if (valid < content.size()) {
    stats_.torn_bytes_dropped +=
        static_cast<long long>(content.size() - valid);
    if (valid == 0) {
      // Header itself is torn: rewrite the file from scratch.
      if (!util::AtomicWriteFile(path, kWalHeader)) {
        if (error != nullptr) {
          *error = "cannot rewrite stream wal " + path;
        }
        return false;
      }
      // Checkpoint state may describe ops from the vanished prefix;
      // distrust it entirely rather than mix epochs.
      overlays_.clear();
      mods_.clear();
      deps_.clear();
      watchers_.clear();
      stale_.clear();
      offsets_.clear();
      offsets_[WalFileName(options_.slot)] = kWalHeaderLen;
      clock_ = 0;
      return true;
    }
    const int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
    if (fd < 0 ||
        ::ftruncate(fd, static_cast<off_t>(valid)) != 0 ||
        ::fsync(fd) != 0) {
      if (fd >= 0) ::close(fd);
      if (error != nullptr) {
        *error = "cannot truncate torn stream wal tail in " + path;
      }
      return false;
    }
    ::close(fd);
  }
  size_t& own_offset = offsets_[WalFileName(options_.slot)];
  if (own_offset > valid) {
    // The checkpoint claims more of our stream than survived — it is
    // from a future that never became durable. Start derived state
    // over from the stream itself.
    overlays_.clear();
    mods_.clear();
    deps_.clear();
    watchers_.clear();
    stale_.clear();
    offsets_.clear();
    clock_ = 0;
    offsets_[WalFileName(options_.slot)] = kWalHeaderLen;
  } else if (own_offset == 0) {
    own_offset = kWalHeaderLen;
  }
  return true;
}

void StreamCoordinator::MaybeCheckpointLocked() {
  if (ops_since_checkpoint_ < options_.checkpoint_every) return;
  WriteCheckpointLocked();
}

bool StreamCoordinator::WriteCheckpointLocked() {
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("schema_version");
  writer.Int(api::kSchemaVersion);
  writer.Key("slot");
  writer.Int(options_.slot);
  writer.Key("clock");
  writer.Int(static_cast<long long>(clock_));
  writer.Key("offsets");
  writer.BeginObject();
  for (const auto& [name, offset] : offsets_) {
    writer.Key(name);
    writer.Int(static_cast<long long>(offset));
  }
  writer.EndObject();
  writer.Key("datasets");
  writer.BeginArray();
  for (const auto& [key, overlay] : overlays_) {
    writer.BeginObject();
    writer.Key("dataset");
    writer.String(overlay.dataset);
    writer.Key("data_dir");
    writer.String(overlay.data_dir);
    writer.Key("sides");
    writer.BeginArray();
    for (int side = 0; side < 2; ++side) {
      const data::MutableTable& table = overlay.sides[side];
      writer.BeginObject();
      // Diffs only, split by origin: mutated base rows rebuild in
      // place, appended rows rebuild in row order, so the recovered
      // table numbers every row exactly as the live one did.
      writer.Key("mutated");
      writer.BeginArray();
      for (int row = 0; row < overlay.base_rows[side]; ++row) {
        const data::Record& base_record =
            (side == 0 ? overlay.base.left : overlay.base.right)
                .record(row);
        const data::Record& record = table.record(row);
        if (record == base_record && table.alive(row)) continue;
        writer.BeginObject();
        writer.Key("id");
        writer.Int(record.id);
        writer.Key("alive");
        writer.Bool(table.alive(row));
        writer.Key("values");
        writer.BeginArray();
        for (const std::string& value : record.values) {
          writer.String(value);
        }
        writer.EndArray();
        writer.EndObject();
      }
      writer.EndArray();
      writer.Key("appended");
      writer.BeginArray();
      for (int row = overlay.base_rows[side]; row < table.size(); ++row) {
        const data::Record& record = table.record(row);
        writer.BeginObject();
        writer.Key("id");
        writer.Int(record.id);
        writer.Key("alive");
        writer.Bool(table.alive(row));
        writer.Key("values");
        writer.BeginArray();
        for (const std::string& value : record.values) {
          writer.String(value);
        }
        writer.EndArray();
        writer.EndObject();
      }
      writer.EndArray();
      writer.EndObject();
    }
    writer.EndArray();
    writer.EndObject();
  }
  writer.EndArray();
  writer.Key("mods");
  writer.BeginArray();
  for (const auto& [key, version] : mods_) {
    // Key parts round-trip structurally, not via the packed string.
    const size_t p1 = key.find('\x1f');
    const size_t p2 = key.find('\x1f', p1 + 1);
    const size_t p3 = key.find('\x1f', p2 + 1);
    writer.BeginObject();
    WriteRecordFields(&writer, key.substr(0, p1),
                      key.substr(p1 + 1, p2 - p1 - 1),
                      std::stoi(key.substr(p2 + 1, p3 - p2 - 1)),
                      std::stoi(key.substr(p3 + 1)));
    writer.Key("seq");
    writer.Int(static_cast<long long>(version.seq));
    writer.Key("vslot");
    writer.Int(version.slot);
    writer.EndObject();
  }
  writer.EndArray();
  writer.Key("deps");
  writer.BeginArray();
  for (const auto& [job_id, deps] : deps_) {
    writer.BeginObject();
    writer.Key("job_id");
    writer.String(job_id);
    writer.Key("seq");
    writer.Int(static_cast<long long>(deps.version.seq));
    writer.Key("vslot");
    writer.Int(deps.version.slot);
    writer.Key("snapshot");
    writer.Int(static_cast<long long>(deps.snapshot));
    writer.Key("records");
    writer.BeginArray();
    for (const StreamOp::DepRecord& dep : deps.records) {
      writer.BeginObject();
      WriteRecordFields(&writer, dep.dataset, dep.data_dir, dep.side,
                        dep.id);
      writer.EndObject();
    }
    writer.EndArray();
    writer.EndObject();
  }
  writer.EndArray();
  writer.EndObject();
  const std::string& payload = writer.str();
  const std::string content =
      kCheckpointMagic + HexCrc(util::Crc32(payload)) + "\n" + payload;
  const std::string path =
      options_.dir + "/" + CheckpointFileName(options_.slot);
  if (!util::AtomicWriteFile(path, content)) return false;
  ops_since_checkpoint_ = 0;
  ++stats_.checkpoints;
  if (metric_checkpoints_ != nullptr) metric_checkpoints_->Increment();
  return true;
}

bool StreamCoordinator::LoadCheckpointLocked(std::string* error) {
  const std::string path =
      options_.dir + "/" + CheckpointFileName(options_.slot);
  std::string content;
  if (!util::ReadFileToString(path, &content)) {
    if (error != nullptr) *error = "no checkpoint";
    return false;
  }
  const size_t magic_len = sizeof(kCheckpointMagic) - 1;
  if (content.size() < magic_len + 9 ||
      content.compare(0, magic_len, kCheckpointMagic) != 0 ||
      content[magic_len + 8] != '\n') {
    if (error != nullptr) *error = "checkpoint header malformed";
    return false;
  }
  uint32_t expected = 0;
  if (!ParseHexCrc(
          std::string_view(content.data() + magic_len, 8), &expected)) {
    if (error != nullptr) *error = "checkpoint crc malformed";
    return false;
  }
  const std::string_view payload(content.data() + magic_len + 9,
                                 content.size() - magic_len - 9);
  if (util::Crc32(payload.data(), payload.size()) != expected) {
    if (error != nullptr) *error = "checkpoint crc mismatch";
    return false;
  }
  JsonValue root;
  std::string parse_error;
  if (!JsonValue::Parse(payload, &root, &parse_error) ||
      !root.is_object()) {
    if (error != nullptr) *error = "checkpoint json invalid";
    return false;
  }
  long long clock = 0;
  if (!ReadIntField(root, "clock", &clock) || clock < 0) return false;
  const JsonValue* offsets = root.Find("offsets");
  const JsonValue* datasets = root.Find("datasets");
  const JsonValue* mods = root.Find("mods");
  const JsonValue* deps = root.Find("deps");
  if (offsets == nullptr || !offsets->is_object() || datasets == nullptr ||
      !datasets->is_array() || mods == nullptr || !mods->is_array() ||
      deps == nullptr || !deps->is_array()) {
    if (error != nullptr) *error = "checkpoint sections missing";
    return false;
  }
  clock_ = static_cast<uint64_t>(clock);
  for (const auto& [name, value] : offsets->object_items()) {
    if (value.is_integer() && value.int_value() >= 0) {
      offsets_[name] = static_cast<size_t>(value.int_value());
    }
  }
  for (const JsonValue& entry : datasets->array_items()) {
    if (!entry.is_object()) continue;
    std::string dataset;
    std::string data_dir;
    if (!ReadStringField(entry, "dataset", &dataset) ||
        !ReadStringField(entry, "data_dir", &data_dir)) {
      continue;
    }
    std::string overlay_error;
    Overlay* overlay = GetOverlayLocked(dataset, data_dir, &overlay_error);
    if (overlay == nullptr) continue;
    const JsonValue* sides = entry.Find("sides");
    if (sides == nullptr || !sides->is_array() ||
        sides->array_items().size() != 2) {
      continue;
    }
    for (int side = 0; side < 2; ++side) {
      const JsonValue& side_value = sides->array_items()[side];
      if (!side_value.is_object()) continue;
      for (const char* section : {"mutated", "appended"}) {
        const JsonValue* rows = side_value.Find(section);
        if (rows == nullptr || !rows->is_array()) continue;
        for (const JsonValue& row : rows->array_items()) {
          if (!row.is_object()) continue;
          long long id = 0;
          if (!ReadIntField(row, "id", &id)) continue;
          const JsonValue* alive = row.Find("alive");
          const JsonValue* values = row.Find("values");
          if (alive == nullptr || !alive->is_bool() || values == nullptr ||
              !values->is_array()) {
            continue;
          }
          data::Record record;
          record.id = static_cast<int>(id);
          for (const JsonValue& value : values->array_items()) {
            if (value.is_string()) {
              record.values.push_back(value.string_value());
            }
          }
          overlay->sides[side].Upsert(record);
          if (!alive->bool_value()) {
            overlay->sides[side].Remove(record.id);
          }
        }
      }
    }
  }
  for (const JsonValue& entry : mods->array_items()) {
    if (!entry.is_object()) continue;
    std::string dataset;
    std::string data_dir;
    long long side = 0;
    long long id = 0;
    long long seq = 0;
    long long vslot = 0;
    if (!ReadStringField(entry, "dataset", &dataset) ||
        !ReadStringField(entry, "data_dir", &data_dir) ||
        !ReadIntField(entry, "side", &side) ||
        !ReadIntField(entry, "id", &id) ||
        !ReadIntField(entry, "seq", &seq) ||
        !ReadIntField(entry, "vslot", &vslot)) {
      continue;
    }
    mods_[RecordKey(dataset, data_dir, static_cast<int>(side),
                    static_cast<int>(id))] =
        Version{static_cast<uint64_t>(seq), static_cast<int>(vslot)};
  }
  for (const JsonValue& entry : deps->array_items()) {
    if (!entry.is_object()) continue;
    std::string job_id;
    long long seq = 0;
    long long vslot = 0;
    long long snapshot = 0;
    if (!ReadStringField(entry, "job_id", &job_id) ||
        !ReadIntField(entry, "seq", &seq) ||
        !ReadIntField(entry, "vslot", &vslot) ||
        !ReadIntField(entry, "snapshot", &snapshot)) {
      continue;
    }
    const JsonValue* records = entry.Find("records");
    if (records == nullptr || !records->is_array()) continue;
    JobDeps& job = deps_[job_id];
    job.version = Version{static_cast<uint64_t>(seq),
                          static_cast<int>(vslot)};
    job.snapshot = static_cast<uint64_t>(snapshot);
    for (const JsonValue& record : records->array_items()) {
      if (!record.is_object()) continue;
      StreamOp::DepRecord dep;
      long long side = 0;
      long long id = 0;
      if (!ReadStringField(record, "dataset", &dep.dataset) ||
          !ReadStringField(record, "data_dir", &dep.data_dir) ||
          !ReadIntField(record, "side", &side) ||
          !ReadIntField(record, "id", &id)) {
        continue;
      }
      dep.side = static_cast<int>(side);
      dep.id = static_cast<int>(id);
      watchers_[RecordKey(dep.dataset, dep.data_dir, dep.side, dep.id)]
          .insert(job_id);
      job.records.push_back(std::move(dep));
    }
  }
  return true;
}

StreamCoordinator::Stats StreamCoordinator::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats = stats_;
  stats.clock = clock_;
  stats.datasets = static_cast<int>(overlays_.size());
  stats.stale_jobs = static_cast<int>(stale_.size());
  return stats;
}

std::string StreamCoordinator::StatsJson() const {
  const Stats s = stats();
  JsonWriter json;
  json.BeginObject();
  json.Key("slot");
  json.Int(options_.slot);
  json.Key("clock");
  json.Int(static_cast<long long>(s.clock));
  json.Key("ops_applied");
  json.Int(s.ops_applied);
  json.Key("ops_absorbed");
  json.Int(s.ops_absorbed);
  json.Key("upserts");
  json.Int(s.upserts);
  json.Key("removes");
  json.Int(s.removes);
  json.Key("deps_registered");
  json.Int(s.deps_registered);
  json.Key("invalidations");
  json.Int(s.invalidations);
  json.Key("checkpoints");
  json.Int(s.checkpoints);
  json.Key("torn_bytes_dropped");
  json.Int(s.torn_bytes_dropped);
  json.Key("replayed_ops");
  json.Int(s.replayed_ops);
  json.Key("datasets");
  json.Int(s.datasets);
  json.Key("stale_jobs");
  json.Int(s.stale_jobs);
  json.EndObject();
  return json.str();
}

}  // namespace certa::service
