#include "service/supervisor.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>

#include "persist/checkpoint.h"
#include "service/signals.h"
#include "util/json_parser.h"
#include "util/json_writer.h"

namespace certa::service {
namespace {

/// SIGCHLD self-pipe: the handler may only do async-signal-safe work,
/// so it writes one byte and the supervision loop reaps outside signal
/// context. Process-global — one Supervisor per process.
int g_sigchld_pipe[2] = {-1, -1};

void OnSigChld(int) {
  if (g_sigchld_pipe[1] >= 0) {
    char byte = 1;
    [[maybe_unused]] ssize_t n = write(g_sigchld_pipe[1], &byte, 1);
  }
}

bool SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// True when `partition_root` holds any job dir whose checkpoint is not
/// terminal-complete — i.e. resumable work a dead worker left behind.
bool PartitionHasUnfinishedJobs(const std::string& partition_root) {
  namespace fs = std::filesystem;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(partition_root, ec)) {
    if (ec) return false;
    if (!entry.is_directory(ec)) continue;
    persist::JobCheckpoint checkpoint;
    if (persist::LoadCheckpoint(
            persist::CheckpointPathInDir(entry.path().string()),
            &checkpoint) &&
        checkpoint.state != "complete" && checkpoint.state != "failed") {
      return true;
    }
  }
  return false;
}

}  // namespace

void SplitControlLines(
    std::string* buffer,
    const std::function<void(const std::string&)>& on_line) {
  size_t start = 0;
  size_t newline;
  while ((newline = buffer->find('\n', start)) != std::string::npos) {
    on_line(buffer->substr(start, newline - start));
    start = newline + 1;
  }
  if (start > 0) buffer->erase(0, start);
}

Supervisor::Supervisor(SupervisorOptions options)
    : options_(std::move(options)) {
  if (options_.workers < 1) options_.workers = 1;
}

Supervisor::~Supervisor() {
  if (listen_fd_ >= 0) close(listen_fd_);
  for (Slot& slot : slots_) {
    if (slot.control_fd >= 0) close(slot.control_fd);
  }
  for (int i = 0; i < 2; ++i) {
    if (g_sigchld_pipe[i] >= 0) {
      close(g_sigchld_pipe[i]);
      g_sigchld_pipe[i] = -1;
    }
  }
  signal(SIGCHLD, SIG_DFL);
}

int64_t Supervisor::NowMs() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string Supervisor::PartitionRoot(int slot) const {
  return options_.job_root + "/w" + std::to_string(slot);
}

bool Supervisor::SetupListenSocket(std::string* error) {
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    if (error) *error = "invalid listen address: " + options_.host;
    return false;
  }

  int one = 1;
  if (!options_.disable_reuse_port) {
    // SO_REUSEPORT mode: this socket binds but never listens — it only
    // pins the (possibly ephemeral) port so the fleet keeps its address
    // across worker deaths. Each worker binds its own listening socket
    // with SO_REUSEPORT and the kernel spreads accepts across them.
    int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd >= 0 &&
        setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) == 0 &&
        setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) == 0 &&
        bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      listen_fd_ = fd;
      reuse_port_mode_ = true;
    } else if (fd >= 0) {
      close(fd);
    }
  }
  if (listen_fd_ < 0) {
    // Fallback: one listening socket, bound and listened here, that
    // every worker inherits across fork() and accepts from directly.
    int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      if (error) *error = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      if (error)
        *error = "bind " + options_.host + ":" +
                 std::to_string(options_.port) + ": " + std::strerror(errno);
      close(fd);
      return false;
    }
    if (listen(fd, 128) != 0) {
      if (error) *error = std::string("listen: ") + std::strerror(errno);
      close(fd);
      return false;
    }
    listen_fd_ = fd;
    reuse_port_mode_ = false;
  }

  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                  &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = options_.port;
  }
  return true;
}

bool Supervisor::Start(WorkerMain worker_main, std::string* error) {
  worker_main_ = std::move(worker_main);
  if (!SetupListenSocket(error)) return false;

  if (pipe(g_sigchld_pipe) != 0) {
    if (error) *error = std::string("pipe: ") + std::strerror(errno);
    return false;
  }
  SetNonBlocking(g_sigchld_pipe[0]);
  SetNonBlocking(g_sigchld_pipe[1]);
  struct sigaction action = {};
  action.sa_handler = OnSigChld;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: interrupt the poll promptly
  sigaction(SIGCHLD, &action, nullptr);
  // A control-channel write can race a worker's death (SIGKILL lands
  // between two stats broadcasts, before the SIGCHLD is reaped); that
  // must surface as EPIPE on the write, not kill the supervisor.
  signal(SIGPIPE, SIG_IGN);
  InstallRollingRestartHandler();

  slots_.resize(static_cast<size_t>(options_.workers));
  for (int slot = 0; slot < options_.workers; ++slot) {
    if (!SpawnWorker(slot, error)) return false;
  }
  started_ = true;
  return true;
}

bool Supervisor::SpawnWorker(int slot, std::string* error) {
  int pair[2];
  if (socketpair(AF_UNIX, SOCK_STREAM, 0, pair) != 0) {
    if (error) *error = std::string("socketpair: ") + std::strerror(errno);
    return false;
  }
  std::fflush(stdout);
  std::fflush(stderr);
  pid_t pid = fork();
  if (pid < 0) {
    close(pair[0]);
    close(pair[1]);
    if (error) *error = std::string("fork: ") + std::strerror(errno);
    return false;
  }
  if (pid == 0) {
    // -- worker process --
    // Fork hygiene before any real work: restore SIGCHLD (the worker
    // has its own children to not-care about), ignore SIGHUP (rolling
    // restart is a master concept), and close every master-side fd so
    // EOF detection and flock release keep working.
    signal(SIGCHLD, SIG_DFL);
    signal(SIGHUP, SIG_IGN);
    for (int i = 0; i < 2; ++i) {
      if (g_sigchld_pipe[i] >= 0) close(g_sigchld_pipe[i]);
    }
    close(pair[0]);
    for (const Slot& other : slots_) {
      if (other.control_fd >= 0) close(other.control_fd);
    }
    for (int fd : options_.close_in_child) {
      if (fd >= 0) close(fd);
    }
    WorkerLaunch launch;
    launch.slot = slot;
    launch.master_pid = getppid();
    launch.partition_root = PartitionRoot(slot);
    // The store is deliberately NOT partitioned: every worker shares
    // one directory, each writing its own slot-named segment stream.
    launch.store_dir = options_.store_dir;
    // Shared for the same reason: one stream directory, one WAL writer
    // per slot, siblings absorb each other's acked record ops.
    launch.stream_dir = options_.stream_dir;
    launch.control_fd = pair[1];
    launch.listen_port = port_;
    if (reuse_port_mode_) {
      // The reservation socket is the master's; the worker binds its
      // own listener.
      if (listen_fd_ >= 0) close(listen_fd_);
      launch.inherited_listen_fd = -1;
    } else {
      launch.inherited_listen_fd = listen_fd_;
    }
    int code = 1;
    if (worker_main_) code = worker_main_(launch);
    std::fflush(nullptr);
    _exit(code & 0xff);
  }

  // -- master --
  close(pair[1]);
  SetNonBlocking(pair[0]);
  Slot& state = slots_[static_cast<size_t>(slot)];
  if (state.control_fd >= 0) close(state.control_fd);
  state.pid = pid;
  state.control_fd = pair[0];
  state.line_buffer.clear();
  state.ready = false;
  state.alive = true;
  state.crashed = false;
  state.spawned_ms = NowMs();
  state.respawn_at_ms = 0;
  state.term_sent = false;
  state.term_sent_ms = 0;
  std::printf("WORKER %d pid=%d\n", slot, static_cast<int>(pid));
  std::fflush(stdout);
  return true;
}

bool Supervisor::SendToWorker(int slot, const std::string& line) {
  const Slot& state = slots_[static_cast<size_t>(slot)];
  if (!state.alive || state.control_fd < 0) return false;
  std::string framed = line + "\n";
  // A worker that died mid-send (EPIPE — SIGPIPE is ignored) is reaped
  // on the next beat; callers that need delivery (ADOPT) retry on a
  // false return, a dropped FLEET refresh just waits for the next one.
  ssize_t n = write(state.control_fd, framed.data(), framed.size());
  return n == static_cast<ssize_t>(framed.size());
}

void Supervisor::ProcessControlLine(int slot, const std::string& line) {
  Slot& state = slots_[static_cast<size_t>(slot)];
  if (line.rfind("READY ", 0) == 0 || line == "READY") {
    state.ready = true;
    return;
  }
  if (line.rfind("STATS ", 0) == 0) {
    state.stats_json = line.substr(6);
    return;
  }
  // Unknown lines are ignored: the control protocol is ours on both
  // ends, so anything else is a version skew best tolerated silently.
}

void Supervisor::ReapExits() {
  for (;;) {
    int status = 0;
    pid_t pid = waitpid(-1, &status, WNOHANG);
    if (pid <= 0) break;
    for (size_t slot = 0; slot < slots_.size(); ++slot) {
      if (slots_[slot].alive && slots_[slot].pid == pid) {
        HandleExit(static_cast<int>(slot), status);
        break;
      }
    }
  }
}

void Supervisor::HandleExit(int slot, int status) {
  Slot& state = slots_[static_cast<size_t>(slot)];
  state.alive = false;
  if (state.control_fd >= 0) {
    // Drain any final STATS the worker flushed before exiting.
    char buffer[4096];
    ssize_t n;
    while ((n = read(state.control_fd, buffer, sizeof(buffer))) > 0) {
      state.line_buffer.append(buffer, static_cast<size_t>(n));
    }
    SplitControlLines(&state.line_buffer, [this, slot](
                                              const std::string& line) {
      ProcessControlLine(slot, line);
    });
    // Anything left is a line the worker died mid-write (e.g. SIGKILL
    // landed inside a STATS send). It is torn by definition — drop it
    // whole rather than let a truncated JSON fragment reach the
    // aggregate.
    state.line_buffer.clear();
    close(state.control_fd);
    state.control_fd = -1;
  }
  state.ready = false;

  const bool clean_exit = WIFEXITED(status);
  const int exit_code = clean_exit ? WEXITSTATUS(status) : -1;
  state.crashed = !clean_exit;
  state.final_exit_code = exit_code;

  if (draining_) {
    std::fprintf(stderr, "supervisor: worker %d (pid %d) exited %s during drain\n",
                 slot, static_cast<int>(state.pid),
                 clean_exit ? std::to_string(exit_code).c_str() : "on signal");
    return;
  }
  if (rolling_slot_ == slot && !rolling_respawning_) {
    // The rolling restart's planned drain: respawn immediately. The
    // exit code is irrelevant — parked jobs are resumed by the
    // replacement's startup sweep.
    std::string error;
    if (SpawnWorker(slot, &error)) {
      ++restarts_total_;
      rolling_respawning_ = true;
    } else {
      std::fprintf(stderr, "supervisor: rolling respawn of worker %d failed: %s\n",
                   slot, error.c_str());
      rolling_slot_ = -1;
    }
    return;
  }

  // Unexpected exit: crash, or a spontaneous clean/parked exit. Either
  // way the listener count just dropped — restart with backoff.
  const int64_t lifetime_ms = NowMs() - state.spawned_ms;
  state.crash_streak =
      lifetime_ms >= options_.stable_after_ms ? 1 : state.crash_streak + 1;
  std::fprintf(stderr,
               "supervisor: worker %d (pid %d) %s after %lldms (streak %d)\n",
               slot, static_cast<int>(state.pid),
               clean_exit ? ("exited " + std::to_string(exit_code)).c_str()
                          : "crashed",
               static_cast<long long>(lifetime_ms), state.crash_streak);

  int peers = 0;
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (static_cast<int>(i) != slot && !slots_[i].abandoned) ++peers;
  }
  if (state.crash_streak > options_.flap_limit && peers > 0) {
    // Flap cap: stop burning restarts on this slot; its partition's
    // unfinished jobs move to a live worker's resume sweep instead.
    state.abandoned = true;
    orphan_partitions_.push_back(PartitionRoot(slot));
    std::fprintf(stderr,
                 "supervisor: worker %d abandoned after %d fast crashes; "
                 "partition %s queued for adoption\n",
                 slot, state.crash_streak, PartitionRoot(slot).c_str());
    return;
  }
  int64_t backoff = options_.restart_backoff_initial_ms;
  for (int i = 1; i < state.crash_streak; ++i) {
    backoff = std::min<int64_t>(backoff * 2, options_.restart_backoff_max_ms);
  }
  state.respawn_at_ms = NowMs() + backoff;
}

void Supervisor::FireDueRespawns() {
  if (draining_) return;
  const int64_t now = NowMs();
  for (size_t slot = 0; slot < slots_.size(); ++slot) {
    Slot& state = slots_[slot];
    if (state.alive || state.abandoned || state.respawn_at_ms == 0) continue;
    if (now < state.respawn_at_ms) continue;
    std::string error;
    if (SpawnWorker(static_cast<int>(slot), &error)) {
      ++restarts_total_;
    } else {
      std::fprintf(stderr, "supervisor: respawn of worker %zu failed: %s\n",
                   slot, error.c_str());
      state.respawn_at_ms = now + options_.restart_backoff_max_ms;
    }
  }
}

void Supervisor::AssignOrphans() {
  if (orphan_partitions_.empty()) return;
  const int adopter = LiveWorkerForAdoption();
  if (adopter < 0) return;  // retry when a worker is READY again
  std::vector<std::string> undelivered;
  for (const std::string& partition : orphan_partitions_) {
    // Delivery is checked: the adopter can die between the liveness
    // check and the write, and a partition whose ADOPT was never read
    // would otherwise be stranded. Undelivered ones retry next beat.
    if (!SendToWorker(adopter, "ADOPT " + partition)) {
      undelivered.push_back(partition);
      continue;
    }
    ++partitions_adopted_;
    std::fprintf(stderr, "supervisor: partition %s adopted by worker %d\n",
                 partition.c_str(), adopter);
  }
  orphan_partitions_ = std::move(undelivered);
}

int Supervisor::LiveWorkerForAdoption() const {
  for (size_t slot = 0; slot < slots_.size(); ++slot) {
    if (slots_[slot].alive && slots_[slot].ready) {
      return static_cast<int>(slot);
    }
  }
  return -1;
}

void Supervisor::AdvanceRollingRestart() {
  if (draining_) return;
  if (rolling_slot_ < 0) {
    if (!ConsumeRollingRestartRequest()) return;
    // Find the first live slot to roll.
    rolling_slot_ = -1;
    for (size_t slot = 0; slot < slots_.size(); ++slot) {
      if (!slots_[slot].abandoned) {
        rolling_slot_ = static_cast<int>(slot);
        break;
      }
    }
    if (rolling_slot_ < 0) return;
    ++rolling_restarts_;
    rolling_respawning_ = false;
    std::fprintf(stderr, "supervisor: rolling restart started\n");
    Slot& state = slots_[static_cast<size_t>(rolling_slot_)];
    if (state.alive) {
      state.term_sent = true;
      state.term_sent_ms = NowMs();
      kill(state.pid, SIGTERM);
    } else {
      // Already down (mid-backoff): skip straight to the respawn.
      std::string error;
      if (SpawnWorker(rolling_slot_, &error)) {
        ++restarts_total_;
        rolling_respawning_ = true;
      } else {
        rolling_slot_ = -1;
      }
    }
    return;
  }
  if (!rolling_respawning_) return;  // waiting for the drain exit
  Slot& current = slots_[static_cast<size_t>(rolling_slot_)];
  if (!current.alive) return;  // respawn crashed; HandleExit rescheduled it
  if (!current.ready) return;  // replacement still starting up
  // Replacement serving: advance to the next slot (or finish).
  int next = -1;
  for (size_t slot = static_cast<size_t>(rolling_slot_) + 1;
       slot < slots_.size(); ++slot) {
    if (!slots_[slot].abandoned) {
      next = static_cast<int>(slot);
      break;
    }
  }
  if (next < 0) {
    rolling_slot_ = -1;
    std::fprintf(stderr, "supervisor: rolling restart complete\n");
    return;
  }
  rolling_slot_ = next;
  rolling_respawning_ = false;
  Slot& state = slots_[static_cast<size_t>(next)];
  if (state.alive) {
    state.term_sent = true;
    state.term_sent_ms = NowMs();
    kill(state.pid, SIGTERM);
  } else {
    std::string error;
    if (SpawnWorker(next, &error)) {
      ++restarts_total_;
      rolling_respawning_ = true;
    } else {
      rolling_slot_ = -1;
    }
  }
}

std::string Supervisor::AggregateFleetJson() const {
  // Sum every numeric field of each worker's latest "runner"/"server"
  // sections. Eventually consistent by design: each worker reports on
  // the stats cadence, so the aggregate trails per-worker truth by up
  // to one interval (documented in docs/SERVICE.md).
  std::map<std::string, long long> runner_sums;
  std::map<std::string, long long> server_sums;
  std::map<std::string, long long> store_sums;
  int workers_live = 0;
  int workers_ready = 0;
  const auto sum_section = [](const JsonValue& parsed, const char* section,
                              std::map<std::string, long long>* sums) {
    const JsonValue* object = parsed.Find(section);
    if (object == nullptr || !object->is_object()) return;
    for (const auto& [key, value] : object->object_items()) {
      if (value.is_number()) {
        (*sums)[key] +=
            value.is_integer() ? value.int_value()
                               : static_cast<long long>(value.number_value());
      }
    }
  };
  for (const Slot& slot : slots_) {
    if (slot.alive) ++workers_live;
    if (slot.alive && slot.ready) ++workers_ready;
    if (slot.stats_json.empty()) continue;
    JsonValue parsed;
    std::string parse_error;
    if (!JsonValue::Parse(slot.stats_json, &parsed, &parse_error)) continue;
    sum_section(parsed, "runner", &runner_sums);
    sum_section(parsed, "server", &server_sums);
    // Per-worker views of the one shared store: `hits`/`peer_hits`
    // sum meaningfully (each worker's lookups are disjoint traffic);
    // `entries` sums to fleet-wide bytes-in-memory, not unique keys.
    sum_section(parsed, "store", &store_sums);
  }
  JsonWriter json;
  json.BeginObject();
  json.Key("workers_configured");
  json.Int(options_.workers);
  json.Key("workers_live");
  json.Int(workers_live);
  json.Key("workers_ready");
  json.Int(workers_ready);
  json.Key("restarts");
  json.Int(restarts_total_);
  json.Key("partitions_adopted");
  json.Int(partitions_adopted_);
  json.Key("rolling_restarts");
  json.Int(rolling_restarts_);
  json.Key("runner");
  json.BeginObject();
  for (const auto& [key, value] : runner_sums) {
    json.Key(key);
    json.Int(value);
  }
  json.EndObject();
  json.Key("server");
  json.BeginObject();
  for (const auto& [key, value] : server_sums) {
    json.Key(key);
    json.Int(value);
  }
  json.EndObject();
  json.Key("store");
  json.BeginObject();
  for (const auto& [key, value] : store_sums) {
    json.Key(key);
    json.Int(value);
  }
  json.EndObject();
  json.EndObject();
  return json.str();
}

void Supervisor::BroadcastFleetStats() {
  const int64_t now = NowMs();
  if (now - last_broadcast_ms_ < options_.stats_interval_ms) return;
  last_broadcast_ms_ = now;
  const std::string aggregate = AggregateFleetJson();
  for (size_t slot = 0; slot < slots_.size(); ++slot) {
    if (slots_[slot].alive && slots_[slot].ready) {
      SendToWorker(static_cast<int>(slot), "FLEET " + aggregate);
    }
  }
}

void Supervisor::PollOnce(int timeout_ms) {
  std::vector<pollfd> fds;
  std::vector<int> fd_slots;
  fds.push_back({g_sigchld_pipe[0], POLLIN, 0});
  fd_slots.push_back(-1);
  for (size_t slot = 0; slot < slots_.size(); ++slot) {
    if (slots_[slot].alive && slots_[slot].control_fd >= 0) {
      fds.push_back({slots_[slot].control_fd, POLLIN, 0});
      fd_slots.push_back(static_cast<int>(slot));
    }
  }
  int ready = poll(fds.data(), fds.size(), timeout_ms);
  if (ready > 0) {
    if (fds[0].revents & POLLIN) {
      char drain[256];
      while (read(g_sigchld_pipe[0], drain, sizeof(drain)) > 0) {
      }
    }
    for (size_t i = 1; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      Slot& state = slots_[static_cast<size_t>(fd_slots[i])];
      if (state.control_fd < 0) continue;
      char buffer[4096];
      ssize_t n;
      while ((n = read(state.control_fd, buffer, sizeof(buffer))) > 0) {
        state.line_buffer.append(buffer, static_cast<size_t>(n));
      }
      const int line_slot = fd_slots[i];
      SplitControlLines(&state.line_buffer, [this, line_slot](
                                                const std::string& line) {
        ProcessControlLine(line_slot, line);
      });
      // EOF without exit is fine: the exit is reaped via SIGCHLD.
    }
  }
  // Reap unconditionally: a SIGCHLD that arrived before the handler was
  // polled, or EINTR races, must not strand a zombie.
  ReapExits();

  // Escalate drains that blew the grace window.
  const int64_t now = NowMs();
  for (Slot& state : slots_) {
    if (state.alive && state.term_sent &&
        now - state.term_sent_ms > options_.shutdown_grace_ms) {
      std::fprintf(stderr,
                   "supervisor: worker pid %d ignored SIGTERM for %lldms; "
                   "killing (its durable state stays resumable)\n",
                   static_cast<int>(state.pid),
                   static_cast<long long>(options_.shutdown_grace_ms));
      kill(state.pid, SIGKILL);
      state.term_sent_ms = now;  // one escalation per window
    }
  }

  FireDueRespawns();
  AssignOrphans();
  AdvanceRollingRestart();
  BroadcastFleetStats();
}

int Supervisor::Run() {
  if (!started_) return 1;

  // Phase 1: wait until every initial worker is READY before announcing
  // — a connect after LISTENING must reach a live listener.
  while (!ShutdownRequested() && !announced_) {
    bool all_ready = true;
    for (const Slot& slot : slots_) {
      if (!slot.abandoned && !(slot.alive && slot.ready)) all_ready = false;
    }
    if (all_ready) {
      std::printf("LISTENING %s:%d\n", options_.host.c_str(), port_);
      std::fflush(stdout);
      announced_ = true;
      break;
    }
    bool any_possible = false;
    for (const Slot& slot : slots_) {
      if (!slot.abandoned) any_possible = true;
    }
    if (!any_possible) {
      std::fprintf(stderr, "supervisor: every worker slot flapped out before READY\n");
      return 1;
    }
    PollOnce(static_cast<int>(options_.stats_interval_ms));
  }

  // Phase 2: supervise until a shutdown signal.
  while (!ShutdownRequested()) {
    PollOnce(static_cast<int>(options_.stats_interval_ms));
    bool any_possible = false;
    for (const Slot& slot : slots_) {
      if (!slot.abandoned) any_possible = true;
    }
    if (!any_possible) {
      std::fprintf(stderr, "supervisor: every worker slot flapped out; exiting\n");
      return 1;
    }
  }

  // Phase 3: fleet drain. SIGTERM every live worker (each parks its
  // running jobs resumably and exits), then wait for all of them.
  std::fprintf(stderr, "supervisor: drain started\n");
  draining_ = true;
  rolling_slot_ = -1;
  const int64_t drain_start = NowMs();
  for (Slot& state : slots_) {
    state.respawn_at_ms = 0;
    if (state.alive && !state.term_sent) {
      state.term_sent = true;
      state.term_sent_ms = drain_start;
      kill(state.pid, SIGTERM);
    }
  }
  for (;;) {
    bool any_alive = false;
    for (const Slot& slot : slots_) {
      if (slot.alive) any_alive = true;
    }
    if (!any_alive) break;
    PollOnce(50);
  }

  // Exit semantics: 3 iff any worker left parked (resumable) work —
  // either it said so (exit 3) or it died leaving non-complete
  // checkpoints in its partition. 1 for abnormal deaths with nothing
  // recoverable pending. 0 = everything fleet-wide completed.
  bool any_parked = false;
  bool any_abnormal = false;
  for (size_t slot = 0; slot < slots_.size(); ++slot) {
    const Slot& state = slots_[slot];
    if (state.final_exit_code == kInterruptedExitCode) any_parked = true;
    if (state.crashed ||
        (state.final_exit_code > 0 &&
         state.final_exit_code != kInterruptedExitCode)) {
      any_abnormal = true;
    }
    if ((state.crashed || state.abandoned) &&
        PartitionHasUnfinishedJobs(PartitionRoot(static_cast<int>(slot)))) {
      any_parked = true;
    }
  }
  for (const std::string& partition : orphan_partitions_) {
    if (PartitionHasUnfinishedJobs(partition)) any_parked = true;
  }
  std::fprintf(stderr,
               "supervisor: fleet drained (restarts=%lld adopted=%lld "
               "rolling=%lld)\n",
               restarts_total_, partitions_adopted_, rolling_restarts_);
  if (any_parked) return kInterruptedExitCode;
  if (any_abnormal) return 1;
  return 0;
}

// -- worker side --

WorkerControl::WorkerControl(int control_fd, long long stats_interval_ms)
    : fd_(control_fd), stats_interval_ms_(std::max(20LL, stats_interval_ms)) {}

WorkerControl::~WorkerControl() { Stop(); }

void WorkerControl::SendLine(const std::string& line) {
  if (fd_ < 0) return;
  std::string framed = line + "\n";
  size_t sent = 0;
  while (sent < framed.size()) {
    ssize_t n = write(fd_, framed.data() + sent, framed.size() - sent);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // master gone; EOF handling shuts the worker down
  }
}

void WorkerControl::SendReady(int listen_port) {
  SendLine("READY " + std::to_string(listen_port));
}

void WorkerControl::Start(Hooks hooks) {
  if (running_ || fd_ < 0) return;
  hooks_ = std::move(hooks);
  stop_.store(false);
  running_ = true;
  thread_ = std::thread([this] { ThreadMain(); });
}

void WorkerControl::Stop() {
  if (!running_) return;
  stop_.store(true);
  if (thread_.joinable()) thread_.join();
  running_ = false;
  // One last snapshot so the master's final aggregate includes this
  // worker's complete counters.
  if (hooks_.stats_provider) SendLine("STATS " + hooks_.stats_provider());
}

void WorkerControl::ThreadMain() {
  std::string buffer;
  auto last_stats = std::chrono::steady_clock::now();
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{fd_, POLLIN, 0};
    const int timeout =
        static_cast<int>(std::min<long long>(50, stats_interval_ms_));
    int ready = poll(&pfd, 1, timeout);
    if (ready > 0 && (pfd.revents & (POLLIN | POLLHUP | POLLERR))) {
      char chunk[4096];
      ssize_t n = read(fd_, chunk, sizeof(chunk));
      if (n > 0) {
        buffer.append(chunk, static_cast<size_t>(n));
        SplitControlLines(&buffer, [this](const std::string& line) {
          if (line.rfind("ADOPT ", 0) == 0) {
            if (hooks_.on_adopt) hooks_.on_adopt(line.substr(6));
          } else if (line.rfind("FLEET ", 0) == 0) {
            if (hooks_.on_fleet) hooks_.on_fleet(line.substr(6));
          }
        });
      } else if (n == 0 || (n < 0 && errno != EAGAIN && errno != EINTR &&
                            errno != EWOULDBLOCK)) {
        // Master died: a fleet worker must not outlive its supervisor
        // as an unsupervised orphan listener. Park and exit.
        std::fprintf(stderr,
                     "worker: control channel lost (supervisor gone); "
                     "parking and exiting\n");
        RequestShutdown();
        return;
      }
    }
    const auto now = std::chrono::steady_clock::now();
    if (std::chrono::duration_cast<std::chrono::milliseconds>(now - last_stats)
            .count() >= stats_interval_ms_) {
      last_stats = now;
      if (hooks_.stats_provider) SendLine("STATS " + hooks_.stats_provider());
    }
  }
}

}  // namespace certa::service
