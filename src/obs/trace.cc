#include "obs/trace.h"

#include "util/atomic_file.h"
#include "util/json_writer.h"

namespace certa::obs {

TraceRecorder::TraceRecorder(bool enabled)
    : enabled_(enabled), epoch_(std::chrono::steady_clock::now()) {}

int64_t TraceRecorder::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

int TraceRecorder::TidLocked(std::thread::id id) {
  auto [it, inserted] =
      tids_.emplace(id, static_cast<int>(tids_.size()) + 1);
  return it->second;
}

void TraceRecorder::RecordComplete(
    std::string_view name, int64_t start_micros, int64_t duration_micros,
    const std::vector<std::pair<std::string, long long>>& args) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  Event event;
  event.name = std::string(name);
  event.start_micros = start_micros;
  event.duration_micros = duration_micros;
  event.tid = TidLocked(std::this_thread::get_id());
  event.args = args;
  events_.push_back(std::move(event));
}

size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::string TraceRecorder::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonWriter json;
  json.BeginObject();
  json.Key("traceEvents");
  json.BeginArray();
  for (const Event& event : events_) {
    json.BeginObject();
    json.Key("name");
    json.String(event.name);
    json.Key("cat");
    json.String("certa");
    json.Key("ph");
    json.String("X");
    json.Key("ts");
    json.Int(event.start_micros);
    json.Key("dur");
    json.Int(event.duration_micros);
    json.Key("pid");
    json.Int(1);
    json.Key("tid");
    json.Int(event.tid);
    if (!event.args.empty()) {
      json.Key("args");
      json.BeginObject();
      for (const auto& [key, value] : event.args) {
        json.Key(key);
        json.Int(value);
      }
      json.EndObject();
    }
    json.EndObject();
  }
  json.EndArray();
  json.Key("displayTimeUnit");
  json.String("ms");
  json.EndObject();
  return json.str();
}

bool TraceRecorder::SaveToFile(const std::string& path) const {
  return util::AtomicWriteFile(path, ToJson() + "\n");
}

}  // namespace certa::obs
