#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "api/version.h"
#include "util/json_writer.h"

namespace certa::obs {

size_t ThreadShardSlot() {
  static std::atomic<size_t> next{0};
  thread_local size_t slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

Histogram::Histogram(const std::atomic<bool>* enabled,
                     std::vector<double> bounds)
    : enabled_(enabled), bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::vector<internal::ShardedCount>(bounds_.size() + 1);
}

void Histogram::Record(double value) {
  if (!enabled_->load(std::memory_order_relaxed)) return;
  if (!std::isfinite(value)) return;  // non-finite samples carry no signal
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  buckets_[bucket].Add(1);
  count_.Add(1);
  sum_micros_.Add(static_cast<long long>(value * 1e6));
  // Extremes are cold (one lock per new min/max, none once the range is
  // established for most workloads' steady state... but correctness
  // first: take the lock whenever this sample may extend the range).
  if (!has_extremes_.load(std::memory_order_acquire) ||
      value < min_.load(std::memory_order_relaxed) ||
      value > max_.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(extremes_mutex_);
    if (!has_extremes_.load(std::memory_order_relaxed)) {
      min_.store(value, std::memory_order_relaxed);
      max_.store(value, std::memory_order_relaxed);
      has_extremes_.store(true, std::memory_order_release);
    } else {
      if (value < min_.load(std::memory_order_relaxed)) {
        min_.store(value, std::memory_order_relaxed);
      }
      if (value > max_.load(std::memory_order_relaxed)) {
        max_.store(value, std::memory_order_relaxed);
      }
    }
  }
}

double Histogram::sum() const {
  return static_cast<double>(sum_micros_.value()) / 1e6;
}

double Histogram::min() const {
  return has_extremes_.load(std::memory_order_acquire)
             ? min_.load(std::memory_order_relaxed)
             : 0.0;
}

double Histogram::max() const {
  return has_extremes_.load(std::memory_order_acquire)
             ? max_.load(std::memory_order_relaxed)
             : 0.0;
}

double Histogram::Quantile(double q) const {
  const long long total = count_.value();
  if (total <= 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample (1-based), then walk the buckets.
  const double rank = q * static_cast<double>(total);
  long long seen = 0;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    const long long here = buckets_[b].value();
    if (here == 0) continue;
    if (static_cast<double>(seen + here) >= rank) {
      if (b == bounds_.size()) return max();  // overflow bucket
      const double hi = bounds_[b];
      const double lo = b == 0 ? std::min(min(), hi) : bounds_[b - 1];
      const double into =
          (rank - static_cast<double>(seen)) / static_cast<double>(here);
      return lo + (hi - lo) * std::clamp(into, 0.0, 1.0);
    }
    seen += here;
  }
  return max();
}

std::vector<double> ExponentialBuckets(double start, double factor,
                                       int count) {
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(std::max(0, count)));
  double bound = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

std::vector<double> LatencyBuckets() {
  return ExponentialBuckets(1.0, 2.0, 26);  // 1us .. ~33.5s
}

std::vector<double> SizeBuckets() {
  return ExponentialBuckets(1.0, 2.0, 17);  // 1 .. 65536
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>(&enabled_);
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>(&enabled_);
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  return histogram(name, LatencyBuckets());
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(&enabled_, std::move(bounds));
  return slot.get();
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonWriter json;
  json.BeginObject();

  json.Key("schema_version");
  json.Int(api::kSchemaVersion);

  json.Key("counters");
  json.BeginObject();
  for (const auto& [name, counter] : counters_) {
    json.Key(name);
    json.Int(counter->value());
  }
  json.EndObject();

  json.Key("gauges");
  json.BeginObject();
  for (const auto& [name, gauge] : gauges_) {
    json.Key(name);
    json.Int(gauge->value());
  }
  json.EndObject();

  json.Key("histograms");
  json.BeginObject();
  for (const auto& [name, histogram] : histograms_) {
    json.Key(name);
    json.BeginObject();
    json.Key("count");
    json.Int(histogram->count());
    json.Key("sum");
    json.Number(histogram->sum());
    json.Key("min");
    json.Number(histogram->min());
    json.Key("max");
    json.Number(histogram->max());
    json.Key("p50");
    json.Number(histogram->Quantile(0.50));
    json.Key("p95");
    json.Number(histogram->Quantile(0.95));
    json.Key("p99");
    json.Number(histogram->Quantile(0.99));
    json.Key("buckets");
    json.BeginArray();
    const std::vector<double>& bounds = histogram->bounds();
    for (size_t b = 0; b <= bounds.size(); ++b) {
      json.BeginObject();
      json.Key("le");
      if (b < bounds.size()) {
        json.Number(bounds[b]);
      } else {
        json.Null();  // unbounded overflow bucket
      }
      json.Key("count");
      json.Int(histogram->bucket_count(b));
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndObject();

  json.EndObject();
  return json.str();
}

}  // namespace certa::obs
