#ifndef CERTA_OBS_TRACE_H_
#define CERTA_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace certa::obs {

/// Records nested spans as Chrome `chrome://tracing` / Perfetto
/// "trace event" JSON (complete events, ph:"X"): load the written file
/// in https://ui.perfetto.dev or chrome://tracing to see where an
/// explanation's wall time goes, per thread.
///
/// Like MetricsRegistry, recording is observation-only (results are
/// bit-identical with tracing on or off) and disabled recording costs
/// one relaxed load + branch. Recording itself takes a mutex — spans
/// are coarse (phases, batches, jobs), so contention is negligible
/// next to the model calls they wrap.
class TraceRecorder {
 public:
  explicit TraceRecorder(bool enabled = true);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Microseconds since this recorder was created (span timestamps).
  int64_t NowMicros() const;

  /// Appends one complete event. `args` are integer-valued span
  /// arguments shown in the viewer's details pane. The calling thread's
  /// id is recorded as the event's tid.
  void RecordComplete(
      std::string_view name, int64_t start_micros, int64_t duration_micros,
      const std::vector<std::pair<std::string, long long>>& args = {});

  size_t event_count() const;

  /// {"traceEvents":[...],"displayTimeUnit":"ms"} — the format both
  /// Perfetto and chrome://tracing load directly.
  std::string ToJson() const;

  /// Atomically writes ToJson() to `path` (util::AtomicWriteFile).
  bool SaveToFile(const std::string& path) const;

 private:
  struct Event {
    std::string name;
    int64_t start_micros = 0;
    int64_t duration_micros = 0;
    int tid = 0;
    std::vector<std::pair<std::string, long long>> args;
  };

  /// Small stable per-thread id for the trace (assigned on first use,
  /// under mutex_).
  int TidLocked(std::thread::id id);

  std::atomic<bool> enabled_;
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<Event> events_;
  std::map<std::thread::id, int> tids_;
};

/// RAII span: times its scope and records one complete event on
/// destruction. A null recorder (or a disabled one) makes every method
/// a no-op, so call sites never branch.
class TraceSpan {
 public:
  TraceSpan(TraceRecorder* recorder, std::string_view name)
      : recorder_(Active(recorder)), name_(name) {
    if (recorder_ != nullptr) start_micros_ = recorder_->NowMicros();
  }
  ~TraceSpan() {
    if (recorder_ == nullptr) return;
    recorder_->RecordComplete(name_, start_micros_,
                              recorder_->NowMicros() - start_micros_, args_);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches an integer argument to the span (viewer details pane).
  void AddArg(std::string_view key, long long value) {
    if (recorder_ == nullptr) return;
    args_.emplace_back(std::string(key), value);
  }

 private:
  static TraceRecorder* Active(TraceRecorder* recorder) {
    return recorder != nullptr && recorder->enabled() ? recorder : nullptr;
  }

  TraceRecorder* recorder_;
  std::string name_;
  int64_t start_micros_ = 0;
  std::vector<std::pair<std::string, long long>> args_;
};

}  // namespace certa::obs

#endif  // CERTA_OBS_TRACE_H_
