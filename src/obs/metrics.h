#ifndef CERTA_OBS_METRICS_H_
#define CERTA_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace certa::obs {

/// Lock-cheap metrics for the explanation hot paths (see
/// docs/OBSERVABILITY.md for the metric catalog).
///
/// Design constraints, in order:
///   1. Recording must never change what is being measured: metrics are
///      write-only from the instrumented code's point of view, so a
///      CertaResult is bit-identical with metrics on or off.
///   2. Recording from pool workers must not serialize them: counters
///      and histogram buckets are sharded over cache-line-padded
///      atomics indexed by a per-thread slot, so concurrent increments
///      rarely touch the same line.
///   3. Disabled instrumentation must cost (almost) nothing: every
///      record call starts with one relaxed load of the registry's
///      enabled flag and a predicted branch.
///
/// Handles returned by MetricsRegistry are stable for the registry's
/// lifetime and safe to use from any thread.

/// Number of atomic slots each counter/bucket is spread over.
inline constexpr size_t kMetricShards = 8;

/// This thread's shard slot (stable per thread, assigned round-robin).
size_t ThreadShardSlot();

namespace internal {

/// One cache line per slot so concurrent writers do not false-share.
struct alignas(64) PaddedCount {
  std::atomic<long long> value{0};
};

/// A sharded monotonic count: Add() touches one slot, value() sums all.
class ShardedCount {
 public:
  void Add(long long delta) {
    shards_[ThreadShardSlot() % kMetricShards].value.fetch_add(
        delta, std::memory_order_relaxed);
  }
  long long value() const {
    long long total = 0;
    for (const PaddedCount& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  PaddedCount shards_[kMetricShards];
};

}  // namespace internal

/// Monotonic counter (events, bytes, calls).
class Counter {
 public:
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  void Increment() { Add(1); }
  void Add(long long delta) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    count_.Add(delta);
  }
  long long value() const { return count_.value(); }

 private:
  const std::atomic<bool>* enabled_;
  internal::ShardedCount count_;
};

/// Point-in-time value (queue depth, breaker state, budget remaining).
/// Last writer wins; Add is atomic.
class Gauge {
 public:
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  void Set(long long value) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(long long delta) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  long long value() const { return value_.load(std::memory_order_relaxed); }

 private:
  const std::atomic<bool>* enabled_;
  std::atomic<long long> value_{0};
};

/// Fixed-bucket latency/size histogram with p50/p95/p99 estimation.
/// Bucket upper bounds are set at registration; a value lands in the
/// first bucket whose bound is >= value, or the unbounded overflow
/// bucket. Quantiles interpolate linearly inside the chosen bucket
/// (the overflow bucket reports the observed maximum).
class Histogram {
 public:
  Histogram(const std::atomic<bool>* enabled, std::vector<double> bounds);

  void Record(double value);

  long long count() const { return count_.value(); }
  double sum() const;
  double min() const;
  double max() const;
  /// q in [0, 1]; 0 with no recorded samples.
  double Quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Samples in bucket `b` (b == bounds().size() is the overflow
  /// bucket).
  long long bucket_count(size_t b) const { return buckets_[b].value(); }

 private:
  const std::atomic<bool>* enabled_;
  std::vector<double> bounds_;
  /// bounds_.size() + 1 sharded buckets (last = overflow).
  std::vector<internal::ShardedCount> buckets_;
  internal::ShardedCount count_;
  /// Sum in micro-units to keep it a lock-free integer add; good to
  /// ~1e-6 absolute resolution, plenty for latencies and sizes.
  internal::ShardedCount sum_micros_;
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
  std::atomic<bool> has_extremes_{false};
  std::mutex extremes_mutex_;
};

/// Exponential bucket bounds: start, start*factor, ... (count bounds).
std::vector<double> ExponentialBuckets(double start, double factor,
                                       int count);
/// Default microsecond-latency bounds: 1us .. ~67s, factor 2.
std::vector<double> LatencyBuckets();
/// Default size bounds: 1 .. 65536, factor 2.
std::vector<double> SizeBuckets();

/// Named registry of counters/gauges/histograms. Handles are created on
/// first use and live as long as the registry; lookups take a mutex,
/// so resolve handles once (at construction time) on hot paths, not
/// per record.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(bool enabled = true) : enabled_(enabled) {}

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Master switch: while false every handle's record calls are no-ops.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  /// Registers with LatencyBuckets() when the name is new.
  Histogram* histogram(const std::string& name);
  /// Registers with explicit bounds when the name is new (an existing
  /// histogram keeps its original bounds).
  Histogram* histogram(const std::string& name, std::vector<double> bounds);

  /// JSON snapshot of every metric, names sorted:
  ///   {"counters":{...},"gauges":{...},
  ///    "histograms":{"name":{"count":..,"sum":..,"min":..,"max":..,
  ///                  "p50":..,"p95":..,"p99":..,
  ///                  "buckets":[{"le":1,"count":0},...,
  ///                             {"le":null,"count":0}]}}}
  /// The final bucket's "le" is null (unbounded overflow).
  std::string ToJson() const;

 private:
  std::atomic<bool> enabled_;
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace certa::obs

#endif  // CERTA_OBS_METRICS_H_
