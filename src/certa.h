#ifndef CERTA_CERTA_H_
#define CERTA_CERTA_H_

/// Umbrella header: the full public API of the CERTA explanation
/// library. Individual headers stay includable on their own; this is a
/// convenience for applications.

#include "core/certa_explainer.h"   // IWYU pragma: export
#include "core/lattice.h"           // IWYU pragma: export
#include "core/token_explainer.h"   // IWYU pragma: export
#include "core/triangles.h"         // IWYU pragma: export
#include "data/benchmarks.h"        // IWYU pragma: export
#include "data/blocking.h"          // IWYU pragma: export
#include "data/csv.h"               // IWYU pragma: export
#include "data/dataset.h"           // IWYU pragma: export
#include "data/generator.h"         // IWYU pragma: export
#include "data/table.h"             // IWYU pragma: export
#include "eval/cf_metrics.h"        // IWYU pragma: export
#include "eval/harness.h"           // IWYU pragma: export
#include "eval/saliency_metrics.h"  // IWYU pragma: export
#include "eval/stability.h"         // IWYU pragma: export
#include "eval/validity.h"          // IWYU pragma: export
#include "explain/aggregate.h"      // IWYU pragma: export
#include "explain/anchors.h"        // IWYU pragma: export
#include "explain/dice.h"           // IWYU pragma: export
#include "explain/explainer.h"      // IWYU pragma: export
#include "explain/explanation.h"    // IWYU pragma: export
#include "explain/json_export.h"    // IWYU pragma: export
#include "explain/landmark.h"       // IWYU pragma: export
#include "explain/lime.h"           // IWYU pragma: export
#include "explain/mojito.h"         // IWYU pragma: export
#include "explain/report.h"         // IWYU pragma: export
#include "explain/sedc.h"           // IWYU pragma: export
#include "explain/shap.h"           // IWYU pragma: export
#include "models/matcher.h"         // IWYU pragma: export
#include "models/rule_model.h"      // IWYU pragma: export
#include "models/scoring_engine.h"  // IWYU pragma: export
#include "models/svm_model.h"       // IWYU pragma: export
#include "models/trainer.h"         // IWYU pragma: export
#include "util/archive.h"           // IWYU pragma: export
#include "util/json_writer.h"       // IWYU pragma: export
#include "util/thread_pool.h"       // IWYU pragma: export

#endif  // CERTA_CERTA_H_
