#ifndef CERTA_TEXT_SIMILARITY_H_
#define CERTA_TEXT_SIMILARITY_H_

#include <string>
#include <string_view>
#include <vector>

namespace certa::text {

/// Edit (Levenshtein) distance between two strings.
int LevenshteinDistance(std::string_view a, std::string_view b);

/// Levenshtein similarity in [0, 1]: 1 - distance / max(|a|, |b|).
/// Two empty strings are maximally similar.
double LevenshteinSimilarity(std::string_view a, std::string_view b);

/// Jaro similarity in [0, 1].
double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro-Winkler similarity in [0, 1] with the standard 0.1 prefix scale
/// and a 4-character prefix cap.
double JaroWinklerSimilarity(std::string_view a, std::string_view b);

/// Jaccard similarity of two token multisets (treated as sets), in [0, 1].
/// Sorted, deduplicated copy of a token list — the set representation
/// the coefficient helpers below consume. Precompute per record side
/// when the same tokens are compared against many counterparts.
std::vector<std::string> UniqueTokens(const std::vector<std::string>& tokens);

/// JaccardSimilarity over precomputed UniqueTokens sets, bit-identical
/// to the string-vector form.
double JaccardOfUnique(const std::vector<std::string>& a,
                       const std::vector<std::string>& b);

/// OverlapCoefficient over precomputed UniqueTokens sets.
double OverlapOfUnique(const std::vector<std::string>& a,
                       const std::vector<std::string>& b);

double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b);

/// Overlap coefficient: |A ∩ B| / min(|A|, |B|), in [0, 1].
double OverlapCoefficient(const std::vector<std::string>& a,
                          const std::vector<std::string>& b);

/// Sørensen-Dice coefficient: 2 |A ∩ B| / (|A| + |B|), in [0, 1].
double DiceCoefficient(const std::vector<std::string>& a,
                       const std::vector<std::string>& b);

/// Cosine similarity of token count vectors, in [0, 1].
double CosineTokenSimilarity(const std::vector<std::string>& a,
                             const std::vector<std::string>& b);

/// Monge-Elkan similarity: mean over tokens of `a` of the best
/// Jaro-Winkler match in `b`; asymmetric, in [0, 1].
double MongeElkanSimilarity(const std::vector<std::string>& a,
                            const std::vector<std::string>& b);

/// Symmetrized Monge-Elkan: mean of both directions.
double SymmetricMongeElkan(const std::vector<std::string>& a,
                           const std::vector<std::string>& b);

/// Jaccard similarity over character trigram sets of the normalized
/// strings; robust to token order and small typos.
double TrigramSimilarity(std::string_view a, std::string_view b);

/// The trigram shingle set TrigramSimilarity builds internally for one
/// string: hashed 3-grams, sorted and deduplicated. Precompute per
/// value when the same string is compared against many others.
std::vector<uint64_t> TrigramShingles(std::string_view text);

/// TrigramSimilarity over precomputed shingle sets:
///   TrigramSimilarityOfShingles(TrigramShingles(a), TrigramShingles(b))
///     == TrigramSimilarity(a, b)
/// bit for bit.
double TrigramSimilarityOfShingles(const std::vector<uint64_t>& a,
                                   const std::vector<uint64_t>& b);

/// Relative numeric similarity in [0, 1]: 1 - |a-b| / max(|a|, |b|);
/// equals 1 when both are 0.
double NumericSimilarity(double a, double b);

/// Similarity between two raw attribute values, dispatching on content:
/// numeric values use NumericSimilarity, otherwise a blend of token
/// Jaccard and trigram similarity. Missing values (per IsMissing) give
/// 1.0 when both are missing and 0.0 when exactly one is.
double AttributeSimilarity(std::string_view a, std::string_view b);

}  // namespace certa::text

#endif  // CERTA_TEXT_SIMILARITY_H_
