#include "text/hashing_vectorizer.h"

#include <cmath>

#include "text/tokenizer.h"
#include "util/logging.h"

namespace certa::text {

HashingVectorizer::HashingVectorizer(int dimension, uint64_t seed)
    : dimension_(dimension), seed_(seed) {
  CERTA_CHECK_GT(dimension, 0);
}

uint64_t HashingVectorizer::HashToken(std::string_view token) const {
  // FNV-1a seeded with the vectorizer seed, then an avalanche mix —
  // shared with CharNgramHashes so pre-hashed shingles land on the
  // exact buckets the string path would.
  return SeededStringHash(token, seed_);
}

void HashingVectorizer::Accumulate(std::string_view token,
                                   std::vector<double>* out) const {
  AccumulateHashed(HashToken(token), out);
}

void HashingVectorizer::AccumulateHashed(uint64_t hash,
                                         std::vector<double>* out) const {
  CERTA_CHECK_EQ(static_cast<int>(out->size()), dimension_);
  size_t bucket = static_cast<size_t>(hash % static_cast<uint64_t>(dimension_));
  double sign = ((hash >> 63) & 1u) ? -1.0 : 1.0;
  (*out)[bucket] += sign;
}

std::vector<double> HashingVectorizer::TransformHashed(
    const std::vector<uint64_t>& hashes) const {
  std::vector<double> result(dimension_, 0.0);
  // Inline AccumulateHashed with the size check hoisted out of the
  // loop: this is the gram-embedding hot path (hundreds of hashes per
  // record rep), and the per-hash CHECK plus call overhead measurably
  // dominated the two integer ops of the bucket/sign computation. The
  // additions hit buckets in the same order, so the vector (and its
  // L2-normalized form) is bit-identical to the incremental path.
  const uint64_t dimension = static_cast<uint64_t>(dimension_);
  double* out = result.data();
  for (uint64_t hash : hashes) {
    const size_t bucket = static_cast<size_t>(hash % dimension);
    out[bucket] += ((hash >> 63) & 1u) ? -1.0 : 1.0;
  }
  return result;
}

std::vector<double> HashingVectorizer::TransformHashedNormalized(
    const std::vector<uint64_t>& hashes) const {
  std::vector<double> result = TransformHashed(hashes);
  L2Normalize(&result);
  return result;
}

std::vector<double> HashingVectorizer::Transform(
    const std::vector<std::string>& tokens) const {
  std::vector<double> result(dimension_, 0.0);
  for (const auto& token : tokens) Accumulate(token, &result);
  return result;
}

std::vector<double> HashingVectorizer::TransformNormalized(
    const std::vector<std::string>& tokens) const {
  std::vector<double> result = Transform(tokens);
  L2Normalize(&result);
  return result;
}

void L2Normalize(std::vector<double>* v) {
  double sum = 0.0;
  for (double x : *v) sum += x * x;
  if (sum <= 0.0) return;
  double inv = 1.0 / std::sqrt(sum);
  for (double& x : *v) x *= inv;
}

double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b) {
  CERTA_CHECK_EQ(a.size(), b.size());
  double dot = 0.0;
  double norm_a = 0.0;
  double norm_b = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    norm_a += a[i] * a[i];
    norm_b += b[i] * b[i];
  }
  if (norm_a <= 0.0 || norm_b <= 0.0) return 0.0;
  return dot / std::sqrt(norm_a * norm_b);
}

}  // namespace certa::text
