#include "text/tokenizer.h"

#include <cctype>

#include "text/simd.h"
#include "util/string_utils.h"

namespace certa::text {
namespace {

bool IsWordChar(char c) {
  unsigned char u = static_cast<unsigned char>(c);
  return std::isalnum(u) || c == '.' || c == '%' || c == '-';
}

}  // namespace

std::string Normalize(std::string_view text) {
  std::string result;
  result.reserve(text.size());
  for (char c : text) {
    unsigned char u = static_cast<unsigned char>(c);
    if (IsWordChar(c)) {
      result.push_back(static_cast<char>(std::tolower(u)));
    } else {
      result.push_back(' ');
    }
  }
  // Collapse leading '.'/'-' noise per token is handled by callers; here
  // we only trim tokens made purely of punctuation.
  std::vector<std::string> tokens = SplitWhitespace(result);
  std::vector<std::string> kept;
  kept.reserve(tokens.size());
  for (std::string& token : tokens) {
    bool has_alnum = false;
    for (char c : token) {
      if (std::isalnum(static_cast<unsigned char>(c))) {
        has_alnum = true;
        break;
      }
    }
    if (has_alnum) kept.push_back(std::move(token));
  }
  return Join(kept, " ");
}

std::vector<std::string> Tokenize(std::string_view text) {
  return SplitWhitespace(Normalize(text));
}

std::vector<std::string> RawTokens(std::string_view text) {
  return SplitWhitespace(text);
}

std::vector<std::string> CharNgrams(std::string_view text, int n) {
  std::string normalized = Normalize(text);
  std::vector<std::string> grams;
  if (normalized.empty() || n <= 0) return grams;
  std::string padded;
  padded.reserve(normalized.size() + 2);
  padded.push_back('#');
  padded += normalized;
  padded.push_back('#');
  if (static_cast<int>(padded.size()) < n) {
    grams.push_back(padded);
    return grams;
  }
  grams.reserve(padded.size() - n + 1);
  for (size_t i = 0; i + n <= padded.size(); ++i) {
    grams.push_back(padded.substr(i, n));
  }
  return grams;
}

uint64_t SeededStringHash(std::string_view text, uint64_t seed) {
  uint64_t hash = 0xcbf29ce484222325ULL ^ seed;
  for (char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  hash ^= hash >> 33;
  hash *= 0xff51afd7ed558ccdULL;
  hash ^= hash >> 33;
  return hash;
}

std::vector<uint64_t> CharNgramHashes(std::string_view text, int n,
                                      uint64_t seed) {
  std::string normalized = Normalize(text);
  std::vector<uint64_t> hashes;
  if (normalized.empty() || n <= 0) return hashes;
  std::string padded;
  padded.reserve(normalized.size() + 2);
  padded.push_back('#');
  padded += normalized;
  padded.push_back('#');
  if (static_cast<int>(padded.size()) < n) {
    hashes.push_back(SeededStringHash(padded, seed));
    return hashes;
  }
  // Every length-n window hashed by the (possibly vectorized) kernel;
  // bit-identical to calling SeededStringHash per window.
  simd::AppendNgramWindowHashes(padded, n, seed, &hashes);
  return hashes;
}

bool IsMissing(std::string_view value) {
  std::string lowered = ToLowerAscii(StripAsciiWhitespace(value));
  return lowered.empty() || lowered == "nan" || lowered == "null" ||
         lowered == "n/a" || lowered == "none" || lowered == "-";
}

bool TryParseNumeric(std::string_view value, double* out) {
  std::string cleaned;
  cleaned.reserve(value.size());
  for (char c : value) {
    unsigned char u = static_cast<unsigned char>(c);
    if (std::isdigit(u) || c == '.' || c == '-' || c == '+') {
      cleaned.push_back(c);
    } else if (c == ',' || c == '$' || c == '%' || std::isspace(u)) {
      continue;  // strip formatting
    } else {
      return false;  // letters etc. -> not numeric
    }
  }
  if (cleaned.empty()) return false;
  return ParseDouble(cleaned, out);
}

}  // namespace certa::text
