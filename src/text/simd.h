#ifndef CERTA_TEXT_SIMD_H_
#define CERTA_TEXT_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace certa::text::simd {

/// Which implementation the dispatched kernel entry points run.
///
/// Every vectorized kernel keeps a scalar reference implementation in
/// simd::scalar; the pair is differentially tested (tests/
/// simd_kernel_test.cc) and both variants are required to produce
/// bit-identical outputs — the vector forms only reorganize integer
/// arithmetic (bit-parallel rows, branchless merges, integer-count
/// sums), never floating-point reduction order.
enum class KernelMode {
  kScalar,  // reference loops, no vector-friendly restructuring
  kVector,  // bit-parallel / branchless / omp-simd inner loops
};

/// Mode the dispatched entry points use, resolved once per process:
/// CERTA_KERNELS=scalar forces the reference kernels (CI runs the perf
/// suite both ways); anything else — including unset — selects the
/// vector kernels. Compile with -DCERTA_FORCE_SCALAR_KERNELS to pin
/// scalar regardless of the environment.
KernelMode ActiveMode();

/// "scalar" or "vector" — for logs and bench metadata.
const char* ActiveModeName();

/// Reference implementations. Exact specified behavior, no layout
/// tricks; the differential tests and the micro benchmark's baselines
/// call these directly.
namespace scalar {

/// Two-row dynamic-programming Levenshtein distance.
int LevenshteinDistance(std::string_view a, std::string_view b);

/// Branchy sorted-merge intersection count over sorted unique arrays.
size_t SortedIntersectionCount(const uint64_t* a, size_t a_size,
                               const uint64_t* b, size_t b_size);

/// Cosine of token-count vectors via hash-map count tables.
double CosineTokenSimilarity(const std::vector<std::string>& a,
                             const std::vector<std::string>& b);

/// Appends the seeded FNV-1a + avalanche hash of every length-n window
/// of `padded` (one call to text::SeededStringHash per window).
void AppendNgramWindowHashes(std::string_view padded, int n, uint64_t seed,
                             std::vector<uint64_t>* out);

}  // namespace scalar

/// Vectorized implementations. Bit-identical outputs to simd::scalar.
namespace vec {

/// Myers' bit-parallel Levenshtein (one uint64 row per input column)
/// when the shorter string fits 64 characters; falls back to the scalar
/// rows beyond that.
int LevenshteinDistance(std::string_view a, std::string_view b);

/// Branchless sorted-merge intersection count: the advance of each
/// cursor is computed arithmetically, so random hash sets don't pay a
/// mispredicted branch per element.
size_t SortedIntersectionCount(const uint64_t* a, size_t a_size,
                               const uint64_t* b, size_t b_size);

/// Cosine of token-count vectors via sorted run-length merge — no hash
/// maps, no per-call node allocations. All partial sums are small
/// integers held in doubles, so the result is bit-identical to the
/// hash-map reference despite the different accumulation order.
double CosineTokenSimilarity(const std::vector<std::string>& a,
                             const std::vector<std::string>& b);

/// Window hashes with the per-window FNV chain unrolled for n = 3 and
/// n = 4 under `#pragma omp simd` (independent windows, integer-only);
/// other n fall back to the scalar loop.
void AppendNgramWindowHashes(std::string_view padded, int n, uint64_t seed,
                             std::vector<uint64_t>* out);

}  // namespace vec

// Dispatched entry points — what the text layer (similarity.cc,
// tokenizer.cc) actually calls. Each resolves ActiveMode() once per
// call via a relaxed static; the branch predicts perfectly.

int LevenshteinDistance(std::string_view a, std::string_view b);
size_t SortedIntersectionCount(const uint64_t* a, size_t a_size,
                               const uint64_t* b, size_t b_size);
double CosineTokenSimilarity(const std::vector<std::string>& a,
                             const std::vector<std::string>& b);
void AppendNgramWindowHashes(std::string_view padded, int n, uint64_t seed,
                             std::vector<uint64_t>* out);

}  // namespace certa::text::simd

#endif  // CERTA_TEXT_SIMD_H_
