#include "text/similarity.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "text/simd.h"
#include "text/tokenizer.h"

namespace certa::text {
namespace {

std::unordered_set<std::string> AsSet(const std::vector<std::string>& tokens) {
  return {tokens.begin(), tokens.end()};
}

size_t IntersectionSize(const std::unordered_set<std::string>& a,
                        const std::unordered_set<std::string>& b) {
  const auto& smaller = a.size() <= b.size() ? a : b;
  const auto& larger = a.size() <= b.size() ? b : a;
  size_t count = 0;
  for (const auto& item : smaller) {
    if (larger.contains(item)) ++count;
  }
  return count;
}

}  // namespace

int LevenshteinDistance(std::string_view a, std::string_view b) {
  return simd::LevenshteinDistance(a, b);
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(LevenshteinDistance(a, b)) /
                   static_cast<double>(longest);
}

double JaroSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const int match_window =
      std::max(0, static_cast<int>(std::max(a.size(), b.size())) / 2 - 1);
  std::vector<bool> a_matched(a.size(), false);
  std::vector<bool> b_matched(b.size(), false);
  int matches = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    size_t lo = i > static_cast<size_t>(match_window)
                    ? i - static_cast<size_t>(match_window)
                    : 0;
    size_t hi = std::min(b.size(), i + static_cast<size_t>(match_window) + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (b_matched[j] || a[i] != b[j]) continue;
      a_matched[i] = true;
      b_matched[j] = true;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;
  // Count transpositions among matched characters.
  int transpositions = 0;
  size_t j = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  double m = matches;
  return (m / static_cast<double>(a.size()) +
          m / static_cast<double>(b.size()) +
          (m - transpositions / 2.0) / m) /
         3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b) {
  double jaro = JaroSimilarity(a, b);
  size_t prefix = 0;
  size_t limit = std::min({a.size(), b.size(), static_cast<size_t>(4)});
  while (prefix < limit && a[prefix] == b[prefix]) ++prefix;
  return jaro + static_cast<double>(prefix) * 0.1 * (1.0 - jaro);
}

std::vector<std::string> UniqueTokens(const std::vector<std::string>& tokens) {
  std::vector<std::string> unique = tokens;
  std::sort(unique.begin(), unique.end());
  unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
  return unique;
}

namespace {

/// Sorted-merge intersection count over UniqueTokens vectors; equals
/// IntersectionSize over the corresponding hash sets.
size_t SortedIntersectionSize(const std::vector<std::string>& a,
                              const std::vector<std::string>& b) {
  size_t intersection = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    int cmp = a[i].compare(b[j]);
    if (cmp == 0) {
      ++intersection;
      ++i;
      ++j;
    } else if (cmp < 0) {
      ++i;
    } else {
      ++j;
    }
  }
  return intersection;
}

}  // namespace

double JaccardOfUnique(const std::vector<std::string>& a,
                       const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t intersection = SortedIntersectionSize(a, b);
  size_t union_size = a.size() + b.size() - intersection;
  if (union_size == 0) return 1.0;
  return static_cast<double>(intersection) / static_cast<double>(union_size);
}

double OverlapOfUnique(const std::vector<std::string>& a,
                       const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  size_t smaller = std::min(a.size(), b.size());
  return static_cast<double>(SortedIntersectionSize(a, b)) /
         static_cast<double>(smaller);
}

double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b) {
  // Same sets, same coefficient as the hash-set formulation, via the
  // sorted-unique representation (cheaper: no node allocations, and the
  // augmentation-weight scan calls this per pool record).
  return JaccardOfUnique(UniqueTokens(a), UniqueTokens(b));
}

double OverlapCoefficient(const std::vector<std::string>& a,
                          const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  auto set_a = AsSet(a);
  auto set_b = AsSet(b);
  size_t smaller = std::min(set_a.size(), set_b.size());
  return static_cast<double>(IntersectionSize(set_a, set_b)) /
         static_cast<double>(smaller);
}

double DiceCoefficient(const std::vector<std::string>& a,
                       const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  auto set_a = AsSet(a);
  auto set_b = AsSet(b);
  size_t total = set_a.size() + set_b.size();
  if (total == 0) return 1.0;
  return 2.0 * static_cast<double>(IntersectionSize(set_a, set_b)) /
         static_cast<double>(total);
}

double CosineTokenSimilarity(const std::vector<std::string>& a,
                             const std::vector<std::string>& b) {
  return simd::CosineTokenSimilarity(a, b);
}

double MongeElkanSimilarity(const std::vector<std::string>& a,
                            const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  double total = 0.0;
  for (const auto& token_a : a) {
    double best = 0.0;
    for (const auto& token_b : b) {
      best = std::max(best, JaroWinklerSimilarity(token_a, token_b));
    }
    total += best;
  }
  return total / static_cast<double>(a.size());
}

double SymmetricMongeElkan(const std::vector<std::string>& a,
                           const std::vector<std::string>& b) {
  return 0.5 * (MongeElkanSimilarity(a, b) + MongeElkanSimilarity(b, a));
}

std::vector<uint64_t> TrigramShingles(std::string_view text) {
  // Hashed shingles instead of materialized gram strings: this is the
  // innermost loop of AttributeSimilarity (called per attribute value
  // by the models and triangle search), and the per-gram substr
  // allocations dominated its cost. Jaccard over 64-bit gram hashes
  // equals Jaccard over the gram strings (collisions are ~2^-64).
  std::vector<uint64_t> grams = CharNgramHashes(text, 3);
  std::sort(grams.begin(), grams.end());
  grams.erase(std::unique(grams.begin(), grams.end()), grams.end());
  return grams;
}

double TrigramSimilarityOfShingles(const std::vector<uint64_t>& a,
                                   const std::vector<uint64_t>& b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t intersection =
      simd::SortedIntersectionCount(a.data(), a.size(), b.data(), b.size());
  size_t union_size = a.size() + b.size() - intersection;
  if (union_size == 0) return 1.0;
  return static_cast<double>(intersection) / static_cast<double>(union_size);
}

double TrigramSimilarity(std::string_view a, std::string_view b) {
  return TrigramSimilarityOfShingles(TrigramShingles(a), TrigramShingles(b));
}

double NumericSimilarity(double a, double b) {
  if (a == b) return 1.0;
  double scale = std::max(std::fabs(a), std::fabs(b));
  if (scale == 0.0) return 1.0;
  double relative = std::fabs(a - b) / scale;
  return std::max(0.0, 1.0 - relative);
}

double AttributeSimilarity(std::string_view a, std::string_view b) {
  bool missing_a = IsMissing(a);
  bool missing_b = IsMissing(b);
  if (missing_a && missing_b) return 1.0;
  if (missing_a || missing_b) return 0.0;
  double num_a = 0.0;
  double num_b = 0.0;
  if (TryParseNumeric(a, &num_a) && TryParseNumeric(b, &num_b)) {
    return NumericSimilarity(num_a, num_b);
  }
  std::vector<std::string> tokens_a = Tokenize(a);
  std::vector<std::string> tokens_b = Tokenize(b);
  return 0.5 * JaccardSimilarity(tokens_a, tokens_b) +
         0.5 * TrigramSimilarity(a, b);
}

}  // namespace certa::text
