#ifndef CERTA_TEXT_TOKENIZER_H_
#define CERTA_TEXT_TOKENIZER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace certa::text {

/// Normalizes raw attribute text: ASCII lower-casing and mapping
/// punctuation to spaces (digits, letters, '.', '%' and '-' inside tokens
/// are preserved so model numbers like "dav-is50" and "5.1" survive).
std::string Normalize(std::string_view text);

/// Splits normalized text into word tokens (whitespace separated).
/// `Tokenize(raw)` == `SplitWhitespace(Normalize(raw))`.
std::vector<std::string> Tokenize(std::string_view text);

/// Splits raw text on whitespace only, without normalization. This is
/// the paper's definition of an attribute value as "a sequence of tokens
/// (strings separated by white space)" used by the perturbation
/// operators, which must preserve original casing/punctuation.
std::vector<std::string> RawTokens(std::string_view text);

/// Character n-grams of the (normalized) text, including a leading and
/// trailing boundary marker '#'. Returns an empty vector when the text
/// normalizes to nothing.
std::vector<std::string> CharNgrams(std::string_view text, int n);

/// Stable 64-bit hash of `text` (FNV-1a seeded with `seed`, finished
/// with an avalanche mix). This is exactly the hash
/// HashingVectorizer::HashToken computes for the same seed, so hashed
/// shingles can feed a vectorizer without materializing gram strings.
uint64_t SeededStringHash(std::string_view text, uint64_t seed);

/// Hashed character shingles: SeededStringHash of every n-gram that
/// CharNgrams(text, n) would produce, in the same order, without the
/// per-gram heap allocations. Invariant (tested):
///   CharNgramHashes(t, n, s)[i] == SeededStringHash(CharNgrams(t, n)[i], s)
std::vector<uint64_t> CharNgramHashes(std::string_view text, int n,
                                      uint64_t seed = 0);

/// Canonical spelling of a missing cell. It is a *string* marker, never
/// a numeric NaN: CSV round-trips it byte-identically, JSON export
/// keeps it as the string "NaN" (only non-finite *numbers* become
/// null — util::JsonWriter::Number), and util::ParseDouble refuses to
/// read it back as a number. Producers of missing values (DiCE pool
/// fallback, the synthetic generator) must use this constant so
/// IsMissing recognizes their output.
inline constexpr const char kMissingValue[] = "NaN";

/// True when the value should be treated as missing (empty, "nan",
/// "null", "n/a" after normalization). The benchmark datasets use
/// kMissingValue for missing prices; models and similarity measures
/// skip them.
bool IsMissing(std::string_view value);

/// Attempts to interpret the value as a number (e.g., a price or an ABV
/// percentage); tolerates currency symbols, '%' and thousands commas.
bool TryParseNumeric(std::string_view value, double* out);

}  // namespace certa::text

#endif  // CERTA_TEXT_TOKENIZER_H_
