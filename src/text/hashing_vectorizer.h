#ifndef CERTA_TEXT_HASHING_VECTORIZER_H_
#define CERTA_TEXT_HASHING_VECTORIZER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace certa::text {

/// Feature-hashing text vectorizer ("hashing trick"). Maps a token
/// sequence to a fixed-dimension dense vector: each token contributes
/// +/-1 (sign hashing to de-bias collisions) at `hash(token) %
/// dimension`. Serves as the from-scratch stand-in for learned word
/// embeddings: two records sharing tokens land on shared coordinates,
/// so cosine distance between hashed vectors approximates lexical
/// similarity — the property DeepER's distributed record representation
/// relies on.
class HashingVectorizer {
 public:
  /// `dimension` must be positive; `seed` decorrelates independent
  /// vectorizers (e.g., word-level vs n-gram-level channels).
  explicit HashingVectorizer(int dimension, uint64_t seed = 0x5eed);

  /// Accumulates the token multiset into a vector of `dimension()`.
  std::vector<double> Transform(const std::vector<std::string>& tokens) const;

  /// Adds the token's contribution into an existing vector (for
  /// incremental composition across attributes).
  void Accumulate(std::string_view token, std::vector<double>* out) const;

  /// Transforms and L2-normalizes (zero vector stays zero).
  std::vector<double> TransformNormalized(
      const std::vector<std::string>& tokens) const;

  /// Adds one pre-hashed token's contribution; `hash` must come from
  /// HashToken / text::SeededStringHash with this vectorizer's seed so
  /// the result is bit-identical to the string path.
  void AccumulateHashed(uint64_t hash, std::vector<double>* out) const;

  /// Transform over pre-hashed tokens (e.g. text::CharNgramHashes with
  /// seed()); equals Transform of the corresponding token strings.
  std::vector<double> TransformHashed(
      const std::vector<uint64_t>& hashes) const;

  /// Hashed-token counterpart of TransformNormalized.
  std::vector<double> TransformHashedNormalized(
      const std::vector<uint64_t>& hashes) const;

  int dimension() const { return dimension_; }
  uint64_t seed() const { return seed_; }

  /// Stable 64-bit FNV-1a hash of `token` mixed with this vectorizer's
  /// seed; exposed for tests.
  uint64_t HashToken(std::string_view token) const;

 private:
  int dimension_;
  uint64_t seed_;
};

/// L2-normalizes `v` in place; leaves an all-zero vector untouched.
void L2Normalize(std::vector<double>* v);

/// Cosine similarity of two equal-length vectors; 0 when either is zero.
double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b);

}  // namespace certa::text

#endif  // CERTA_TEXT_HASHING_VECTORIZER_H_
