#include "text/simd.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <unordered_map>

#include "text/tokenizer.h"

namespace certa::text::simd {

KernelMode ActiveMode() {
#ifdef CERTA_FORCE_SCALAR_KERNELS
  return KernelMode::kScalar;
#else
  static const KernelMode mode = [] {
    const char* env = std::getenv("CERTA_KERNELS");
    if (env != nullptr && std::strcmp(env, "scalar") == 0) {
      return KernelMode::kScalar;
    }
    return KernelMode::kVector;
  }();
  return mode;
#endif
}

const char* ActiveModeName() {
  return ActiveMode() == KernelMode::kScalar ? "scalar" : "vector";
}

namespace scalar {

int LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  std::vector<int> previous(a.size() + 1);
  std::vector<int> current(a.size() + 1);
  for (size_t i = 0; i <= a.size(); ++i) previous[i] = static_cast<int>(i);
  for (size_t j = 1; j <= b.size(); ++j) {
    current[0] = static_cast<int>(j);
    for (size_t i = 1; i <= a.size(); ++i) {
      int substitution = previous[i - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      current[i] =
          std::min({previous[i] + 1, current[i - 1] + 1, substitution});
    }
    std::swap(previous, current);
  }
  return previous[a.size()];
}

size_t SortedIntersectionCount(const uint64_t* a, size_t a_size,
                               const uint64_t* b, size_t b_size) {
  size_t intersection = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a_size && j < b_size) {
    if (a[i] == b[j]) {
      ++intersection;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return intersection;
}

namespace {

std::unordered_map<std::string, int> Counts(
    const std::vector<std::string>& tokens) {
  std::unordered_map<std::string, int> counts;
  for (const auto& token : tokens) ++counts[token];
  return counts;
}

}  // namespace

double CosineTokenSimilarity(const std::vector<std::string>& a,
                             const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  auto counts_a = Counts(a);
  auto counts_b = Counts(b);
  double dot = 0.0;
  for (const auto& [token, count] : counts_a) {
    auto it = counts_b.find(token);
    if (it != counts_b.end()) dot += static_cast<double>(count) * it->second;
  }
  auto norm = [](const std::unordered_map<std::string, int>& counts) {
    double sum = 0.0;
    for (const auto& [token, count] : counts) {
      sum += static_cast<double>(count) * count;
    }
    return std::sqrt(sum);
  };
  double denom = norm(counts_a) * norm(counts_b);
  return denom > 0.0 ? dot / denom : 0.0;
}

void AppendNgramWindowHashes(std::string_view padded, int n, uint64_t seed,
                             std::vector<uint64_t>* out) {
  if (n <= 0 || padded.size() < static_cast<size_t>(n)) return;
  const size_t count = padded.size() - static_cast<size_t>(n) + 1;
  out->reserve(out->size() + count);
  for (size_t i = 0; i < count; ++i) {
    out->push_back(
        SeededStringHash(padded.substr(i, static_cast<size_t>(n)), seed));
  }
}

}  // namespace scalar

namespace vec {
namespace {

/// Myers' bit-parallel edit distance (G. Myers, JACM 1999) for a
/// pattern of at most 64 characters: each text character updates the
/// whole DP column in O(1) word operations. Produces exactly the
/// unit-cost Levenshtein distance of the DP recurrence.
int MyersLevenshtein64(std::string_view pattern, std::string_view text) {
  const size_t m = pattern.size();
  uint64_t peq[256] = {0};
  for (size_t i = 0; i < m; ++i) {
    peq[static_cast<unsigned char>(pattern[i])] |= 1ULL << i;
  }
  uint64_t pv = ~0ULL;
  uint64_t mv = 0;
  int score = static_cast<int>(m);
  const uint64_t last = 1ULL << (m - 1);
  for (char c : text) {
    const uint64_t eq = peq[static_cast<unsigned char>(c)];
    const uint64_t xv = eq | mv;
    const uint64_t xh = (((eq & pv) + pv) ^ pv) | eq;
    uint64_t ph = mv | ~(xh | pv);
    uint64_t mh = pv & xh;
    if (ph & last) {
      ++score;
    } else if (mh & last) {
      --score;
    }
    ph = (ph << 1) | 1ULL;
    mh <<= 1;
    pv = mh | ~(xv | ph);
    mv = ph & xv;
  }
  return score;
}

}  // namespace

int LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  if (a.empty()) return static_cast<int>(b.size());
  if (a.size() <= 64) return MyersLevenshtein64(a, b);
  return scalar::LevenshteinDistance(a, b);
}

namespace {

/// Branchless two-pointer merge count over one [a, b) range pair.
size_t MergeCountRange(const uint64_t* a, size_t a_size, const uint64_t* b,
                       size_t b_size) {
  size_t intersection = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a_size && j < b_size) {
    const uint64_t x = a[i];
    const uint64_t y = b[j];
    intersection += static_cast<size_t>(x == y);
    i += static_cast<size_t>(x <= y);
    j += static_cast<size_t>(y <= x);
  }
  return intersection;
}

}  // namespace

size_t SortedIntersectionCount(const uint64_t* a, size_t a_size,
                               const uint64_t* b, size_t b_size) {
  // The merge loop's bottleneck is the loop-carried dependency on the
  // cursors, not arithmetic. Splitting both arrays at a shared pivot
  // yields two independent merges whose iterations interleave in one
  // loop, so the CPU overlaps the two dependency chains. Every element
  // lands strictly left or right of the pivot value in both arrays, so
  // the two partial counts partition the matches exactly.
  constexpr size_t kSplitThreshold = 32;
  if (a_size < kSplitThreshold || b_size < kSplitThreshold) {
    return MergeCountRange(a, a_size, b, b_size);
  }
  const uint64_t pivot = a[a_size / 2];
  const size_t a1 = static_cast<size_t>(
      std::lower_bound(a, a + a_size, pivot) - a);
  const size_t b1 = static_cast<size_t>(
      std::lower_bound(b, b + b_size, pivot) - b);
  size_t intersection = 0;
  size_t i0 = 0;
  size_t j0 = 0;
  size_t i1 = a1;
  size_t j1 = b1;
  while (i0 < a1 && j0 < b1 && i1 < a_size && j1 < b_size) {
    const uint64_t x0 = a[i0];
    const uint64_t y0 = b[j0];
    intersection += static_cast<size_t>(x0 == y0);
    i0 += static_cast<size_t>(x0 <= y0);
    j0 += static_cast<size_t>(y0 <= x0);
    const uint64_t x1 = a[i1];
    const uint64_t y1 = b[j1];
    intersection += static_cast<size_t>(x1 == y1);
    i1 += static_cast<size_t>(x1 <= y1);
    j1 += static_cast<size_t>(y1 <= x1);
  }
  intersection += MergeCountRange(a + i0, a1 - i0, b + j0, b1 - j0);
  intersection += MergeCountRange(a + i1, a_size - i1, b + j1, b_size - j1);
  return intersection;
}

namespace {

std::vector<const std::string*> SortedPointers(
    const std::vector<std::string>& tokens) {
  std::vector<const std::string*> sorted;
  sorted.reserve(tokens.size());
  for (const std::string& token : tokens) sorted.push_back(&token);
  std::sort(sorted.begin(), sorted.end(),
            [](const std::string* x, const std::string* y) { return *x < *y; });
  return sorted;
}

size_t RunEnd(const std::vector<const std::string*>& sorted, size_t begin) {
  size_t end = begin + 1;
  while (end < sorted.size() && *sorted[end] == *sorted[begin]) ++end;
  return end;
}

}  // namespace

double CosineTokenSimilarity(const std::vector<std::string>& a,
                             const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  // Equal runs of the sorted views are the distinct tokens with their
  // multiplicities; dot and the squared norms are sums of products of
  // those integer counts, which doubles accumulate exactly in any
  // order — hence bit-identity with the hash-map reference.
  std::vector<const std::string*> sa = SortedPointers(a);
  std::vector<const std::string*> sb = SortedPointers(b);
  double dot = 0.0;
  double norm_a = 0.0;
  double norm_b = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (i < sa.size() && j < sb.size()) {
    const int cmp = sa[i]->compare(*sb[j]);
    if (cmp == 0) {
      const size_t ia = RunEnd(sa, i);
      const size_t jb = RunEnd(sb, j);
      const double ca = static_cast<double>(ia - i);
      const double cb = static_cast<double>(jb - j);
      dot += ca * cb;
      norm_a += ca * ca;
      norm_b += cb * cb;
      i = ia;
      j = jb;
    } else if (cmp < 0) {
      const size_t ia = RunEnd(sa, i);
      const double ca = static_cast<double>(ia - i);
      norm_a += ca * ca;
      i = ia;
    } else {
      const size_t jb = RunEnd(sb, j);
      const double cb = static_cast<double>(jb - j);
      norm_b += cb * cb;
      j = jb;
    }
  }
  while (i < sa.size()) {
    const size_t ia = RunEnd(sa, i);
    const double ca = static_cast<double>(ia - i);
    norm_a += ca * ca;
    i = ia;
  }
  while (j < sb.size()) {
    const size_t jb = RunEnd(sb, j);
    const double cb = static_cast<double>(jb - j);
    norm_b += cb * cb;
    j = jb;
  }
  const double denom = std::sqrt(norm_a) * std::sqrt(norm_b);
  return denom > 0.0 ? dot / denom : 0.0;
}

void AppendNgramWindowHashes(std::string_view padded, int n, uint64_t seed,
                             std::vector<uint64_t>* out) {
  if (n <= 0 || padded.size() < static_cast<size_t>(n)) return;
  const size_t count = padded.size() - static_cast<size_t>(n) + 1;
  const size_t base = out->size();
  out->resize(base + count);
  uint64_t* dst = out->data() + base;
  const unsigned char* s =
      reinterpret_cast<const unsigned char*>(padded.data());
  constexpr uint64_t kBasis = 0xcbf29ce484222325ULL;
  constexpr uint64_t kPrime = 0x100000001b3ULL;
  // Windows are independent, so the whole FNV chain of each window is
  // unrolled and the loop over positions vectorizes (integer-only; the
  // arithmetic per window is identical to SeededStringHash).
  if (n == 3) {
#pragma omp simd
    for (size_t i = 0; i < count; ++i) {
      uint64_t h = kBasis ^ seed;
      h = (h ^ s[i]) * kPrime;
      h = (h ^ s[i + 1]) * kPrime;
      h = (h ^ s[i + 2]) * kPrime;
      h ^= h >> 33;
      h *= 0xff51afd7ed558ccdULL;
      h ^= h >> 33;
      dst[i] = h;
    }
  } else if (n == 4) {
#pragma omp simd
    for (size_t i = 0; i < count; ++i) {
      uint64_t h = kBasis ^ seed;
      h = (h ^ s[i]) * kPrime;
      h = (h ^ s[i + 1]) * kPrime;
      h = (h ^ s[i + 2]) * kPrime;
      h = (h ^ s[i + 3]) * kPrime;
      h ^= h >> 33;
      h *= 0xff51afd7ed558ccdULL;
      h ^= h >> 33;
      dst[i] = h;
    }
  } else {
    out->resize(base);
    scalar::AppendNgramWindowHashes(padded, n, seed, out);
  }
}

}  // namespace vec

int LevenshteinDistance(std::string_view a, std::string_view b) {
  return ActiveMode() == KernelMode::kVector
             ? vec::LevenshteinDistance(a, b)
             : scalar::LevenshteinDistance(a, b);
}

size_t SortedIntersectionCount(const uint64_t* a, size_t a_size,
                               const uint64_t* b, size_t b_size) {
  return ActiveMode() == KernelMode::kVector
             ? vec::SortedIntersectionCount(a, a_size, b, b_size)
             : scalar::SortedIntersectionCount(a, a_size, b, b_size);
}

double CosineTokenSimilarity(const std::vector<std::string>& a,
                             const std::vector<std::string>& b) {
  return ActiveMode() == KernelMode::kVector
             ? vec::CosineTokenSimilarity(a, b)
             : scalar::CosineTokenSimilarity(a, b);
}

void AppendNgramWindowHashes(std::string_view padded, int n, uint64_t seed,
                             std::vector<uint64_t>* out) {
  if (ActiveMode() == KernelMode::kVector) {
    vec::AppendNgramWindowHashes(padded, n, seed, out);
  } else {
    scalar::AppendNgramWindowHashes(padded, n, seed, out);
  }
}

}  // namespace certa::text::simd
