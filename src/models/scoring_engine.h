#ifndef CERTA_MODELS_SCORING_ENGINE_H_
#define CERTA_MODELS_SCORING_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "models/matcher.h"
#include "obs/metrics.h"
#include "util/thread_pool.h"

namespace certa::models {

/// Content hash of a record pair, used as the prediction-cache key.
/// Two independent 64-bit FNV-1a/avalanche streams make accidental
/// collisions (which would silently return a wrong score) a non-issue:
/// ~2^-128 per pair of distinct inputs.
struct PairKey {
  uint64_t lo = 0;
  uint64_t hi = 0;

  bool operator==(const PairKey& other) const {
    return lo == other.lo && hi == other.hi;
  }
};

/// Hashes the pair's attribute values with side/value separators (the
/// same framing CachingMatcher uses for its string keys).
PairKey HashPair(const data::Record& u, const data::Record& v);

/// Hash functor for PairKey-keyed maps (cache shards, batch dedupe,
/// fault plans).
struct PairKeyHasher {
  size_t operator()(const PairKey& key) const {
    return static_cast<size_t>(key.lo ^ (key.hi * 0x9E3779B97F4A7C15ULL));
  }
};

/// Sharded, thread-safe score cache. Each shard has its own mutex and
/// map, so concurrent lookups from pool workers rarely contend. A shard
/// that exceeds its entry budget is cleared wholesale (same policy as
/// CachingMatcher), with the dropped entries counted as evictions.
class PredictionCache {
 public:
  struct Stats {
    long long hits = 0;
    long long misses = 0;
    long long evictions = 0;
    /// Misses served from the durable score store instead of the base
    /// model (see ScoringEngine::Options::store_probe). Distinct from
    /// `hits` — a store-served probe already counted one miss, so
    /// hits + misses still tallies every lookup, and store_hits says
    /// how many of those misses skipped a paid model call anyway.
    long long store_hits = 0;
    /// Subset of store_hits whose score was paid for by a *sibling*
    /// worker sharing the store directory (probe returned 2, see
    /// Options::StoreProbe) — the cross-worker reuse a shared fleet
    /// store exists to prove.
    long long store_peer_hits = 0;
  };

  PredictionCache(size_t num_shards, size_t max_entries_per_shard);

  /// Mirrors every hit/miss/eviction into the given registry counters
  /// (all may be null). The cache's own Stats stay authoritative — they
  /// feed CertaResult and must not depend on whether a registry is
  /// attached or enabled.
  void BindMetrics(obs::Counter* hits, obs::Counter* misses,
                   obs::Counter* evictions,
                   obs::Counter* store_hits = nullptr,
                   obs::Counter* store_peer_hits = nullptr);

  /// Hot-path instrumentation for the batched View below (both may be
  /// null): `view_hits` counts lookups served lock-free from a view's
  /// local table (these also count as ordinary hits), `flush_locks`
  /// counts shard-mutex acquisitions made by View::Flush — the number
  /// of times the whole batch touched a shard lock at all, versus one
  /// lock per lookup/insert on the direct path.
  void BindViewMetrics(obs::Counter* view_hits, obs::Counter* flush_locks);

  /// Single-writer read-through view for one batch producer: lookups
  /// are served from a local open-address table when possible (no shard
  /// mutex), misses fall through to the shards with normal hit/miss
  /// accounting, and inserts are buffered locally and merged into the
  /// shards — each shard locked once — at batch boundaries via Flush().
  ///
  /// Determinism: for a single-threaded caller, the hit/miss/eviction
  /// counter stream is identical to using Lookup/Insert directly
  /// (pending inserts are applied per shard in insertion order, and the
  /// engine's probe phase precedes its insert phase within a batch
  /// anyway). The view itself is NOT thread-safe — it is the per-batch
  /// single-writer arm of the cache; concurrent producers use the
  /// locked path directly.
  class View {
   public:
    explicit View(PredictionCache* cache) : cache_(cache) {}
    View(const View&) = delete;
    View& operator=(const View&) = delete;
    ~View() { Flush(); }

    /// True (and *score set) on a hit, served locally when possible.
    bool Lookup(const PairKey& key, double* score);

    /// Buffers the insert; visible to this view immediately and to the
    /// shards (and hence other threads) after the next Flush.
    void Insert(const PairKey& key, double score);

    /// Merges every buffered insert into the shards, one lock per
    /// touched shard, applying the normal eviction policy and counters.
    void Flush();

   private:
    void RememberLocal(const PairKey& key, double score);

    PredictionCache* cache_;
    std::unordered_map<PairKey, double, PairKeyHasher> local_;
    std::vector<std::pair<PairKey, double>> pending_;
    /// Reusable per-shard grouping buffers for Flush.
    std::vector<std::vector<std::pair<PairKey, double>>> by_shard_;
  };

  /// True (and *score set) on a hit. Counts one hit or one miss —
  /// except on the *first* touch of a prewarmed entry, which returns
  /// the score but counts a miss (see Prewarm).
  bool Lookup(const PairKey& key, double* score);

  /// Stores the score; overwriting an existing entry is harmless
  /// (scores are deterministic). May evict a full shard first.
  void Insert(const PairKey& key, double score);

  /// Counts one store-served miss (the engine calls this when its
  /// store_probe hook supplies the score a cache miss would otherwise
  /// have paid the base model for). `peer` additionally counts a
  /// store_peer_hit — the serving entry was paid by a sibling worker.
  void CountStoreHit(bool peer = false);

  /// Seeds the cache with a replayed (journal) score without touching
  /// the hit/miss counters. The entry is marked prewarmed: its first
  /// Lookup still counts as a miss (the run being resumed would have
  /// computed it there), so the counter stream of a resumed run is
  /// bit-identical to an uninterrupted one — only the base-model call
  /// is skipped. An existing entry is left untouched.
  void Prewarm(const PairKey& key, double score);

  Stats stats() const;
  size_t entry_count() const;

 private:
  struct Entry {
    double score = 0.0;
    /// Replayed, not yet touched: first Lookup counts a miss.
    bool prewarmed = false;
  };

  struct Shard {
    std::mutex mutex;
    std::unordered_map<PairKey, Entry, PairKeyHasher> map;
  };

  size_t ShardIndex(const PairKey& key) const {
    // Mix both words (the hasher's output) before reducing: indexing by
    // `hi % shards` alone piles every key sharing `hi` into one shard
    // whenever the shard count is not a power of two that divides the
    // hash range evenly — and defeats sharding entirely for key sets
    // that vary only in `lo`.
    return PairKeyHasher{}(key) % shards_.size();
  }

  Shard& ShardFor(const PairKey& key) { return *shards_[ShardIndex(key)]; }

  /// Insert body shared by Insert and View::Flush; `shard.mutex` held.
  void InsertLocked(Shard& shard, const PairKey& key, double score);

  std::vector<std::unique_ptr<Shard>> shards_;
  size_t max_entries_per_shard_;
  std::atomic<long long> hits_{0};
  std::atomic<long long> misses_{0};
  std::atomic<long long> evictions_{0};
  std::atomic<long long> store_hits_{0};
  std::atomic<long long> store_peer_hits_{0};
  obs::Counter* metric_hits_ = nullptr;
  obs::Counter* metric_store_hits_ = nullptr;
  obs::Counter* metric_store_peer_hits_ = nullptr;
  obs::Counter* metric_misses_ = nullptr;
  obs::Counter* metric_evictions_ = nullptr;
  obs::Counter* metric_view_hits_ = nullptr;
  obs::Counter* metric_flush_locks_ = nullptr;
};

/// The batched + cached + pooled scoring layer every hot path drains
/// through. Drops in anywhere a Matcher is expected:
///
///   - Score(u, v): cache probe, then one base-model call on a miss.
///   - ScoreBatch(pairs): dedupes identical pairs within the batch,
///     probes the cache for each unique pair, scores the misses through
///     the base model's ScoreBatch (split over the thread pool when one
///     is attached), then inserts the new scores.
///
/// Every returned score is bit-identical to base->Score(u, v): the
/// cache only ever stores values the deterministic base model produced,
/// and batching/pooling never changes the arithmetic of an individual
/// pair. Cache probes and insertions happen on the calling thread in
/// pair order, so hit/miss/eviction counters are deterministic too (for
/// a single-threaded caller); only the miss *computation* fans out.
class ScoringEngine : public Matcher {
 public:
  /// Durability hook: invoked once per freshly *computed* score (cache
  /// hits and prewarmed replays never fire it), sequentially on the
  /// calling thread in input order, after the score is known good. The
  /// write-ahead journal (src/persist) subscribes here; anything the
  /// observer durably records can be Prewarm()ed into a later engine to
  /// resume a killed job without re-paying the model call.
  using ScoreObserver = std::function<void(const PairKey&, double)>;

  struct Options {
    /// Disable to measure the raw batched path (or to bound memory).
    bool enable_cache = true;
    size_t cache_shards = 16;
    size_t max_cache_entries_per_shard = 1 << 16;
    /// Not owned; nullptr scores misses inline on the calling thread.
    util::ThreadPool* pool = nullptr;
    /// Batches smaller than this skip the pool (dispatch overhead would
    /// dominate the scoring work).
    size_t min_parallel_batch = 8;
    /// Pairs per pool task when fanning a batch out. Deliberately
    /// independent of the worker count: chunk boundaries fix the base
    /// model's ScoreBatch slices (and hence its batch-local
    /// memoization reuse), so the total work is identical at any thread
    /// count — threads only change who runs a chunk.
    size_t parallel_chunk = 32;
    /// Optional journal hook; empty = no observation overhead.
    ScoreObserver observer;
    /// Durable read-through hooks (src/persist's ScoreStore binds
    /// them): `store_probe` is consulted after a cache miss — nonzero
    /// (and *score set) serves the miss without a base-model call —
    /// and `store_write` is invoked once per freshly computed score,
    /// right after `observer`, on the calling thread in input order.
    /// The probe's return value says who paid for the score: 0 = miss,
    /// 1 = this worker's own store entry, 2 = an entry absorbed from a
    /// sibling worker sharing the store directory (tallied as
    /// store_peer_hits on top of store_hits). A bool-returning lambda
    /// still converts — false/true map to 0/1. Store-served scores
    /// keep the hit/miss/eviction counter stream and every result byte
    /// identical to computing (the store only holds values the
    /// deterministic model produced); they are tallied separately as
    /// PredictionCache::Stats::store_hits.
    using StoreProbe = std::function<int(const PairKey&, double*)>;
    using StoreWrite = std::function<void(const PairKey&, double)>;
    StoreProbe store_probe;
    StoreWrite store_write;
    /// Observability registry (not owned; nullptr = uninstrumented).
    /// Metric handles are resolved once at engine construction — see
    /// docs/OBSERVABILITY.md for the scoring.* catalog. Purely
    /// observational: scores, counters in CertaResult, and the call
    /// pattern are bit-identical with or without a registry.
    obs::MetricsRegistry* metrics = nullptr;
  };

  /// Does not take ownership of `base`, which must outlive the engine
  /// and be safe to score from multiple threads.
  ScoringEngine(const Matcher* base, Options options);
  explicit ScoringEngine(const Matcher* base)
      : ScoringEngine(base, Options()) {}

  /// Outcome of a fault-tolerant batch: scores[i] is meaningful only
  /// where ok[i] != 0. Failed pairs are never written to the cache.
  struct BatchOutcome {
    std::vector<double> scores;
    std::vector<uint8_t> ok;
    /// Input pairs whose score was lost to a ScoringError.
    size_t failures = 0;
    /// True when at least one failure was a BudgetExhausted — the
    /// caller should stop issuing work rather than degrade further.
    bool budget_exhausted = false;
  };

  double Score(const data::Record& u, const data::Record& v) const override;
  std::vector<double> ScoreBatch(
      std::span<const RecordPair> pairs) const override;
  std::string name() const override { return base_->name(); }

  /// Like ScoreBatch, but a ScoringError thrown by the base model fails
  /// only the pairs it covered instead of the whole call: the failed
  /// chunk is re-scored pair by pair, surviving pairs keep their
  /// scores, and only successful scores enter the prediction cache.
  /// Errors other than ScoringError still propagate.
  BatchOutcome TryScoreBatch(std::span<const RecordPair> pairs) const;

  /// Seeds the prediction cache with a replayed score (no-op with the
  /// cache disabled — there is nowhere to put it). See
  /// PredictionCache::Prewarm for the first-touch-counts-as-miss
  /// accounting that keeps resumed runs bit-identical.
  void Prewarm(const PairKey& key, double score) const;

  PredictionCache::Stats cache_stats() const;
  const Options& options() const { return options_; }
  const Matcher* base() const { return base_; }

 private:
  /// Scores `pairs` through the base model, fanning chunks out over the
  /// pool when the batch is large enough. Results are ordered by input
  /// index regardless of which worker scored them. A ScoringError (or
  /// any other exception) from a pooled chunk is captured on the worker
  /// and rethrown here — never propagated through the pool.
  std::vector<double> ScoreMisses(const std::vector<RecordPair>& pairs) const;

  /// Fault-tolerant variant: per-pair ok flags instead of exceptions
  /// for ScoringError failures.
  void TryScoreMisses(const std::vector<RecordPair>& pairs,
                      std::vector<double>* scores, std::vector<uint8_t>* ok,
                      bool* budget_exhausted) const;

  /// Registry handles, resolved once in the constructor (all null when
  /// Options::metrics is null).
  struct MetricHandles {
    obs::Histogram* batch_size = nullptr;
    obs::Histogram* batch_latency_us = nullptr;
    obs::Counter* batches = nullptr;
    obs::Counter* pool_chunks = nullptr;
    obs::Counter* scores_computed = nullptr;
    /// Batches that found the view taken by a concurrent producer and
    /// fell back to the locked per-lookup path (shard contention
    /// indicator; always 0 for a single-threaded caller).
    obs::Counter* cache_contended = nullptr;
  };

  const Matcher* base_;
  Options options_;
  mutable PredictionCache cache_;
  /// Single-writer batched cache arm: the batch that wins `view_busy_`
  /// probes and inserts through `view_` (no shard locks on hits, one
  /// lock per shard at flush); losers — only possible with concurrent
  /// external callers — use the locked path and count cache_contended.
  mutable PredictionCache::View view_;
  mutable std::atomic<bool> view_busy_{false};
  MetricHandles metric_;
};

}  // namespace certa::models

#endif  // CERTA_MODELS_SCORING_ENGINE_H_
