#ifndef CERTA_MODELS_SCORING_ENGINE_H_
#define CERTA_MODELS_SCORING_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "models/matcher.h"
#include "obs/metrics.h"
#include "util/thread_pool.h"

namespace certa::models {

/// Content hash of a record pair, used as the prediction-cache key.
/// Two independent 64-bit FNV-1a/avalanche streams make accidental
/// collisions (which would silently return a wrong score) a non-issue:
/// ~2^-128 per pair of distinct inputs.
struct PairKey {
  uint64_t lo = 0;
  uint64_t hi = 0;

  bool operator==(const PairKey& other) const {
    return lo == other.lo && hi == other.hi;
  }
};

/// Hashes the pair's attribute values with side/value separators (the
/// same framing CachingMatcher uses for its string keys).
PairKey HashPair(const data::Record& u, const data::Record& v);

/// Hash functor for PairKey-keyed maps (cache shards, batch dedupe,
/// fault plans).
struct PairKeyHasher {
  size_t operator()(const PairKey& key) const {
    return static_cast<size_t>(key.lo ^ (key.hi * 0x9E3779B97F4A7C15ULL));
  }
};

/// Sharded, thread-safe score cache. Each shard has its own mutex and
/// map, so concurrent lookups from pool workers rarely contend. A shard
/// that exceeds its entry budget is cleared wholesale (same policy as
/// CachingMatcher), with the dropped entries counted as evictions.
class PredictionCache {
 public:
  struct Stats {
    long long hits = 0;
    long long misses = 0;
    long long evictions = 0;
  };

  PredictionCache(size_t num_shards, size_t max_entries_per_shard);

  /// Mirrors every hit/miss/eviction into the given registry counters
  /// (all may be null). The cache's own Stats stay authoritative — they
  /// feed CertaResult and must not depend on whether a registry is
  /// attached or enabled.
  void BindMetrics(obs::Counter* hits, obs::Counter* misses,
                   obs::Counter* evictions);

  /// True (and *score set) on a hit. Counts one hit or one miss —
  /// except on the *first* touch of a prewarmed entry, which returns
  /// the score but counts a miss (see Prewarm).
  bool Lookup(const PairKey& key, double* score);

  /// Stores the score; overwriting an existing entry is harmless
  /// (scores are deterministic). May evict a full shard first.
  void Insert(const PairKey& key, double score);

  /// Seeds the cache with a replayed (journal) score without touching
  /// the hit/miss counters. The entry is marked prewarmed: its first
  /// Lookup still counts as a miss (the run being resumed would have
  /// computed it there), so the counter stream of a resumed run is
  /// bit-identical to an uninterrupted one — only the base-model call
  /// is skipped. An existing entry is left untouched.
  void Prewarm(const PairKey& key, double score);

  Stats stats() const;
  size_t entry_count() const;

 private:
  struct Entry {
    double score = 0.0;
    /// Replayed, not yet touched: first Lookup counts a miss.
    bool prewarmed = false;
  };

  struct Shard {
    std::mutex mutex;
    std::unordered_map<PairKey, Entry, PairKeyHasher> map;
  };

  Shard& ShardFor(const PairKey& key) {
    // Mix both words (the hasher's output) before reducing: indexing by
    // `hi % shards` alone piles every key sharing `hi` into one shard
    // whenever the shard count is not a power of two that divides the
    // hash range evenly — and defeats sharding entirely for key sets
    // that vary only in `lo`.
    return *shards_[PairKeyHasher{}(key) % shards_.size()];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  size_t max_entries_per_shard_;
  std::atomic<long long> hits_{0};
  std::atomic<long long> misses_{0};
  std::atomic<long long> evictions_{0};
  obs::Counter* metric_hits_ = nullptr;
  obs::Counter* metric_misses_ = nullptr;
  obs::Counter* metric_evictions_ = nullptr;
};

/// The batched + cached + pooled scoring layer every hot path drains
/// through. Drops in anywhere a Matcher is expected:
///
///   - Score(u, v): cache probe, then one base-model call on a miss.
///   - ScoreBatch(pairs): dedupes identical pairs within the batch,
///     probes the cache for each unique pair, scores the misses through
///     the base model's ScoreBatch (split over the thread pool when one
///     is attached), then inserts the new scores.
///
/// Every returned score is bit-identical to base->Score(u, v): the
/// cache only ever stores values the deterministic base model produced,
/// and batching/pooling never changes the arithmetic of an individual
/// pair. Cache probes and insertions happen on the calling thread in
/// pair order, so hit/miss/eviction counters are deterministic too (for
/// a single-threaded caller); only the miss *computation* fans out.
class ScoringEngine : public Matcher {
 public:
  /// Durability hook: invoked once per freshly *computed* score (cache
  /// hits and prewarmed replays never fire it), sequentially on the
  /// calling thread in input order, after the score is known good. The
  /// write-ahead journal (src/persist) subscribes here; anything the
  /// observer durably records can be Prewarm()ed into a later engine to
  /// resume a killed job without re-paying the model call.
  using ScoreObserver = std::function<void(const PairKey&, double)>;

  struct Options {
    /// Disable to measure the raw batched path (or to bound memory).
    bool enable_cache = true;
    size_t cache_shards = 16;
    size_t max_cache_entries_per_shard = 1 << 16;
    /// Not owned; nullptr scores misses inline on the calling thread.
    util::ThreadPool* pool = nullptr;
    /// Batches smaller than this skip the pool (dispatch overhead would
    /// dominate the scoring work).
    size_t min_parallel_batch = 8;
    /// Pairs per pool task when fanning a batch out.
    size_t parallel_chunk = 16;
    /// Optional journal hook; empty = no observation overhead.
    ScoreObserver observer;
    /// Observability registry (not owned; nullptr = uninstrumented).
    /// Metric handles are resolved once at engine construction — see
    /// docs/OBSERVABILITY.md for the scoring.* catalog. Purely
    /// observational: scores, counters in CertaResult, and the call
    /// pattern are bit-identical with or without a registry.
    obs::MetricsRegistry* metrics = nullptr;
  };

  /// Does not take ownership of `base`, which must outlive the engine
  /// and be safe to score from multiple threads.
  ScoringEngine(const Matcher* base, Options options);
  explicit ScoringEngine(const Matcher* base)
      : ScoringEngine(base, Options()) {}

  /// Outcome of a fault-tolerant batch: scores[i] is meaningful only
  /// where ok[i] != 0. Failed pairs are never written to the cache.
  struct BatchOutcome {
    std::vector<double> scores;
    std::vector<uint8_t> ok;
    /// Input pairs whose score was lost to a ScoringError.
    size_t failures = 0;
    /// True when at least one failure was a BudgetExhausted — the
    /// caller should stop issuing work rather than degrade further.
    bool budget_exhausted = false;
  };

  double Score(const data::Record& u, const data::Record& v) const override;
  std::vector<double> ScoreBatch(
      std::span<const RecordPair> pairs) const override;
  std::string name() const override { return base_->name(); }

  /// Like ScoreBatch, but a ScoringError thrown by the base model fails
  /// only the pairs it covered instead of the whole call: the failed
  /// chunk is re-scored pair by pair, surviving pairs keep their
  /// scores, and only successful scores enter the prediction cache.
  /// Errors other than ScoringError still propagate.
  BatchOutcome TryScoreBatch(std::span<const RecordPair> pairs) const;

  /// Seeds the prediction cache with a replayed score (no-op with the
  /// cache disabled — there is nowhere to put it). See
  /// PredictionCache::Prewarm for the first-touch-counts-as-miss
  /// accounting that keeps resumed runs bit-identical.
  void Prewarm(const PairKey& key, double score) const;

  PredictionCache::Stats cache_stats() const;
  const Options& options() const { return options_; }
  const Matcher* base() const { return base_; }

 private:
  /// Scores `pairs` through the base model, fanning chunks out over the
  /// pool when the batch is large enough. Results are ordered by input
  /// index regardless of which worker scored them. A ScoringError (or
  /// any other exception) from a pooled chunk is captured on the worker
  /// and rethrown here — never propagated through the pool.
  std::vector<double> ScoreMisses(const std::vector<RecordPair>& pairs) const;

  /// Fault-tolerant variant: per-pair ok flags instead of exceptions
  /// for ScoringError failures.
  void TryScoreMisses(const std::vector<RecordPair>& pairs,
                      std::vector<double>* scores, std::vector<uint8_t>* ok,
                      bool* budget_exhausted) const;

  /// Registry handles, resolved once in the constructor (all null when
  /// Options::metrics is null).
  struct MetricHandles {
    obs::Histogram* batch_size = nullptr;
    obs::Histogram* batch_latency_us = nullptr;
    obs::Counter* batches = nullptr;
    obs::Counter* pool_chunks = nullptr;
    obs::Counter* scores_computed = nullptr;
  };

  const Matcher* base_;
  Options options_;
  mutable PredictionCache cache_;
  MetricHandles metric_;
};

}  // namespace certa::models

#endif  // CERTA_MODELS_SCORING_ENGINE_H_
