#include "models/trainer.h"

#include <unordered_map>

#include "ml/metrics.h"
#include "models/deeper_model.h"
#include "models/deepmatcher_model.h"
#include "models/ditto_model.h"
#include "models/svm_model.h"
#include "util/archive.h"
#include "util/logging.h"

namespace certa::models {

const std::vector<ModelKind>& AllModelKinds() {
  static const auto& kinds = *new std::vector<ModelKind>{
      ModelKind::kDeepEr, ModelKind::kDeepMatcher, ModelKind::kDitto};
  return kinds;
}

std::string ModelKindName(ModelKind kind) {
  switch (kind) {
    case ModelKind::kDeepEr:
      return "DeepER";
    case ModelKind::kDeepMatcher:
      return "DeepMatcher";
    case ModelKind::kDitto:
      return "Ditto";
    case ModelKind::kSvm:
      return "SVM";
  }
  return "?";
}

std::unique_ptr<Matcher> TrainMatcher(ModelKind kind,
                                      const data::Dataset& dataset,
                                      uint64_t seed) {
  std::unique_ptr<FeatureMatcher> model;
  switch (kind) {
    case ModelKind::kDeepEr:
      model = std::make_unique<DeepErModel>();
      break;
    case ModelKind::kDeepMatcher:
      model = std::make_unique<DeepMatcherModel>();
      break;
    case ModelKind::kDitto:
      model = std::make_unique<DittoModel>();
      break;
    case ModelKind::kSvm:
      model = std::make_unique<SvmModel>();
      break;
  }
  CERTA_CHECK(model != nullptr);
  model->Fit(dataset, seed);
  return model;
}

namespace {

std::unique_ptr<FeatureMatcher> MakeEmpty(ModelKind kind) {
  switch (kind) {
    case ModelKind::kDeepEr:
      return std::make_unique<DeepErModel>();
    case ModelKind::kDeepMatcher:
      return std::make_unique<DeepMatcherModel>();
    case ModelKind::kDitto:
      return std::make_unique<DittoModel>();
    case ModelKind::kSvm:
      return std::make_unique<SvmModel>();
  }
  return nullptr;
}

}  // namespace

bool SaveMatcher(const Matcher& matcher, ModelKind kind,
                 const std::string& path) {
  const auto* feature_matcher =
      dynamic_cast<const FeatureMatcher*>(&matcher);
  CERTA_CHECK(feature_matcher != nullptr)
      << "SaveMatcher supports TrainMatcher-produced models";
  TextArchive archive;
  archive.PutString("format", "certa-matcher-v1");
  archive.PutInt("kind", static_cast<long long>(kind));
  feature_matcher->SaveParameters(&archive);
  return archive.SaveToFile(path);
}

std::unique_ptr<Matcher> LoadMatcher(const std::string& path,
                                     ModelKind* kind) {
  TextArchive archive;
  if (!TextArchive::LoadFromFile(path, &archive)) return nullptr;
  std::string format;
  if (!archive.GetString("format", &format) ||
      format != "certa-matcher-v1") {
    return nullptr;
  }
  long long kind_value = 0;
  if (!archive.GetInt("kind", &kind_value) || kind_value < 0 ||
      kind_value > static_cast<long long>(ModelKind::kSvm)) {
    return nullptr;
  }
  ModelKind loaded_kind = static_cast<ModelKind>(kind_value);
  std::unique_ptr<FeatureMatcher> model = MakeEmpty(loaded_kind);
  if (model == nullptr || !model->LoadParameters(archive)) return nullptr;
  if (kind != nullptr) *kind = loaded_kind;
  return model;
}

double EvaluateF1(const Matcher& matcher, const data::Table& left,
                  const data::Table& right,
                  const std::vector<data::LabeledPair>& pairs) {
  std::vector<int> labels;
  std::vector<int> predictions;
  labels.reserve(pairs.size());
  predictions.reserve(pairs.size());
  for (const data::LabeledPair& pair : pairs) {
    labels.push_back(pair.label);
    predictions.push_back(matcher.Predict(left.record(pair.left_index),
                                          right.record(pair.right_index))
                              ? 1
                              : 0);
  }
  return ml::F1Score(labels, predictions);
}

CachingMatcher::CachingMatcher(const Matcher* base, size_t max_entries)
    : base_(base), max_entries_(max_entries) {
  CERTA_CHECK(base != nullptr);
}

double CachingMatcher::Score(const data::Record& u,
                             const data::Record& v) const {
  std::string key;
  size_t total = 2;
  for (const std::string& value : u.values) total += value.size() + 1;
  for (const std::string& value : v.values) total += value.size() + 1;
  key.reserve(total);
  for (const std::string& value : u.values) {
    key += value;
    key.push_back('\x1f');
  }
  key.push_back('\x1e');
  for (const std::string& value : v.values) {
    key += value;
    key.push_back('\x1f');
  }
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++hits_;
    return it->second;
  }
  if (cache_.size() >= max_entries_) cache_.clear();
  double score = base_->Score(u, v);
  cache_.emplace(std::move(key), score);
  ++misses_;
  return score;
}

}  // namespace certa::models
