#ifndef CERTA_MODELS_TRAINER_H_
#define CERTA_MODELS_TRAINER_H_

#include <memory>
#include <unordered_map>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "models/matcher.h"

namespace certa::models {

/// The three affected models of the paper's evaluation (Sect. 5.1).
enum class ModelKind {
  kDeepEr = 0,
  kDeepMatcher = 1,
  kDitto = 2,
  /// Classical linear-SVM matcher (not in the paper's trio; see
  /// SvmModel). Excluded from AllModelKinds so the reproduction benches
  /// match the paper's grids, but available through TrainMatcher.
  kSvm = 3,
};

/// The paper's three evaluated models, in presentation order.
const std::vector<ModelKind>& AllModelKinds();

/// Display name matching the paper's tables.
std::string ModelKindName(ModelKind kind);

/// Trains a fresh matcher of the given kind on `dataset.train`.
std::unique_ptr<Matcher> TrainMatcher(ModelKind kind,
                                      const data::Dataset& dataset,
                                      uint64_t seed = 42);

/// Persists a trained matcher created by TrainMatcher to a text-archive
/// file (model kind + head parameters). False on I/O failure.
bool SaveMatcher(const Matcher& matcher, ModelKind kind,
                 const std::string& path);

/// Restores a matcher saved by SaveMatcher. Returns nullptr (and leaves
/// `kind` untouched) on unreadable/corrupt files.
std::unique_ptr<Matcher> LoadMatcher(const std::string& path,
                                     ModelKind* kind);

/// F1 of hard predictions over a labelled pair set.
double EvaluateF1(const Matcher& matcher, const data::Table& left,
                  const data::Table& right,
                  const std::vector<data::LabeledPair>& pairs);

/// Memoizing decorator: explanation methods score the same perturbed
/// pairs repeatedly (lattice nodes recur across triangles; saliency and
/// counterfactual passes share inputs), so a value-keyed score cache
/// cuts most of the model-call cost. The cache resets itself when it
/// exceeds `max_entries` to bound memory.
class CachingMatcher : public Matcher {
 public:
  /// Does not take ownership of `base`, which must outlive this object.
  explicit CachingMatcher(const Matcher* base, size_t max_entries = 1 << 20);

  double Score(const data::Record& u, const data::Record& v) const override;
  std::string name() const override { return base_->name(); }

  /// Number of underlying model invocations (cache misses) so far.
  size_t miss_count() const { return misses_; }
  /// Number of Score calls served from the cache.
  size_t hit_count() const { return hits_; }

 private:
  const Matcher* base_;
  size_t max_entries_;
  mutable std::unordered_map<std::string, double> cache_;
  mutable size_t hits_ = 0;
  mutable size_t misses_ = 0;
};

}  // namespace certa::models

#endif  // CERTA_MODELS_TRAINER_H_
