#include "models/scoring_engine.h"

#include <algorithm>

#include "util/logging.h"

namespace certa::models {
namespace {

/// FNV-1a over a string with a per-stream basis, finished by the
/// caller; value separators keep ("ab","c") distinct from ("a","bc").
void MixValue(const std::string& value, uint64_t* hash) {
  for (char c : value) {
    *hash ^= static_cast<unsigned char>(c);
    *hash *= 0x100000001b3ULL;
  }
  *hash ^= 0x1f;
  *hash *= 0x100000001b3ULL;
}

uint64_t Avalanche(uint64_t hash) {
  hash ^= hash >> 33;
  hash *= 0xff51afd7ed558ccdULL;
  hash ^= hash >> 33;
  hash *= 0xc4ceb9fe1a85ec53ULL;
  hash ^= hash >> 33;
  return hash;
}

uint64_t HashSide(const data::Record& u, const data::Record& v,
                  uint64_t basis) {
  uint64_t hash = basis;
  for (const std::string& value : u.values) MixValue(value, &hash);
  hash ^= 0x1e;
  hash *= 0x100000001b3ULL;
  for (const std::string& value : v.values) MixValue(value, &hash);
  return Avalanche(hash);
}

}  // namespace

PairKey HashPair(const data::Record& u, const data::Record& v) {
  return {HashSide(u, v, 0xcbf29ce484222325ULL),
          HashSide(u, v, 0x6a09e667f3bcc908ULL)};
}

PredictionCache::PredictionCache(size_t num_shards,
                                 size_t max_entries_per_shard)
    : max_entries_per_shard_(std::max<size_t>(1, max_entries_per_shard)) {
  size_t count = std::max<size_t>(1, num_shards);
  shards_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

bool PredictionCache::Lookup(const PairKey& key, double* score) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  *score = it->second;
  return true;
}

void PredictionCache::Insert(const PairKey& key, double score) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.map.size() >= max_entries_per_shard_ &&
      shard.map.find(key) == shard.map.end()) {
    evictions_.fetch_add(static_cast<long long>(shard.map.size()),
                         std::memory_order_relaxed);
    shard.map.clear();
  }
  shard.map[key] = score;
}

PredictionCache::Stats PredictionCache::stats() const {
  return {hits_.load(std::memory_order_relaxed),
          misses_.load(std::memory_order_relaxed),
          evictions_.load(std::memory_order_relaxed)};
}

size_t PredictionCache::entry_count() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->map.size();
  }
  return total;
}

ScoringEngine::ScoringEngine(const Matcher* base, Options options)
    : base_(base),
      options_(options),
      cache_(options.cache_shards, options.max_cache_entries_per_shard) {
  CERTA_CHECK(base != nullptr);
}

double ScoringEngine::Score(const data::Record& u,
                            const data::Record& v) const {
  if (!options_.enable_cache) return base_->Score(u, v);
  PairKey key = HashPair(u, v);
  double score = 0.0;
  if (cache_.Lookup(key, &score)) return score;
  score = base_->Score(u, v);
  cache_.Insert(key, score);
  return score;
}

std::vector<double> ScoringEngine::ScoreMisses(
    const std::vector<RecordPair>& pairs) const {
  if (pairs.empty()) return {};
  util::ThreadPool* pool = options_.pool;
  if (pool == nullptr || pool->size() < 2 ||
      pairs.size() < options_.min_parallel_batch) {
    return base_->ScoreBatch(pairs);
  }
  const size_t chunk = std::max<size_t>(1, options_.parallel_chunk);
  const size_t num_chunks = (pairs.size() + chunk - 1) / chunk;
  std::vector<double> scores(pairs.size(), 0.0);
  pool->ParallelFor(num_chunks, [&](size_t c) {
    size_t begin = c * chunk;
    size_t end = std::min(pairs.size(), begin + chunk);
    std::span<const RecordPair> slice(pairs.data() + begin, end - begin);
    std::vector<double> chunk_scores = base_->ScoreBatch(slice);
    std::copy(chunk_scores.begin(), chunk_scores.end(),
              scores.begin() + static_cast<ptrdiff_t>(begin));
  });
  return scores;
}

std::vector<double> ScoringEngine::ScoreBatch(
    std::span<const RecordPair> pairs) const {
  std::vector<double> scores(pairs.size(), 0.0);
  if (pairs.empty()) return scores;

  // Dedupe by content hash: identical pairs in one batch are scored
  // once (even with the persistent cache disabled — lattice frontiers
  // and candidate scans repeat perturbations within a batch).
  // `slot[i]` is the unique-pair index serving input i.
  std::vector<PairKey> keys(pairs.size());
  std::vector<size_t> slot(pairs.size(), 0);
  struct KeyHasher {
    size_t operator()(const PairKey& key) const {
      return static_cast<size_t>(key.lo ^ (key.hi * 0x9E3779B97F4A7C15ULL));
    }
  };
  std::unordered_map<PairKey, size_t, KeyHasher> first_index;
  std::vector<size_t> unique_inputs;  // input index of each unique pair
  for (size_t i = 0; i < pairs.size(); ++i) {
    keys[i] = HashPair(*pairs[i].left, *pairs[i].right);
    auto [it, inserted] = first_index.emplace(keys[i], unique_inputs.size());
    if (inserted) unique_inputs.push_back(i);
    slot[i] = it->second;
  }

  // Cache probe phase (sequential, so counters stay deterministic).
  std::vector<double> unique_scores(unique_inputs.size(), 0.0);
  std::vector<RecordPair> miss_pairs;
  std::vector<size_t> miss_slots;
  for (size_t s = 0; s < unique_inputs.size(); ++s) {
    size_t input = unique_inputs[s];
    if (options_.enable_cache &&
        cache_.Lookup(keys[input], &unique_scores[s])) {
      continue;
    }
    miss_pairs.push_back(pairs[input]);
    miss_slots.push_back(s);
  }

  // Compute phase (possibly parallel), then sequential insert phase.
  std::vector<double> miss_scores = ScoreMisses(miss_pairs);
  for (size_t m = 0; m < miss_slots.size(); ++m) {
    unique_scores[miss_slots[m]] = miss_scores[m];
    if (options_.enable_cache) {
      cache_.Insert(keys[unique_inputs[miss_slots[m]]], miss_scores[m]);
    }
  }

  for (size_t i = 0; i < pairs.size(); ++i) scores[i] = unique_scores[slot[i]];
  return scores;
}

PredictionCache::Stats ScoringEngine::cache_stats() const {
  return cache_.stats();
}

}  // namespace certa::models
