#include "models/scoring_engine.h"

#include <algorithm>
#include <chrono>
#include <exception>

#include "models/resilience.h"
#include "util/logging.h"

namespace certa::models {
namespace {

/// FNV-1a over a string with a per-stream basis, finished by the
/// caller; value separators keep ("ab","c") distinct from ("a","bc").
void MixValue(const std::string& value, uint64_t* hash) {
  for (char c : value) {
    *hash ^= static_cast<unsigned char>(c);
    *hash *= 0x100000001b3ULL;
  }
  *hash ^= 0x1f;
  *hash *= 0x100000001b3ULL;
}

uint64_t Avalanche(uint64_t hash) {
  hash ^= hash >> 33;
  hash *= 0xff51afd7ed558ccdULL;
  hash ^= hash >> 33;
  hash *= 0xc4ceb9fe1a85ec53ULL;
  hash ^= hash >> 33;
  return hash;
}

uint64_t HashSide(const data::Record& u, const data::Record& v,
                  uint64_t basis) {
  uint64_t hash = basis;
  for (const std::string& value : u.values) MixValue(value, &hash);
  hash ^= 0x1e;
  hash *= 0x100000001b3ULL;
  for (const std::string& value : v.values) MixValue(value, &hash);
  return Avalanche(hash);
}

}  // namespace

PairKey HashPair(const data::Record& u, const data::Record& v) {
  return {HashSide(u, v, 0xcbf29ce484222325ULL),
          HashSide(u, v, 0x6a09e667f3bcc908ULL)};
}

PredictionCache::PredictionCache(size_t num_shards,
                                 size_t max_entries_per_shard)
    : max_entries_per_shard_(std::max<size_t>(1, max_entries_per_shard)) {
  size_t count = std::max<size_t>(1, num_shards);
  shards_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

void PredictionCache::BindMetrics(obs::Counter* hits, obs::Counter* misses,
                                  obs::Counter* evictions,
                                  obs::Counter* store_hits,
                                  obs::Counter* store_peer_hits) {
  metric_hits_ = hits;
  metric_misses_ = misses;
  metric_evictions_ = evictions;
  metric_store_hits_ = store_hits;
  metric_store_peer_hits_ = store_peer_hits;
}

void PredictionCache::CountStoreHit(bool peer) {
  store_hits_.fetch_add(1, std::memory_order_relaxed);
  if (metric_store_hits_ != nullptr) metric_store_hits_->Increment();
  if (peer) {
    store_peer_hits_.fetch_add(1, std::memory_order_relaxed);
    if (metric_store_peer_hits_ != nullptr) {
      metric_store_peer_hits_->Increment();
    }
  }
}

void PredictionCache::BindViewMetrics(obs::Counter* view_hits,
                                      obs::Counter* flush_locks) {
  metric_view_hits_ = view_hits;
  metric_flush_locks_ = flush_locks;
}

bool PredictionCache::Lookup(const PairKey& key, double* score) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (metric_misses_ != nullptr) metric_misses_->Increment();
    return false;
  }
  if (it->second.prewarmed) {
    // First touch of a replayed entry: the uninterrupted run would
    // have missed (then computed) here, so count a miss to keep the
    // counter stream identical; the saved base call is the whole point.
    it->second.prewarmed = false;
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (metric_misses_ != nullptr) metric_misses_->Increment();
  } else {
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (metric_hits_ != nullptr) metric_hits_->Increment();
  }
  *score = it->second.score;
  return true;
}

void PredictionCache::InsertLocked(Shard& shard, const PairKey& key,
                                   double score) {
  if (shard.map.size() >= max_entries_per_shard_ &&
      shard.map.find(key) == shard.map.end()) {
    evictions_.fetch_add(static_cast<long long>(shard.map.size()),
                         std::memory_order_relaxed);
    if (metric_evictions_ != nullptr) {
      metric_evictions_->Add(static_cast<long long>(shard.map.size()));
    }
    shard.map.clear();
  }
  shard.map[key] = Entry{score, false};
}

void PredictionCache::Insert(const PairKey& key, double score) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  InsertLocked(shard, key, score);
}

bool PredictionCache::View::Lookup(const PairKey& key, double* score) {
  auto it = local_.find(key);
  if (it != local_.end()) {
    // Lock-free hit: counts as an ordinary hit (the shards hold the
    // same deterministic score) plus the view_hits marker.
    cache_->hits_.fetch_add(1, std::memory_order_relaxed);
    if (cache_->metric_hits_ != nullptr) cache_->metric_hits_->Increment();
    if (cache_->metric_view_hits_ != nullptr) {
      cache_->metric_view_hits_->Increment();
    }
    *score = it->second;
    return true;
  }
  // Read through with the normal hit/miss (and prewarm first-touch)
  // accounting, then remember the score locally.
  if (!cache_->Lookup(key, score)) return false;
  RememberLocal(key, *score);
  return true;
}

void PredictionCache::View::Insert(const PairKey& key, double score) {
  RememberLocal(key, score);
  pending_.emplace_back(key, score);
}

void PredictionCache::View::RememberLocal(const PairKey& key, double score) {
  // The local table mirrors the shard budget; clearing it only costs
  // re-reads through the shards (deterministic: size-triggered).
  if (local_.size() >= cache_->max_entries_per_shard_) local_.clear();
  local_[key] = score;
}

void PredictionCache::View::Flush() {
  if (pending_.empty()) return;
  const size_t shards = cache_->shards_.size();
  if (by_shard_.size() != shards) by_shard_.resize(shards);
  for (const auto& entry : pending_) {
    by_shard_[cache_->ShardIndex(entry.first)].push_back(entry);
  }
  pending_.clear();
  for (size_t s = 0; s < shards; ++s) {
    std::vector<std::pair<PairKey, double>>& entries = by_shard_[s];
    if (entries.empty()) continue;
    if (cache_->metric_flush_locks_ != nullptr) {
      cache_->metric_flush_locks_->Increment();
    }
    Shard& shard = *cache_->shards_[s];
    std::lock_guard<std::mutex> lock(shard.mutex);
    // Per-shard insertion order is preserved, so eviction points (and
    // the eviction counters) match inserting each entry directly.
    for (const auto& [key, score] : entries) {
      cache_->InsertLocked(shard, key, score);
    }
    entries.clear();
  }
}

void PredictionCache::Prewarm(const PairKey& key, double score) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.map.size() >= max_entries_per_shard_ &&
      shard.map.find(key) == shard.map.end()) {
    // Respect the shard budget even while seeding; dropping a replayed
    // entry only costs a re-computation later.
    return;
  }
  shard.map.emplace(key, Entry{score, true});
}

PredictionCache::Stats PredictionCache::stats() const {
  return {hits_.load(std::memory_order_relaxed),
          misses_.load(std::memory_order_relaxed),
          evictions_.load(std::memory_order_relaxed),
          store_hits_.load(std::memory_order_relaxed),
          store_peer_hits_.load(std::memory_order_relaxed)};
}

size_t PredictionCache::entry_count() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->map.size();
  }
  return total;
}

ScoringEngine::ScoringEngine(const Matcher* base, Options options)
    : base_(base),
      options_(options),
      cache_(options.cache_shards, options.max_cache_entries_per_shard),
      view_(&cache_) {
  CERTA_CHECK(base != nullptr);
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *options_.metrics;
    metric_.batch_size =
        reg.histogram("scoring.batch.size", obs::SizeBuckets());
    metric_.batch_latency_us =
        reg.histogram("scoring.batch.latency_us", obs::LatencyBuckets());
    metric_.batches = reg.counter("scoring.batches");
    metric_.pool_chunks = reg.counter("scoring.pool.chunks");
    metric_.scores_computed = reg.counter("scoring.scores.computed");
    metric_.cache_contended = reg.counter("scoring.cache.contended_batches");
    cache_.BindMetrics(reg.counter("scoring.cache.hits"),
                       reg.counter("scoring.cache.misses"),
                       reg.counter("scoring.cache.evictions"),
                       reg.counter("scoring.cache.store_hits"),
                       reg.counter("scoring.cache.store_peer_hits"));
    cache_.BindViewMetrics(reg.counter("scoring.cache.view_hits"),
                           reg.counter("scoring.cache.flush_locks"));
  }
}

namespace {

/// Scoped ownership of the engine's batched cache view: the winning
/// batch probes/inserts lock-free and merges at scope exit (normal or
/// exceptional); concurrent batches fall back to the locked path.
class ViewLease {
 public:
  ViewLease(bool enable_cache, PredictionCache::View* view,
            std::atomic<bool>* busy, obs::Counter* contended)
      : view_(view), busy_(busy) {
    owned_ = enable_cache &&
             !busy_->exchange(true, std::memory_order_acq_rel);
    if (enable_cache && !owned_ && contended != nullptr) {
      contended->Increment();
    }
  }
  ~ViewLease() {
    if (owned_) {
      view_->Flush();
      busy_->store(false, std::memory_order_release);
    }
  }
  ViewLease(const ViewLease&) = delete;
  ViewLease& operator=(const ViewLease&) = delete;

  bool owned() const { return owned_; }

 private:
  PredictionCache::View* view_;
  std::atomic<bool>* busy_;
  bool owned_ = false;
};

}  // namespace

double ScoringEngine::Score(const data::Record& u,
                            const data::Record& v) const {
  if (!options_.enable_cache && !options_.observer &&
      !options_.store_probe && !options_.store_write) {
    return base_->Score(u, v);
  }
  PairKey key = HashPair(u, v);
  double score = 0.0;
  if (options_.enable_cache && cache_.Lookup(key, &score)) return score;
  if (options_.store_probe) {
    const int served = options_.store_probe(key, &score);
    if (served != 0) {
      // Store-served miss: same insertion (and hence eviction) sequence
      // as computing, minus the paid base call. The observer stays
      // silent — nothing fresh happened.
      cache_.CountStoreHit(/*peer=*/served == 2);
      if (options_.enable_cache) cache_.Insert(key, score);
      return score;
    }
  }
  score = base_->Score(u, v);
  if (metric_.scores_computed != nullptr) metric_.scores_computed->Increment();
  if (options_.enable_cache) cache_.Insert(key, score);
  if (options_.observer) options_.observer(key, score);
  if (options_.store_write) options_.store_write(key, score);
  return score;
}

std::vector<double> ScoringEngine::ScoreMisses(
    const std::vector<RecordPair>& pairs) const {
  if (pairs.empty()) return {};
  util::ThreadPool* pool = options_.pool;
  if (pool == nullptr || pool->size() < 2 ||
      pairs.size() < options_.min_parallel_batch) {
    return base_->ScoreBatch(pairs);
  }
  const size_t chunk = std::max<size_t>(1, options_.parallel_chunk);
  const size_t num_chunks = (pairs.size() + chunk - 1) / chunk;
  if (metric_.pool_chunks != nullptr) {
    metric_.pool_chunks->Add(static_cast<long long>(num_chunks));
  }
  std::vector<double> scores(pairs.size(), 0.0);
  // ParallelFor tasks must not throw (a worker has nowhere to put the
  // exception): capture the first one and rethrow on the calling
  // thread, after every chunk has finished.
  std::exception_ptr error;
  std::mutex error_mutex;
  pool->ParallelFor(pairs.size(), chunk, [&](size_t begin, size_t end) {
    try {
      std::span<const RecordPair> slice(pairs.data() + begin, end - begin);
      std::vector<double> chunk_scores = base_->ScoreBatch(slice);
      std::copy(chunk_scores.begin(), chunk_scores.end(),
                scores.begin() + static_cast<ptrdiff_t>(begin));
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (!error) error = std::current_exception();
    }
  });
  if (error) std::rethrow_exception(error);
  return scores;
}

void ScoringEngine::TryScoreMisses(const std::vector<RecordPair>& pairs,
                                   std::vector<double>* scores,
                                   std::vector<uint8_t>* ok,
                                   bool* budget_exhausted) const {
  scores->assign(pairs.size(), 0.0);
  ok->assign(pairs.size(), 0);
  if (pairs.empty()) return;
  std::atomic<bool> exhausted{false};

  // Scores [begin, end) with per-pair fault isolation: one batched base
  // call first, then pair-by-pair for the chunk the error poisoned.
  auto score_range = [&](size_t begin, size_t end) {
    std::span<const RecordPair> slice(pairs.data() + begin, end - begin);
    try {
      std::vector<double> chunk_scores = base_->ScoreBatch(slice);
      for (size_t i = 0; i < chunk_scores.size(); ++i) {
        (*scores)[begin + i] = chunk_scores[i];
        (*ok)[begin + i] = 1;
      }
      return;
    } catch (const BudgetExhausted&) {
      // The batch was rejected (it no longer fits the budget); the
      // per-pair loop below salvages what the remaining budget covers.
      exhausted.store(true, std::memory_order_relaxed);
    } catch (const ScoringError&) {
      // Fall through to per-pair isolation.
    }
    for (size_t i = begin; i < end; ++i) {
      try {
        (*scores)[i] = base_->Score(*pairs[i].left, *pairs[i].right);
        (*ok)[i] = 1;
      } catch (const BudgetExhausted&) {
        exhausted.store(true, std::memory_order_relaxed);
        return;
      } catch (const ScoringError&) {
        // This pair stays failed; keep scoring the rest.
      }
    }
  };

  util::ThreadPool* pool = options_.pool;
  if (pool == nullptr || pool->size() < 2 ||
      pairs.size() < options_.min_parallel_batch) {
    score_range(0, pairs.size());
  } else {
    const size_t chunk = std::max<size_t>(1, options_.parallel_chunk);
    const size_t num_chunks = (pairs.size() + chunk - 1) / chunk;
    if (metric_.pool_chunks != nullptr) {
      metric_.pool_chunks->Add(static_cast<long long>(num_chunks));
    }
    std::exception_ptr error;
    std::mutex error_mutex;
    pool->ParallelFor(pairs.size(), chunk, [&](size_t begin, size_t end) {
      try {
        score_range(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
      }
    });
    if (error) std::rethrow_exception(error);
  }
  *budget_exhausted = exhausted.load(std::memory_order_relaxed);
}

namespace {

/// Dedupe plan for one batch: identical pairs in one batch are scored
/// once (even with the persistent cache disabled — lattice frontiers
/// and candidate scans repeat perturbations within a batch).
/// `slot[i]` is the unique-pair index serving input i.
struct BatchPlan {
  std::vector<PairKey> keys;          // per input
  std::vector<size_t> slot;           // input -> unique-pair index
  std::vector<size_t> unique_inputs;  // unique-pair index -> first input
};

BatchPlan MakePlan(std::span<const RecordPair> pairs) {
  BatchPlan plan;
  plan.keys.resize(pairs.size());
  plan.slot.assign(pairs.size(), 0);
  std::unordered_map<PairKey, size_t, PairKeyHasher> first_index;
  for (size_t i = 0; i < pairs.size(); ++i) {
    plan.keys[i] = HashPair(*pairs[i].left, *pairs[i].right);
    auto [it, inserted] =
        first_index.emplace(plan.keys[i], plan.unique_inputs.size());
    if (inserted) plan.unique_inputs.push_back(i);
    plan.slot[i] = it->second;
  }
  return plan;
}

}  // namespace

std::vector<double> ScoringEngine::ScoreBatch(
    std::span<const RecordPair> pairs) const {
  std::vector<double> scores(pairs.size(), 0.0);
  if (pairs.empty()) return scores;
  // Time the batch only when a live registry will consume the sample —
  // with observability off the clock reads are skipped too.
  const bool timed = metric_.batch_latency_us != nullptr &&
                     options_.metrics->enabled();
  const auto batch_start = timed ? std::chrono::steady_clock::now()
                                 : std::chrono::steady_clock::time_point();
  if (metric_.batches != nullptr) metric_.batches->Increment();
  if (metric_.batch_size != nullptr) {
    metric_.batch_size->Record(static_cast<double>(pairs.size()));
  }
  BatchPlan plan = MakePlan(pairs);

  // One batch at a time owns the engine's thread-local-style view and
  // probes/inserts without touching shard locks until the final flush;
  // a losing concurrent batch takes the locked per-lookup path.
  ViewLease lease(options_.enable_cache, &view_, &view_busy_,
                  metric_.cache_contended);

  // Cache probe phase (sequential, so counters stay deterministic).
  // A miss the durable store can serve is remembered as a store fill:
  // it skips the compute phase but is inserted in the same relative
  // slot order as a computed miss, so the eviction sequence — and
  // hence every counter in CertaResult — is identical with the store
  // detached.
  std::vector<double> unique_scores(plan.unique_inputs.size(), 0.0);
  std::vector<RecordPair> miss_pairs;
  std::vector<size_t> fill_slots;          // ascending unique-slot order
  std::vector<uint8_t> fill_from_store;    // parallel to fill_slots
  for (size_t s = 0; s < plan.unique_inputs.size(); ++s) {
    size_t input = plan.unique_inputs[s];
    if (options_.enable_cache &&
        (lease.owned() ? view_.Lookup(plan.keys[input], &unique_scores[s])
                       : cache_.Lookup(plan.keys[input], &unique_scores[s]))) {
      continue;
    }
    if (options_.store_probe) {
      const int served =
          options_.store_probe(plan.keys[input], &unique_scores[s]);
      if (served != 0) {
        cache_.CountStoreHit(/*peer=*/served == 2);
        fill_slots.push_back(s);
        fill_from_store.push_back(1);
        continue;
      }
    }
    miss_pairs.push_back(pairs[input]);
    fill_slots.push_back(s);
    fill_from_store.push_back(0);
  }

  // Compute phase (possibly parallel), then sequential insert phase.
  // ScoreMisses throws on failure, so a failed batch never reaches the
  // insert loop — the cache only ever holds scores the model produced.
  std::vector<double> miss_scores = ScoreMisses(miss_pairs);
  size_t next_miss = 0;
  for (size_t f = 0; f < fill_slots.size(); ++f) {
    const size_t s = fill_slots[f];
    const bool from_store = fill_from_store[f] != 0;
    if (!from_store) unique_scores[s] = miss_scores[next_miss++];
    const PairKey& key = plan.keys[plan.unique_inputs[s]];
    if (options_.enable_cache) {
      if (lease.owned()) {
        view_.Insert(key, unique_scores[s]);
      } else {
        cache_.Insert(key, unique_scores[s]);
      }
    }
    if (from_store) continue;  // nothing fresh: observer/store stay quiet
    if (options_.observer) options_.observer(key, unique_scores[s]);
    if (options_.store_write) options_.store_write(key, unique_scores[s]);
  }

  for (size_t i = 0; i < pairs.size(); ++i) {
    scores[i] = unique_scores[plan.slot[i]];
  }
  if (metric_.scores_computed != nullptr) {
    metric_.scores_computed->Add(static_cast<long long>(miss_pairs.size()));
  }
  if (timed) {
    metric_.batch_latency_us->Record(static_cast<double>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - batch_start)
            .count()));
  }
  return scores;
}

ScoringEngine::BatchOutcome ScoringEngine::TryScoreBatch(
    std::span<const RecordPair> pairs) const {
  BatchOutcome out;
  out.scores.assign(pairs.size(), 0.0);
  out.ok.assign(pairs.size(), 0);
  if (pairs.empty()) return out;
  const bool timed = metric_.batch_latency_us != nullptr &&
                     options_.metrics->enabled();
  const auto batch_start = timed ? std::chrono::steady_clock::now()
                                 : std::chrono::steady_clock::time_point();
  if (metric_.batches != nullptr) metric_.batches->Increment();
  if (metric_.batch_size != nullptr) {
    metric_.batch_size->Record(static_cast<double>(pairs.size()));
  }
  BatchPlan plan = MakePlan(pairs);

  // Same single-owner view protocol as ScoreBatch.
  ViewLease lease(options_.enable_cache, &view_, &view_busy_,
                  metric_.cache_contended);

  // Probe phase mirrors ScoreBatch: store-served misses are recorded
  // as fills and inserted in slot order alongside computed misses, so
  // cache counters match a store-detached run exactly.
  std::vector<double> unique_scores(plan.unique_inputs.size(), 0.0);
  std::vector<uint8_t> unique_ok(plan.unique_inputs.size(), 0);
  std::vector<RecordPair> miss_pairs;
  std::vector<size_t> fill_slots;
  std::vector<uint8_t> fill_from_store;
  for (size_t s = 0; s < plan.unique_inputs.size(); ++s) {
    size_t input = plan.unique_inputs[s];
    if (options_.enable_cache &&
        (lease.owned() ? view_.Lookup(plan.keys[input], &unique_scores[s])
                       : cache_.Lookup(plan.keys[input], &unique_scores[s]))) {
      unique_ok[s] = 1;
      continue;
    }
    if (options_.store_probe) {
      const int served =
          options_.store_probe(plan.keys[input], &unique_scores[s]);
      if (served != 0) {
        cache_.CountStoreHit(/*peer=*/served == 2);
        fill_slots.push_back(s);
        fill_from_store.push_back(1);
        continue;
      }
    }
    miss_pairs.push_back(pairs[input]);
    fill_slots.push_back(s);
    fill_from_store.push_back(0);
  }

  std::vector<double> miss_scores;
  std::vector<uint8_t> miss_ok;
  TryScoreMisses(miss_pairs, &miss_scores, &miss_ok, &out.budget_exhausted);
  size_t next_miss = 0;
  for (size_t f = 0; f < fill_slots.size(); ++f) {
    const size_t s = fill_slots[f];
    const bool from_store = fill_from_store[f] != 0;
    if (!from_store) {
      const size_t m = next_miss++;
      if (!miss_ok[m]) continue;  // failed pairs never enter the cache
      unique_scores[s] = miss_scores[m];
    }
    unique_ok[s] = 1;
    const PairKey& key = plan.keys[plan.unique_inputs[s]];
    if (options_.enable_cache) {
      if (lease.owned()) {
        view_.Insert(key, unique_scores[s]);
      } else {
        cache_.Insert(key, unique_scores[s]);
      }
    }
    if (from_store) continue;
    if (options_.observer) options_.observer(key, unique_scores[s]);
    if (options_.store_write) options_.store_write(key, unique_scores[s]);
  }

  for (size_t i = 0; i < pairs.size(); ++i) {
    out.scores[i] = unique_scores[plan.slot[i]];
    out.ok[i] = unique_ok[plan.slot[i]];
    if (!out.ok[i]) ++out.failures;
  }
  if (metric_.scores_computed != nullptr) {
    long long computed = 0;
    for (uint8_t flag : miss_ok) computed += flag;
    metric_.scores_computed->Add(computed);
  }
  if (timed) {
    metric_.batch_latency_us->Record(static_cast<double>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - batch_start)
            .count()));
  }
  return out;
}

void ScoringEngine::Prewarm(const PairKey& key, double score) const {
  if (!options_.enable_cache) return;
  cache_.Prewarm(key, score);
}

PredictionCache::Stats ScoringEngine::cache_stats() const {
  return cache_.stats();
}

}  // namespace certa::models
