#include "models/ditto_model.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "text/similarity.h"
#include "text/tokenizer.h"

namespace certa::models {
namespace {

constexpr int kNgramDim = 128;

/// Ditto-style domain knowledge injection: numeric tokens are rounded
/// and re-serialized so "379.72" and "379.7" align; pure codes keep
/// their shape. Mirrors Ditto's number normalization (Sect. 3.3 of the
/// Ditto paper).
std::string NormalizeToken(const std::string& token) {
  double value = 0.0;
  if (text::TryParseNumeric(token, &value)) {
    double rounded = std::round(value * 10.0) / 10.0;
    // Trim trailing ".0" for integer-like values.
    if (rounded == std::round(rounded)) {
      return std::to_string(static_cast<long long>(std::llround(rounded)));
    }
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.1f", rounded);
    return buffer;
  }
  return token;
}

/// Serialized token sequence of a record, with per-attribute [COL]
/// markers (index-based when no schema is available).
std::vector<std::string> SerializedTokens(const data::Record& record) {
  std::vector<std::string> tokens;
  for (size_t a = 0; a < record.values.size(); ++a) {
    tokens.push_back("[COL" + std::to_string(a) + "]");
    if (text::IsMissing(record.values[a])) continue;
    for (std::string& token : text::Tokenize(record.values[a])) {
      tokens.push_back(NormalizeToken(token));
    }
  }
  return tokens;
}

/// Soft alignment score: mean over tokens of `a` of the best pairwise
/// token similarity in `b` — the cross-attention analogue. Marker
/// tokens align exactly with themselves (anchoring attribute spans).
double SoftAlignment(const std::vector<std::string>& a,
                     const std::vector<std::string>& b) {
  if (a.empty() || b.empty()) return 0.0;
  double total = 0.0;
  int counted = 0;
  for (const std::string& token_a : a) {
    if (token_a.size() >= 2 && token_a[0] == '[') continue;  // skip markers
    double best = 0.0;
    for (const std::string& token_b : b) {
      if (token_b.size() >= 2 && token_b[0] == '[') continue;
      if (token_a == token_b) {
        best = 1.0;
        break;
      }
      best = std::max(best, text::JaroWinklerSimilarity(token_a, token_b));
    }
    total += best;
    ++counted;
  }
  return counted > 0 ? total / counted : 0.0;
}

/// Fraction of numeric tokens of `a` that have an exact normalized
/// numeric counterpart in `b` (Ditto's span typing for numbers).
double NumericAgreement(const std::vector<std::string>& a,
                        const std::vector<std::string>& b) {
  int numeric = 0;
  int agreed = 0;
  for (const std::string& token_a : a) {
    double value_a = 0.0;
    if (!text::TryParseNumeric(token_a, &value_a)) continue;
    ++numeric;
    for (const std::string& token_b : b) {
      double value_b = 0.0;
      if (text::TryParseNumeric(token_b, &value_b) &&
          text::NumericSimilarity(value_a, value_b) > 0.98) {
        ++agreed;
        break;
      }
    }
  }
  return numeric > 0 ? static_cast<double>(agreed) / numeric : 0.5;
}

/// Everything Features needs from one record: the serialized token
/// sequence and the hashed 4-gram embedding (CharNgramHashes lands on
/// the same buckets/signs as embedding the gram strings, without the
/// per-gram substr allocations).
struct RecordRep {
  std::vector<std::string> seq;
  std::vector<std::string> unique_seq;
  ml::Vector gram_embed;
};

RecordRep MakeRep(const data::Record& record,
                  const text::HashingVectorizer& ngram_embedder) {
  RecordRep rep;
  rep.seq = SerializedTokens(record);
  rep.unique_seq = text::UniqueTokens(rep.seq);
  std::vector<uint64_t> hashes;
  for (const std::string& value : record.values) {
    if (text::IsMissing(value)) continue;
    std::vector<uint64_t> value_hashes =
        text::CharNgramHashes(value, 4, ngram_embedder.seed());
    hashes.insert(hashes.end(), value_hashes.begin(), value_hashes.end());
  }
  rep.gram_embed = ngram_embedder.TransformHashedNormalized(hashes);
  return rep;
}

ml::Vector PairFeatures(const RecordRep& u, const RecordRep& v) {
  double align_uv = SoftAlignment(u.seq, v.seq);
  double align_vu = SoftAlignment(v.seq, u.seq);

  return {
      align_uv,
      align_vu,
      std::min(align_uv, align_vu),
      text::CosineSimilarity(u.gram_embed, v.gram_embed),
      text::JaccardOfUnique(u.unique_seq, v.unique_seq),
      NumericAgreement(u.seq, v.seq),
  };
}

}  // namespace

DittoModel::DittoModel()
    : FeatureMatcher(Head::kLogistic),
      ngram_embedder_(kNgramDim, /*seed=*/0xD1770) {}

std::string DittoModel::Serialize(const data::Schema& schema,
                                  const data::Record& record) {
  std::string out;
  for (int a = 0; a < schema.size(); ++a) {
    if (a > 0) out.push_back(' ');
    out += "[COL] " + schema.name(a) + " [VAL]";
    if (!text::IsMissing(record.values[a])) {
      out.push_back(' ');
      out += record.values[a];
    }
  }
  return out;
}

ml::Vector DittoModel::Features(const data::Record& u,
                                const data::Record& v) const {
  return PairFeatures(MakeRep(u, ngram_embedder_),
                      MakeRep(v, ngram_embedder_));
}

std::vector<ml::Vector> DittoModel::FeaturesBatch(
    std::span<const RecordPair> pairs) const {
  std::vector<RecordRep> reps;
  std::unordered_map<const data::Record*, size_t> rep_index;
  auto rep_of = [&](const data::Record* record) {
    auto [it, inserted] = rep_index.try_emplace(record, reps.size());
    if (inserted) reps.push_back(MakeRep(*record, ngram_embedder_));
    return it->second;
  };
  std::vector<ml::Vector> rows;
  rows.reserve(pairs.size());
  for (const RecordPair& pair : pairs) {
    size_t left = rep_of(pair.left);
    size_t right = rep_of(pair.right);
    rows.push_back(PairFeatures(reps[left], reps[right]));
  }
  return rows;
}

}  // namespace certa::models
