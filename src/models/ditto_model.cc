#include "models/ditto_model.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "text/simd.h"
#include "text/similarity.h"
#include "text/tokenizer.h"

namespace certa::models {
namespace {

constexpr int kNgramDim = 128;

/// Ditto-style domain knowledge injection: numeric tokens are rounded
/// and re-serialized so "379.72" and "379.7" align; pure codes keep
/// their shape. Mirrors Ditto's number normalization (Sect. 3.3 of the
/// Ditto paper).
std::string NormalizeToken(const std::string& token) {
  double value = 0.0;
  if (text::TryParseNumeric(token, &value)) {
    double rounded = std::round(value * 10.0) / 10.0;
    // Trim trailing ".0" for integer-like values.
    if (rounded == std::round(rounded)) {
      return std::to_string(static_cast<long long>(std::llround(rounded)));
    }
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.1f", rounded);
    return buffer;
  }
  return token;
}

/// Serialized token sequence of a record, with per-attribute [COL]
/// markers (index-based when no schema is available).
std::vector<std::string> SerializedTokens(const data::Record& record) {
  std::vector<std::string> tokens;
  for (size_t a = 0; a < record.values.size(); ++a) {
    tokens.push_back("[COL" + std::to_string(a) + "]");
    if (text::IsMissing(record.values[a])) continue;
    for (std::string& token : text::Tokenize(record.values[a])) {
      tokens.push_back(NormalizeToken(token));
    }
  }
  return tokens;
}

/// Soft alignment score: mean over tokens of `a` of the best pairwise
/// token similarity in `b` — the cross-attention analogue. Marker
/// tokens align exactly with themselves (anchoring attribute spans).
double SoftAlignment(const std::vector<std::string>& a,
                     const std::vector<std::string>& b) {
  if (a.empty() || b.empty()) return 0.0;
  double total = 0.0;
  int counted = 0;
  for (const std::string& token_a : a) {
    if (token_a.size() >= 2 && token_a[0] == '[') continue;  // skip markers
    double best = 0.0;
    for (const std::string& token_b : b) {
      if (token_b.size() >= 2 && token_b[0] == '[') continue;
      if (token_a == token_b) {
        best = 1.0;
        break;
      }
      best = std::max(best, text::JaroWinklerSimilarity(token_a, token_b));
    }
    total += best;
    ++counted;
  }
  return counted > 0 ? total / counted : 0.0;
}

/// Fraction of numeric tokens of `a` that have an exact normalized
/// numeric counterpart in `b` (Ditto's span typing for numbers).
double NumericAgreement(const std::vector<std::string>& a,
                        const std::vector<std::string>& b) {
  int numeric = 0;
  int agreed = 0;
  for (const std::string& token_a : a) {
    double value_a = 0.0;
    if (!text::TryParseNumeric(token_a, &value_a)) continue;
    ++numeric;
    for (const std::string& token_b : b) {
      double value_b = 0.0;
      if (text::TryParseNumeric(token_b, &value_b) &&
          text::NumericSimilarity(value_a, value_b) > 0.98) {
        ++agreed;
        break;
      }
    }
  }
  return numeric > 0 ? static_cast<double>(agreed) / numeric : 0.5;
}

/// Everything Features needs from one record: the serialized token
/// sequence and the hashed 4-gram embedding (CharNgramHashes lands on
/// the same buckets/signs as embedding the gram strings, without the
/// per-gram substr allocations).
struct RecordRep {
  std::vector<std::string> seq;
  std::vector<std::string> unique_seq;
  ml::Vector gram_embed;
};

RecordRep MakeRep(const data::Record& record,
                  const text::HashingVectorizer& ngram_embedder) {
  RecordRep rep;
  rep.seq = SerializedTokens(record);
  rep.unique_seq = text::UniqueTokens(rep.seq);
  std::vector<uint64_t> hashes;
  for (const std::string& value : record.values) {
    if (text::IsMissing(value)) continue;
    std::vector<uint64_t> value_hashes =
        text::CharNgramHashes(value, 4, ngram_embedder.seed());
    hashes.insert(hashes.end(), value_hashes.begin(), value_hashes.end());
  }
  rep.gram_embed = ngram_embedder.TransformHashedNormalized(hashes);
  return rep;
}

ml::Vector PairFeatures(const RecordRep& u, const RecordRep& v) {
  double align_uv = SoftAlignment(u.seq, v.seq);
  double align_vu = SoftAlignment(v.seq, u.seq);

  return {
      align_uv,
      align_vu,
      std::min(align_uv, align_vu),
      text::CosineSimilarity(u.gram_embed, v.gram_embed),
      text::JaccardOfUnique(u.unique_seq, v.unique_seq),
      NumericAgreement(u.seq, v.seq),
  };
}

// --- batch-local memoization -------------------------------------------
//
// SoftAlignment is the model's cost center: O(|u|·|v|) Jaro-Winkler
// calls per pair. Within one ScoreBatch the same records (and the same
// tokens) recur constantly — a lattice level perturbs one record's
// attributes, every pair shares the pivot side — so FeaturesBatch
// interns the batch's tokens once and memoizes every distinct
// Jaro-Winkler evaluation. Identical token strings get identical ids,
// and the memo stores the exact double JaroWinklerSimilarity returned,
// so the features are bit-identical to the uninterned per-pair path
// (which Features() keeps using).

/// Distinct tokens of one batch: id -> string/marker-flag/parsed-number.
struct TokenTable {
  std::unordered_map<std::string, int> index;
  std::vector<const std::string*> token;  // stable: points at map keys
  std::vector<uint8_t> marker;
  std::vector<uint8_t> numeric_ok;
  std::vector<double> numeric_val;

  int Intern(const std::string& s) {
    auto [it, inserted] = index.try_emplace(s, static_cast<int>(token.size()));
    if (inserted) {
      token.push_back(&it->first);
      marker.push_back(s.size() >= 2 && s[0] == '[' ? 1 : 0);
      double value = 0.0;
      uint8_t ok = text::TryParseNumeric(s, &value) ? 1 : 0;
      numeric_ok.push_back(ok);
      numeric_val.push_back(ok ? value : 0.0);
    }
    return it->second;
  }
  size_t size() const { return token.size(); }
};

/// Directional (a, b) -> JaroWinklerSimilarity(a, b) memo: a dense
/// matrix while the batch vocabulary is small, a hash map beyond that.
class JaroWinklerMemo {
 public:
  explicit JaroWinklerMemo(size_t vocab) : vocab_(vocab) {
    if (vocab_ <= kDenseLimit) dense_.assign(vocab_ * vocab_, -1.0);
  }

  double Get(const TokenTable& table, int a, int b) {
    if (!dense_.empty()) {
      double& slot = dense_[static_cast<size_t>(a) * vocab_ +
                            static_cast<size_t>(b)];
      if (slot < 0.0) {
        slot = text::JaroWinklerSimilarity(*table.token[a], *table.token[b]);
      }
      return slot;
    }
    uint64_t key = (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
                   static_cast<uint32_t>(b);
    auto [it, inserted] = sparse_.try_emplace(key, 0.0);
    if (inserted) {
      it->second =
          text::JaroWinklerSimilarity(*table.token[a], *table.token[b]);
    }
    return it->second;
  }

 private:
  static constexpr size_t kDenseLimit = 1024;  // 8 MiB of doubles at most
  size_t vocab_;
  std::vector<double> dense_;
  std::unordered_map<uint64_t, double> sparse_;
};

/// (token id, rep index) -> the best Jaro-Winkler of that token against
/// the rep's non-marker tokens. In the engine's hot batches most pairs
/// share one side (every lattice cell pairs a perturbation with the
/// same pivot record), so the inner loop of SoftAlignment re-runs over
/// the same sequence for every pair; caching its result per (token,
/// sequence) collapses alignment to one add per token after the first
/// pair. The cached value is computed by the exact inner loop it
/// replaces, so features stay bit-identical.
class BestMatchMemo {
 public:
  BestMatchMemo(size_t vocab, size_t reps) : vocab_(vocab), reps_(reps) {
    if (vocab_ * reps_ <= kDenseLimit) dense_.assign(vocab_ * reps_, -1.0);
  }

  double Get(const TokenTable& table, JaroWinklerMemo* jw, int id_a,
             size_t rep, const std::vector<int>& rep_ids) {
    double* slot = nullptr;
    if (!dense_.empty()) {
      slot = &dense_[static_cast<size_t>(id_a) * reps_ + rep];
      if (*slot >= 0.0) return *slot;
    } else {
      uint64_t key = (static_cast<uint64_t>(static_cast<uint32_t>(id_a))
                      << 32) |
                     static_cast<uint32_t>(rep);
      auto [it, inserted] = sparse_.try_emplace(key, -1.0);
      if (!inserted) return it->second;
      slot = &it->second;
    }
    // The original SoftAlignment inner loop, verbatim.
    double best = 0.0;
    for (int id_b : rep_ids) {
      if (table.marker[id_b]) continue;
      if (id_a == id_b) {
        best = 1.0;
        break;
      }
      best = std::max(best, jw->Get(table, id_a, id_b));
    }
    *slot = best;
    return best;
  }

 private:
  static constexpr size_t kDenseLimit = size_t{1} << 22;  // 32 MiB cap
  size_t vocab_;
  size_t reps_;
  std::vector<double> dense_;
  std::unordered_map<uint64_t, double> sparse_;
};

/// SoftAlignment over interned sequences: same per-token best-match
/// semantics (exact id match short-circuits to 1.0), with the inner
/// loop served from the per-(token, rep) memo.
double SoftAlignmentInterned(const std::vector<int>& a, size_t rep_b,
                             const std::vector<int>& b,
                             const TokenTable& table, JaroWinklerMemo* jw,
                             BestMatchMemo* best_memo) {
  if (a.empty() || b.empty()) return 0.0;
  double total = 0.0;
  int counted = 0;
  for (int id_a : a) {
    if (table.marker[id_a]) continue;
    total += best_memo->Get(table, jw, id_a, rep_b, b);
    ++counted;
  }
  return counted > 0 ? total / counted : 0.0;
}

/// JaccardOfUnique over interned sequences: distinct ids correspond
/// one-to-one with distinct token strings, so the intersection and
/// union cardinalities — and therefore the coefficient — are identical
/// to the sorted-unique-string computation in text/similarity.cc.
double JaccardOfUniqueIds(const std::vector<uint64_t>& a,
                          const std::vector<uint64_t>& b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t intersection =
      text::simd::SortedIntersectionCount(a.data(), a.size(), b.data(),
                                          b.size());
  size_t union_size = a.size() + b.size() - intersection;
  if (union_size == 0) return 1.0;
  return static_cast<double>(intersection) / static_cast<double>(union_size);
}

/// NumericAgreement over interned sequences with the per-token parse
/// done once at interning time.
double NumericAgreementInterned(const std::vector<int>& a,
                                const std::vector<int>& b,
                                const TokenTable& table) {
  int numeric = 0;
  int agreed = 0;
  for (int id_a : a) {
    if (!table.numeric_ok[id_a]) continue;
    ++numeric;
    for (int id_b : b) {
      if (table.numeric_ok[id_b] &&
          text::NumericSimilarity(table.numeric_val[id_a],
                                  table.numeric_val[id_b]) > 0.98) {
        ++agreed;
        break;
      }
    }
  }
  return numeric > 0 ? static_cast<double>(agreed) / numeric : 0.5;
}

}  // namespace

DittoModel::DittoModel()
    : FeatureMatcher(Head::kLogistic),
      ngram_embedder_(kNgramDim, /*seed=*/0xD1770) {}

std::string DittoModel::Serialize(const data::Schema& schema,
                                  const data::Record& record) {
  std::string out;
  for (int a = 0; a < schema.size(); ++a) {
    if (a > 0) out.push_back(' ');
    out += "[COL] " + schema.name(a) + " [VAL]";
    if (!text::IsMissing(record.values[a])) {
      out.push_back(' ');
      out += record.values[a];
    }
  }
  return out;
}

ml::Vector DittoModel::Features(const data::Record& u,
                                const data::Record& v) const {
  return PairFeatures(MakeRep(u, ngram_embedder_),
                      MakeRep(v, ngram_embedder_));
}

std::vector<ml::Vector> DittoModel::FeaturesBatch(
    std::span<const RecordPair> pairs) const {
  // Pass 1: one rep per distinct record (by address), tokens interned
  // into the batch table as each rep is built.
  std::vector<RecordRep> reps;
  std::vector<std::vector<int>> rep_ids;
  std::vector<std::vector<uint64_t>> rep_unique_ids;
  TokenTable table;
  std::unordered_map<const data::Record*, size_t> rep_index;
  auto rep_of = [&](const data::Record* record) {
    auto [it, inserted] = rep_index.try_emplace(record, reps.size());
    if (inserted) {
      reps.push_back(MakeRep(*record, ngram_embedder_));
      std::vector<int> ids;
      ids.reserve(reps.back().seq.size());
      for (const std::string& token : reps.back().seq) {
        ids.push_back(table.Intern(token));
      }
      // Sorted unique ids stand in for the sorted unique token strings:
      // same distinct elements, so the same Jaccard cardinalities.
      std::vector<uint64_t> unique_ids(ids.begin(), ids.end());
      std::sort(unique_ids.begin(), unique_ids.end());
      unique_ids.erase(std::unique(unique_ids.begin(), unique_ids.end()),
                       unique_ids.end());
      rep_ids.push_back(std::move(ids));
      rep_unique_ids.push_back(std::move(unique_ids));
    }
    return it->second;
  };
  std::vector<std::pair<size_t, size_t>> pair_reps;
  pair_reps.reserve(pairs.size());
  for (const RecordPair& pair : pairs) {
    size_t left = rep_of(pair.left);
    size_t right = rep_of(pair.right);
    pair_reps.emplace_back(left, right);
  }

  // Pass 2: features through the batch-wide Jaro-Winkler memo — every
  // distinct (token, token) evaluation is paid once per batch instead
  // of once per pair. Values are bit-identical to PairFeatures.
  JaroWinklerMemo memo(table.size());
  BestMatchMemo best_memo(table.size(), reps.size());
  std::vector<ml::Vector> rows;
  rows.reserve(pairs.size());
  for (const auto& [left, right] : pair_reps) {
    const RecordRep& u = reps[left];
    const RecordRep& v = reps[right];
    const std::vector<int>& u_ids = rep_ids[left];
    const std::vector<int>& v_ids = rep_ids[right];
    double align_uv =
        SoftAlignmentInterned(u_ids, right, v_ids, table, &memo, &best_memo);
    double align_vu =
        SoftAlignmentInterned(v_ids, left, u_ids, table, &memo, &best_memo);
    rows.push_back({
        align_uv,
        align_vu,
        std::min(align_uv, align_vu),
        text::CosineSimilarity(u.gram_embed, v.gram_embed),
        JaccardOfUniqueIds(rep_unique_ids[left], rep_unique_ids[right]),
        NumericAgreementInterned(u_ids, v_ids, table),
    });
  }
  return rows;
}

}  // namespace certa::models
