#include "models/deeper_model.h"

#include <algorithm>
#include <unordered_map>

#include "text/similarity.h"
#include "text/tokenizer.h"

namespace certa::models {
namespace {

constexpr int kWordDim = 96;
constexpr int kNgramDim = 64;

/// Fuses every attribute value of the record into one token sequence —
/// DeepER's "tuple as a sentence" view.
std::vector<std::string> RecordTokens(const data::Record& record) {
  std::vector<std::string> tokens;
  for (const std::string& value : record.values) {
    if (text::IsMissing(value)) continue;
    std::vector<std::string> attr_tokens = text::Tokenize(value);
    tokens.insert(tokens.end(), attr_tokens.begin(), attr_tokens.end());
  }
  return tokens;
}

/// Hashed counterpart of the record's character-trigram multiset; the
/// hashes feed TransformHashedNormalized, which lands on the same
/// buckets/signs as embedding the gram strings (no per-gram substr).
std::vector<uint64_t> RecordNgramHashes(const data::Record& record,
                                        uint64_t seed) {
  std::vector<uint64_t> hashes;
  for (const std::string& value : record.values) {
    if (text::IsMissing(value)) continue;
    std::vector<uint64_t> value_hashes = text::CharNgramHashes(value, 3, seed);
    hashes.insert(hashes.end(), value_hashes.begin(), value_hashes.end());
  }
  return hashes;
}

/// Everything Features needs from one record, computed once per record
/// instead of once per pair.
struct RecordRep {
  std::vector<std::string> tokens;
  std::vector<std::string> unique_tokens;
  ml::Vector word_embed;
  ml::Vector gram_embed;
};

RecordRep MakeRep(const data::Record& record,
                  const text::HashingVectorizer& word_embedder,
                  const text::HashingVectorizer& ngram_embedder) {
  RecordRep rep;
  rep.tokens = RecordTokens(record);
  rep.unique_tokens = text::UniqueTokens(rep.tokens);
  rep.word_embed = word_embedder.TransformNormalized(rep.tokens);
  rep.gram_embed = ngram_embedder.TransformHashedNormalized(
      RecordNgramHashes(record, ngram_embedder.seed()));
  return rep;
}

ml::Vector PairFeatures(const RecordRep& u, const RecordRep& v) {
  double size_u = static_cast<double>(u.tokens.size());
  double size_v = static_cast<double>(v.tokens.size());
  double length_ratio =
      size_u > 0.0 && size_v > 0.0
          ? std::min(size_u, size_v) / std::max(size_u, size_v)
          : 0.0;

  return {
      text::CosineSimilarity(u.word_embed, v.word_embed),
      text::CosineSimilarity(u.gram_embed, v.gram_embed),
      text::JaccardOfUnique(u.unique_tokens, v.unique_tokens),
      text::OverlapOfUnique(u.unique_tokens, v.unique_tokens),
      length_ratio,
  };
}

}  // namespace

DeepErModel::DeepErModel()
    : FeatureMatcher(Head::kLogistic),
      word_embedder_(kWordDim, /*seed=*/0xD33Bu),
      ngram_embedder_(kNgramDim, /*seed=*/0x36AA) {}

ml::Vector DeepErModel::Features(const data::Record& u,
                                 const data::Record& v) const {
  return PairFeatures(MakeRep(u, word_embedder_, ngram_embedder_),
                      MakeRep(v, word_embedder_, ngram_embedder_));
}

std::vector<ml::Vector> DeepErModel::FeaturesBatch(
    std::span<const RecordPair> pairs) const {
  std::vector<RecordRep> reps;
  std::unordered_map<const data::Record*, size_t> rep_index;
  auto rep_of = [&](const data::Record* record) {
    auto [it, inserted] = rep_index.try_emplace(record, reps.size());
    if (inserted) reps.push_back(MakeRep(*record, word_embedder_,
                                         ngram_embedder_));
    return it->second;
  };
  std::vector<ml::Vector> rows;
  rows.reserve(pairs.size());
  for (const RecordPair& pair : pairs) {
    size_t left = rep_of(pair.left);
    size_t right = rep_of(pair.right);
    rows.push_back(PairFeatures(reps[left], reps[right]));
  }
  return rows;
}

}  // namespace certa::models
