#include "models/deeper_model.h"

#include <algorithm>

#include "text/similarity.h"
#include "text/tokenizer.h"

namespace certa::models {
namespace {

constexpr int kWordDim = 96;
constexpr int kNgramDim = 64;

/// Fuses every attribute value of the record into one token sequence —
/// DeepER's "tuple as a sentence" view.
std::vector<std::string> RecordTokens(const data::Record& record) {
  std::vector<std::string> tokens;
  for (const std::string& value : record.values) {
    if (text::IsMissing(value)) continue;
    std::vector<std::string> attr_tokens = text::Tokenize(value);
    tokens.insert(tokens.end(), attr_tokens.begin(), attr_tokens.end());
  }
  return tokens;
}

std::vector<std::string> RecordNgrams(const data::Record& record) {
  std::vector<std::string> grams;
  for (const std::string& value : record.values) {
    if (text::IsMissing(value)) continue;
    std::vector<std::string> value_grams = text::CharNgrams(value, 3);
    grams.insert(grams.end(), value_grams.begin(), value_grams.end());
  }
  return grams;
}

}  // namespace

DeepErModel::DeepErModel()
    : FeatureMatcher(Head::kLogistic),
      word_embedder_(kWordDim, /*seed=*/0xD33Bu),
      ngram_embedder_(kNgramDim, /*seed=*/0x36AA) {}

ml::Vector DeepErModel::Features(const data::Record& u,
                                 const data::Record& v) const {
  std::vector<std::string> tokens_u = RecordTokens(u);
  std::vector<std::string> tokens_v = RecordTokens(v);
  ml::Vector embed_u = word_embedder_.TransformNormalized(tokens_u);
  ml::Vector embed_v = word_embedder_.TransformNormalized(tokens_v);
  ml::Vector grams_u = ngram_embedder_.TransformNormalized(RecordNgrams(u));
  ml::Vector grams_v = ngram_embedder_.TransformNormalized(RecordNgrams(v));

  double size_u = static_cast<double>(tokens_u.size());
  double size_v = static_cast<double>(tokens_v.size());
  double length_ratio =
      size_u > 0.0 && size_v > 0.0
          ? std::min(size_u, size_v) / std::max(size_u, size_v)
          : 0.0;

  return {
      text::CosineSimilarity(embed_u, embed_v),
      text::CosineSimilarity(grams_u, grams_v),
      text::JaccardSimilarity(tokens_u, tokens_v),
      text::OverlapCoefficient(tokens_u, tokens_v),
      length_ratio,
  };
}

}  // namespace certa::models
