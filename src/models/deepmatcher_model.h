#ifndef CERTA_MODELS_DEEPMATCHER_MODEL_H_
#define CERTA_MODELS_DEEPMATCHER_MODEL_H_

#include <string>

#include "models/feature_matcher.h"

namespace certa::models {

/// Stand-in for DeepMatcher's Hybrid model (Mudgal et al., SIGMOD'18):
/// attribute-level comparison. Each aligned attribute pair is summarized
/// by a block of similarity features (token Jaccard, edit similarity,
/// symmetric Monge-Elkan, trigram/numeric similarity, missing-value
/// indicators), and a from-scratch MLP learns how attribute evidence
/// composes into a match decision — mirroring DeepMatcher's attribute
/// summarization + classification architecture.
///
/// Requires both sources to have schemas of equal arity (as all the
/// DeepMatcher benchmarks do); Fit CHECK-fails otherwise.
class DeepMatcherModel : public FeatureMatcher {
 public:
  DeepMatcherModel();

  std::string name() const override { return "DeepMatcher"; }

  /// Number of features produced per attribute pair.
  static constexpr int kFeaturesPerAttribute = 6;

 protected:
  ml::Vector Features(const data::Record& u,
                      const data::Record& v) const override;

  /// Shares per-attribute preprocessing (tokenization, normalization,
  /// numeric parsing) across pairs repeating a record. Bit-identical to
  /// per-pair Features.
  std::vector<ml::Vector> FeaturesBatch(
      std::span<const RecordPair> pairs) const override;
};

}  // namespace certa::models

#endif  // CERTA_MODELS_DEEPMATCHER_MODEL_H_
