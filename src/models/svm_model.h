#ifndef CERTA_MODELS_SVM_MODEL_H_
#define CERTA_MODELS_SVM_MODEL_H_

#include <string>

#include "models/feature_matcher.h"

namespace certa::models {

/// Classical (pre-deep-learning) ER matcher in the Magellan/SVM family
/// the paper cites as the traditional approach (Christen, KDD'08): the
/// same per-attribute similarity feature block as the DeepMatcher
/// stand-in, classified by a linear SVM with Platt-calibrated scores.
/// Not part of the paper's evaluated trio, but included so users can
/// explain non-neural production matchers and so the benches can be
/// extended with a classical baseline.
class SvmModel : public FeatureMatcher {
 public:
  SvmModel();

  std::string name() const override { return "SVM"; }

 protected:
  ml::Vector Features(const data::Record& u,
                      const data::Record& v) const override;
};

}  // namespace certa::models

#endif  // CERTA_MODELS_SVM_MODEL_H_
