#ifndef CERTA_MODELS_RULE_MODEL_H_
#define CERTA_MODELS_RULE_MODEL_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "models/matcher.h"

namespace certa::models {

/// One learned matching rule: a conjunction of per-attribute similarity
/// thresholds, e.g.  sim(title) >= 0.62 AND sim(modelno) >= 0.85.
struct MatchingRule {
  struct Condition {
    int attribute = 0;       ///< aligned attribute index
    double threshold = 0.5;  ///< AttributeSimilarity lower bound
  };
  std::vector<Condition> conditions;
  /// Training precision of the rule (matches covered / pairs covered).
  double precision = 0.0;
  /// Fraction of training matches the rule covers.
  double recall = 0.0;

  /// Human-readable form, e.g. "sim(title) >= 0.62 AND sim(price) >= 0.90".
  std::string ToString(const data::Schema& schema) const;
};

/// Inherently explainable ER matcher in the spirit of SystemER (Qian et
/// al., PVLDB'19), minus the human in the loop: a greedy sequential
/// covering algorithm learns an ordered set of high-precision
/// conjunctive similarity rules from the training pairs. The model's
/// decisions are the rules themselves — no post-hoc explainer needed —
/// but it still implements Matcher, so CERTA can audit it like any
/// black box (useful for validating explanations against a model whose
/// true logic is known).
class RuleModel : public Matcher {
 public:
  struct Options {
    /// Candidate thresholds tried per attribute.
    std::vector<double> thresholds = {0.9, 0.8, 0.7, 0.6, 0.5, 0.4};
    /// Minimum precision for a rule to be accepted.
    double min_precision = 0.9;
    /// Maximum conditions per rule.
    int max_conditions = 3;
    /// Maximum number of rules.
    int max_rules = 8;
    /// Stop when the uncovered matches drop below this fraction.
    double target_recall = 0.95;
  };

  RuleModel() = default;

  /// Learns the rule set from dataset.train. Requires aligned schemas.
  void Fit(const data::Dataset& dataset, Options options);
  void Fit(const data::Dataset& dataset) { Fit(dataset, Options()); }

  /// Score: the precision of the first rule that fires (a calibrated
  /// confidence), or a low residual score when no rule fires.
  double Score(const data::Record& u, const data::Record& v) const override;

  std::string name() const override { return "RuleSet"; }

  const std::vector<MatchingRule>& rules() const { return rules_; }
  bool is_fitted() const { return fitted_; }

  /// Renders the learned ruleset.
  std::string Describe(const data::Schema& schema) const;

 private:
  std::vector<MatchingRule> rules_;
  bool fitted_ = false;
};

}  // namespace certa::models

#endif  // CERTA_MODELS_RULE_MODEL_H_
