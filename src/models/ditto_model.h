#ifndef CERTA_MODELS_DITTO_MODEL_H_
#define CERTA_MODELS_DITTO_MODEL_H_

#include <string>
#include <vector>

#include "models/feature_matcher.h"
#include "text/hashing_vectorizer.h"

namespace certa::models {

/// Stand-in for Ditto (Li et al., PVLDB'20): the pair is serialized into
/// one token sequence with [COL]/[VAL] markers exactly like Ditto's
/// input encoding, and classified from sequence-level cross-alignment
/// features: soft token alignment in both directions (the transformer
/// cross-attention analogue), character n-gram cosine over the whole
/// serializations, and Ditto's domain-knowledge injections (number
/// normalization and span typing for numeric/code tokens).
class DittoModel : public FeatureMatcher {
 public:
  DittoModel();

  std::string name() const override { return "Ditto"; }

  /// Ditto's serialization:
  ///   [COL] attr1 [VAL] v1 tokens [COL] attr2 [VAL] v2 tokens ...
  /// Exposed for tests and for the explanation case study.
  static std::string Serialize(const data::Schema& schema,
                               const data::Record& record);

 protected:
  ml::Vector Features(const data::Record& u,
                      const data::Record& v) const override;

  /// Shares serialization + the n-gram embedding across pairs that
  /// repeat a record. Bit-identical to per-pair Features.
  std::vector<ml::Vector> FeaturesBatch(
      std::span<const RecordPair> pairs) const override;

 private:
  text::HashingVectorizer ngram_embedder_;
};

}  // namespace certa::models

#endif  // CERTA_MODELS_DITTO_MODEL_H_
