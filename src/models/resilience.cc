#include "models/resilience.h"

#include <algorithm>

#include "util/logging.h"

namespace certa::models {
namespace {

/// Deterministic uniform draw in [0, 1) from (seed, pair content,
/// salt). Same avalanche finisher as the cache key hash; the salt keeps
/// the faulty/transient/spike/perturbation draws independent.
double Hash01(uint64_t seed, const PairKey& key, uint64_t salt) {
  uint64_t hash = seed ^ (key.lo * 0x9E3779B97F4A7C15ULL) ^
                  (key.hi + 0x165667B19E3779F9ULL) ^ (salt * 0xC2B2AE3D27D4EB4FULL);
  hash ^= hash >> 33;
  hash *= 0xff51afd7ed558ccdULL;
  hash ^= hash >> 33;
  hash *= 0xc4ceb9fe1a85ec53ULL;
  hash ^= hash >> 33;
  return static_cast<double>(hash >> 11) * 0x1.0p-53;
}

}  // namespace

FaultInjectingMatcher::FaultInjectingMatcher(const Matcher* base,
                                             FaultOptions options,
                                             util::Clock* clock)
    : base_(base),
      options_(options),
      clock_(clock != nullptr ? clock : util::RealClock()) {
  CERTA_CHECK(base != nullptr);
}

double FaultInjectingMatcher::Score(const data::Record& u,
                                    const data::Record& v) const {
  const PairKey key = HashPair(u, v);
  int attempt = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    attempt = ++attempts_[key];
  }
  calls_.fetch_add(1, std::memory_order_relaxed);

  const bool faulty = Hash01(options_.seed, key, 1) < options_.fault_rate;
  const bool transient =
      Hash01(options_.seed, key, 2) < options_.transient_fraction;
  const bool spiky = options_.spike_rate > 0.0 &&
                     Hash01(options_.seed, key, 3) < options_.spike_rate;
  const bool early_attempt = attempt <= options_.transient_failures_per_pair;

  const int64_t latency = spiky && early_attempt
                              ? options_.spike_latency_micros
                              : options_.latency_micros;
  clock_->SleepMicros(latency);

  if (faulty) {
    if (!transient) {
      permanent_thrown_.fetch_add(1, std::memory_order_relaxed);
      throw UnavailableError("injected permanent fault");
    }
    if (early_attempt) {
      transient_thrown_.fetch_add(1, std::memory_order_relaxed);
      throw TransientError("injected transient fault (attempt " +
                           std::to_string(attempt) + ")");
    }
  }

  double score = base_->Score(u, v);
  if (options_.score_perturbation > 0.0) {
    score += options_.score_perturbation *
             (2.0 * Hash01(options_.seed, key, 4) - 1.0);
    score = std::clamp(score, 0.0, 1.0);
  }
  return score;
}

FaultInjectingMatcher::Stats FaultInjectingMatcher::stats() const {
  return {calls_.load(std::memory_order_relaxed),
          transient_thrown_.load(std::memory_order_relaxed),
          permanent_thrown_.load(std::memory_order_relaxed)};
}

void FaultInjectingMatcher::ResetAttempts() {
  std::lock_guard<std::mutex> lock(mutex_);
  attempts_.clear();
}

ResilientMatcher::ResilientMatcher(const Matcher* base,
                                   ResilienceOptions options)
    : base_(base),
      options_(options),
      clock_(options.clock != nullptr ? options.clock : util::RealClock()) {
  CERTA_CHECK(base != nullptr);
  CERTA_CHECK_GE(options_.max_attempts, 1);
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *options_.metrics;
    metric_.calls = reg.counter("resilience.calls");
    metric_.retries = reg.counter("resilience.retries");
    metric_.failures = reg.counter("resilience.failures");
    metric_.deadline_hits = reg.counter("resilience.deadline_hits");
    metric_.breaker_rejections = reg.counter("resilience.breaker.rejections");
    metric_.breaker_opens = reg.counter("resilience.breaker.opens");
    metric_.breaker_closes = reg.counter("resilience.breaker.closes");
    metric_.breaker_state = reg.gauge("resilience.breaker.state");
    metric_.budget_remaining = reg.gauge("resilience.budget.remaining");
    metric_.budget_remaining->Set(options_.max_model_calls > 0
                                      ? options_.max_model_calls
                                      : -1);
  }
}

void ResilientMatcher::Charge(long long amount) const {
  if (options_.max_model_calls <= 0) {
    spent_.fetch_add(amount, std::memory_order_relaxed);
    if (metric_.calls != nullptr) metric_.calls->Add(amount);
    return;
  }
  // Optimistically charge, roll back on overdraft. Exact under
  // single-threaded callers; under concurrent callers a racing pair of
  // calls may both be rejected one call early, never admitted late.
  long long before = spent_.fetch_add(amount, std::memory_order_relaxed);
  if (before + amount > options_.max_model_calls) {
    spent_.fetch_sub(amount, std::memory_order_relaxed);
    throw BudgetExhausted("model-call budget exhausted (" +
                          std::to_string(options_.max_model_calls) +
                          " calls)");
  }
  if (metric_.calls != nullptr) metric_.calls->Add(amount);
  if (metric_.budget_remaining != nullptr) {
    metric_.budget_remaining->Set(
        std::max(0LL, options_.max_model_calls - (before + amount)));
  }
}

void ResilientMatcher::BreakerGate() const {
  if (options_.breaker_threshold <= 0) return;
  std::lock_guard<std::mutex> lock(breaker_mutex_);
  if (!breaker_open_) return;
  if (rejections_since_open_ < options_.breaker_cooldown_calls) {
    ++rejections_since_open_;
    breaker_rejections_.fetch_add(1, std::memory_order_relaxed);
    if (metric_.breaker_rejections != nullptr) {
      metric_.breaker_rejections->Increment();
    }
    throw UnavailableError("circuit breaker open");
  }
  // Half-open: let this probe through; RecordOutcome decides whether
  // the breaker closes (success) or re-opens for a fresh cooldown.
  rejections_since_open_ = 0;
}

void ResilientMatcher::RecordOutcome(bool success) const {
  if (options_.breaker_threshold <= 0) return;
  std::lock_guard<std::mutex> lock(breaker_mutex_);
  if (success) {
    consecutive_failures_ = 0;
    if (breaker_open_) {
      breaker_open_ = false;
      if (metric_.breaker_closes != nullptr) {
        metric_.breaker_closes->Increment();
      }
      if (metric_.breaker_state != nullptr) metric_.breaker_state->Set(0);
    }
    return;
  }
  ++consecutive_failures_;
  if (consecutive_failures_ >= options_.breaker_threshold &&
      !breaker_open_) {
    breaker_open_ = true;
    rejections_since_open_ = 0;
    if (metric_.breaker_opens != nullptr) metric_.breaker_opens->Increment();
    if (metric_.breaker_state != nullptr) metric_.breaker_state->Set(1);
  }
}

double ResilientMatcher::ScoreOnce(const data::Record& u,
                                   const data::Record& v) const {
  BreakerGate();
  Charge(1);
  const int64_t start = clock_->NowMicros();
  double score = base_->Score(u, v);
  if (options_.deadline_micros > 0 &&
      clock_->NowMicros() - start > options_.deadline_micros) {
    deadline_hits_.fetch_add(1, std::memory_order_relaxed);
    if (metric_.deadline_hits != nullptr) metric_.deadline_hits->Increment();
    throw DeadlineExceeded("score call exceeded deadline");
  }
  return score;
}

double ResilientMatcher::Score(const data::Record& u,
                               const data::Record& v) const {
  logical_calls_.fetch_add(1, std::memory_order_relaxed);
  for (int attempt = 1;; ++attempt) {
    try {
      double score = ScoreOnce(u, v);
      RecordOutcome(true);
      return score;
    } catch (const BudgetExhausted&) {
      // Budget errors bypass the breaker (nothing is wrong with the
      // backing model) and are never retried within the same budget.
      failures_.fetch_add(1, std::memory_order_relaxed);
      if (metric_.failures != nullptr) metric_.failures->Increment();
      throw;
    } catch (const TransientError&) {
      RecordOutcome(false);
      if (attempt >= options_.max_attempts) {
        failures_.fetch_add(1, std::memory_order_relaxed);
        if (metric_.failures != nullptr) metric_.failures->Increment();
        throw;
      }
      retries_.fetch_add(1, std::memory_order_relaxed);
      if (metric_.retries != nullptr) metric_.retries->Increment();
      const int64_t backoff = std::min(
          options_.backoff_max_micros,
          options_.backoff_base_micros << std::min(attempt - 1, 20));
      clock_->SleepMicros(backoff);
    } catch (const ScoringError&) {
      // UnavailableError and anything else non-transient: fail now.
      RecordOutcome(false);
      failures_.fetch_add(1, std::memory_order_relaxed);
      if (metric_.failures != nullptr) metric_.failures->Increment();
      throw;
    }
  }
}

std::vector<double> ResilientMatcher::ScoreBatch(
    std::span<const RecordPair> pairs) const {
  if (pairs.empty()) return {};
  const long long n = static_cast<long long>(pairs.size());
  // Happy path: one batched base call, preserving the base model's
  // amortized featurization. Skipped when a deadline is set (per-pair
  // timing needs per-pair calls) or the batch no longer fits the
  // budget (the per-pair path spends what remains, then throws).
  const bool budget_fits =
      options_.max_model_calls <= 0 ||
      spent_.load(std::memory_order_relaxed) + n <= options_.max_model_calls;
  if (!budget_fits) {
    // Don't silently burn the remaining budget on a batch that cannot
    // complete — the batch interface has no way to return the partial
    // results, so the spend would be pure waste. Failing fast lets the
    // caller fall back to per-pair scoring and salvage exactly as many
    // pairs as the budget still covers.
    throw BudgetExhausted("batch of " + std::to_string(n) +
                          " exceeds the remaining model-call budget");
  }
  if (options_.deadline_micros == 0) {
    bool charged = false;
    try {
      Charge(n);
      charged = true;
      std::vector<double> scores = base_->ScoreBatch(pairs);
      logical_calls_.fetch_add(n, std::memory_order_relaxed);
      RecordOutcome(true);
      return scores;
    } catch (const BudgetExhausted&) {
      throw;
    } catch (const ScoringError&) {
      // A failed batch RPC is paid for; isolate the fault per pair.
      if (!charged) throw;
      RecordOutcome(false);
    }
  }
  std::vector<double> scores;
  scores.reserve(pairs.size());
  for (const RecordPair& pair : pairs) {
    scores.push_back(Score(*pair.left, *pair.right));
  }
  return scores;
}

ResilientMatcher::Stats ResilientMatcher::stats() const {
  return {spent_.load(std::memory_order_relaxed),
          logical_calls_.load(std::memory_order_relaxed),
          retries_.load(std::memory_order_relaxed),
          failures_.load(std::memory_order_relaxed),
          deadline_hits_.load(std::memory_order_relaxed),
          breaker_rejections_.load(std::memory_order_relaxed)};
}

ScoringEngine::BatchOutcome TryScoreBatch(const Matcher& model,
                                          std::span<const RecordPair> pairs) {
  if (const auto* engine = dynamic_cast<const ScoringEngine*>(&model)) {
    return engine->TryScoreBatch(pairs);
  }
  ScoringEngine::BatchOutcome outcome;
  outcome.scores.assign(pairs.size(), 0.0);
  outcome.ok.assign(pairs.size(), 0);
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (outcome.budget_exhausted) {
      ++outcome.failures;
      continue;
    }
    try {
      outcome.scores[i] = model.Score(*pairs[i].left, *pairs[i].right);
      outcome.ok[i] = 1;
    } catch (const BudgetExhausted&) {
      outcome.budget_exhausted = true;
      ++outcome.failures;
    } catch (const ScoringError&) {
      ++outcome.failures;
    }
  }
  return outcome;
}

long long ResilientMatcher::budget_remaining() const {
  if (options_.max_model_calls <= 0) return -1;
  return std::max(0LL, options_.max_model_calls -
                           spent_.load(std::memory_order_relaxed));
}

}  // namespace certa::models
