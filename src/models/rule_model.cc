#include "models/rule_model.h"

#include <algorithm>

#include "text/similarity.h"
#include "util/logging.h"
#include "util/string_utils.h"

namespace certa::models {
namespace {

/// Pre-computed per-attribute similarities for one training pair.
struct PairFeatures {
  std::vector<double> similarities;
  int label = 0;
  bool covered = false;
};

bool RuleFires(const MatchingRule& rule,
               const std::vector<double>& similarities) {
  for (const MatchingRule::Condition& condition : rule.conditions) {
    if (similarities[condition.attribute] < condition.threshold) {
      return false;
    }
  }
  return true;
}

/// Precision/recall of a candidate rule over the not-yet-covered pairs
/// (recall against *all* matches, the sequential-covering convention).
void Evaluate(const MatchingRule& rule, const std::vector<PairFeatures>& pairs,
              int total_matches, double* precision, double* recall) {
  int fired = 0;
  int correct = 0;
  for (const PairFeatures& pair : pairs) {
    if (pair.covered) continue;
    if (!RuleFires(rule, pair.similarities)) continue;
    ++fired;
    if (pair.label == 1) ++correct;
  }
  *precision = fired > 0 ? static_cast<double>(correct) / fired : 0.0;
  *recall = total_matches > 0 ? static_cast<double>(correct) / total_matches
                              : 0.0;
}

}  // namespace

std::string MatchingRule::ToString(const data::Schema& schema) const {
  std::vector<std::string> parts;
  for (const Condition& condition : conditions) {
    parts.push_back("sim(" + schema.name(condition.attribute) +
                    ") >= " + FormatDouble(condition.threshold, 2));
  }
  return Join(parts, " AND ");
}

void RuleModel::Fit(const data::Dataset& dataset, Options options) {
  CERTA_CHECK(!dataset.train.empty());
  CERTA_CHECK_EQ(dataset.left.schema().size(), dataset.right.schema().size())
      << "RuleModel requires aligned schemas";
  const int attributes = dataset.left.schema().size();

  // Featurize the training pairs once.
  std::vector<PairFeatures> pairs;
  pairs.reserve(dataset.train.size());
  int total_matches = 0;
  for (const data::LabeledPair& pair : dataset.train) {
    PairFeatures features;
    features.label = pair.label;
    total_matches += pair.label;
    const data::Record& u = dataset.left.record(pair.left_index);
    const data::Record& v = dataset.right.record(pair.right_index);
    features.similarities.reserve(attributes);
    for (int a = 0; a < attributes; ++a) {
      features.similarities.push_back(
          text::AttributeSimilarity(u.value(a), v.value(a)));
    }
    pairs.push_back(std::move(features));
  }

  rules_.clear();
  int covered_matches = 0;
  while (static_cast<int>(rules_.size()) < options.max_rules &&
         total_matches > 0 &&
         static_cast<double>(covered_matches) / total_matches <
             options.target_recall) {
    // Greedy rule growth: start empty, repeatedly add the single
    // condition that maximizes precision (ties: higher recall).
    MatchingRule rule;
    double rule_precision = 0.0;
    double rule_recall = 0.0;
    for (int depth = 0; depth < options.max_conditions; ++depth) {
      MatchingRule best = rule;
      double best_precision = rule_precision;
      double best_recall = rule_recall;
      bool improved = false;
      for (int a = 0; a < attributes; ++a) {
        bool already_used = false;
        for (const MatchingRule::Condition& condition : rule.conditions) {
          if (condition.attribute == a) already_used = true;
        }
        if (already_used) continue;
        for (double threshold : options.thresholds) {
          MatchingRule candidate = rule;
          candidate.conditions.push_back({a, threshold});
          double precision = 0.0;
          double recall = 0.0;
          Evaluate(candidate, pairs, total_matches, &precision, &recall);
          if (recall <= 0.0) continue;
          if (precision > best_precision ||
              (precision == best_precision && recall > best_recall)) {
            best = candidate;
            best_precision = precision;
            best_recall = recall;
            improved = true;
          }
        }
      }
      if (!improved) break;
      rule = best;
      rule_precision = best_precision;
      rule_recall = best_recall;
      if (rule_precision >= 1.0) break;  // cannot improve further
    }
    if (rule.conditions.empty() || rule_precision < options.min_precision) {
      break;  // no acceptable rule remains
    }
    rule.precision = rule_precision;
    rule.recall = rule_recall;
    // Mark covered pairs so the next rule targets the remainder.
    for (PairFeatures& pair : pairs) {
      if (pair.covered || !RuleFires(rule, pair.similarities)) continue;
      pair.covered = true;
      if (pair.label == 1) ++covered_matches;
    }
    rules_.push_back(std::move(rule));
  }
  fitted_ = true;
}

double RuleModel::Score(const data::Record& u, const data::Record& v) const {
  CERTA_CHECK(fitted_);
  CERTA_CHECK_EQ(u.values.size(), v.values.size());
  std::vector<double> similarities;
  similarities.reserve(u.values.size());
  for (size_t a = 0; a < u.values.size(); ++a) {
    similarities.push_back(
        text::AttributeSimilarity(u.values[a], v.values[a]));
  }
  for (const MatchingRule& rule : rules_) {
    if (RuleFires(rule, similarities)) {
      // Calibrated confidence: the rule's training precision, kept
      // above the 0.5 match threshold by construction (min_precision).
      return std::max(0.51, rule.precision);
    }
  }
  // No rule fires: residual score proportional to overall similarity,
  // capped below the decision threshold.
  double mean = 0.0;
  for (double s : similarities) mean += s;
  mean /= static_cast<double>(similarities.size());
  return 0.49 * mean;
}

std::string RuleModel::Describe(const data::Schema& schema) const {
  std::string out;
  for (size_t r = 0; r < rules_.size(); ++r) {
    out += "rule " + std::to_string(r + 1) + ": IF " +
           rules_[r].ToString(schema) + " THEN Match  [precision " +
           FormatDouble(rules_[r].precision, 2) + ", recall " +
           FormatDouble(rules_[r].recall, 2) + "]\n";
  }
  if (rules_.empty()) out = "(no rules learned)\n";
  return out;
}

}  // namespace certa::models
