#ifndef CERTA_MODELS_FEATURE_MATCHER_H_
#define CERTA_MODELS_FEATURE_MATCHER_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "ml/linear_svm.h"
#include "ml/logistic_regression.h"
#include "ml/mlp.h"
#include "ml/scaler.h"
#include "models/matcher.h"

namespace certa::models {

/// Shared skeleton of the three trainable ER models: a model-specific
/// pair featurization (implemented by subclasses) feeding a trained,
/// standardized classification head. Subclasses only define Features()
/// and name(); Fit/Score are common.
class FeatureMatcher : public Matcher {
 public:
  /// Which classification head sits on the features.
  enum class Head {
    kLogistic,
    kMlp,
    kSvm,
  };

  /// Trains the head on the dataset's train pairs. Must be called before
  /// Score. `seed` controls head initialization and batching.
  void Fit(const data::Dataset& dataset, uint64_t seed);

  double Score(const data::Record& u, const data::Record& v) const override;

  /// Batched scoring: featurizes all pairs via FeaturesBatch, scales
  /// in place, then runs one head-level batch predict. Bit-identical to
  /// calling Score per pair.
  std::vector<double> ScoreBatch(
      std::span<const RecordPair> pairs) const override;

  /// Persists the trained head + scaler into the archive (the feature
  /// extraction itself is code, not state). Used by models::SaveMatcher.
  void SaveParameters(TextArchive* archive) const;
  /// Restores a previously saved head; false on mismatch with this
  /// model's head kind.
  bool LoadParameters(const TextArchive& archive);

  bool is_fitted() const { return fitted_; }

 protected:
  explicit FeatureMatcher(Head head) : head_(head) {}

  /// Model-specific pair featurization; must have fixed dimension for a
  /// given schema and be independent of training state.
  virtual ml::Vector Features(const data::Record& u,
                              const data::Record& v) const = 0;

  /// Batched featurization hook. The default loops Features; subclasses
  /// override it to share per-record work (tokenization, embeddings)
  /// across pairs that repeat a record. Must return exactly
  /// Features(pair) per element, in order.
  virtual std::vector<ml::Vector> FeaturesBatch(
      std::span<const RecordPair> pairs) const;

 private:
  Head head_;
  ml::StandardScaler scaler_;
  ml::LogisticRegression logistic_;
  ml::Mlp mlp_;
  ml::LinearSvm svm_;
  bool fitted_ = false;
};

}  // namespace certa::models

#endif  // CERTA_MODELS_FEATURE_MATCHER_H_
