#ifndef CERTA_MODELS_DEEPER_MODEL_H_
#define CERTA_MODELS_DEEPER_MODEL_H_

#include <string>

#include "models/feature_matcher.h"
#include "text/hashing_vectorizer.h"

namespace certa::models {

/// Stand-in for DeepER's LSTM model (Ebraheem et al., PVLDB'18):
/// each record is collapsed into a single distributed representation —
/// here a hashed, L2-normalized bag-of-tokens embedding over the
/// concatenation of all attribute values — and the pair is classified
/// from record-level vector similarities plus a trained logistic head.
///
/// The property that matters for the explanation experiments is the
/// *record-level granularity*: attribute boundaries are invisible, the
/// model only sees the fused token distribution, mirroring how DeepER
/// composes word embeddings into one tuple vector.
class DeepErModel : public FeatureMatcher {
 public:
  DeepErModel();

  std::string name() const override { return "DeepER"; }

 protected:
  ml::Vector Features(const data::Record& u,
                      const data::Record& v) const override;

  /// Shares the per-record work (tokenization + both embeddings) across
  /// pairs repeating a record, keyed by record identity. Bit-identical
  /// to per-pair Features.
  std::vector<ml::Vector> FeaturesBatch(
      std::span<const RecordPair> pairs) const override;

 private:
  text::HashingVectorizer word_embedder_;
  text::HashingVectorizer ngram_embedder_;
};

}  // namespace certa::models

#endif  // CERTA_MODELS_DEEPER_MODEL_H_
