#ifndef CERTA_MODELS_RESILIENCE_H_
#define CERTA_MODELS_RESILIENCE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "models/scoring_engine.h"
#include "util/clock.h"

namespace certa::models {

/// Error taxonomy of the remote-matcher failure model (see
/// docs/RESILIENCE.md). CERTA treats the ER model as a black box; in
/// production that box is a service that can time out, throttle, or go
/// away — these exceptions are how a Matcher implementation reports
/// that, and what the resilience layer retries, budgets, and degrades
/// around. Everything recoverable derives from ScoringError; anything
/// else escaping a Matcher is a programming error, not a fault.
class ScoringError : public std::runtime_error {
 public:
  explicit ScoringError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Retryable fault: a later identical call may succeed (network blip,
/// transient throttling, one slow replica).
class TransientError : public ScoringError {
 public:
  explicit TransientError(const std::string& what) : ScoringError(what) {}
};

/// Non-retryable fault: the backing model cannot serve this call now
/// (hard failure, open circuit breaker). Retrying is pointless.
class UnavailableError : public ScoringError {
 public:
  explicit UnavailableError(const std::string& what)
      : ScoringError(what) {}
};

/// A call exceeded its per-call deadline. Transient: the next attempt
/// may land on a faster replica.
class DeadlineExceeded : public TransientError {
 public:
  explicit DeadlineExceeded(const std::string& what)
      : TransientError(what) {}
};

/// The hard model-call budget of a ResilientMatcher is spent. Not
/// retryable within the same budget; callers degrade to a partial
/// explanation instead.
class BudgetExhausted : public ScoringError {
 public:
  explicit BudgetExhausted(const std::string& what) : ScoringError(what) {}
};

/// Deterministic fault plan for one FaultInjectingMatcher. All
/// decisions are pure functions of (seed, pair content, per-pair
/// attempt number), never of wall-clock time or call interleaving, so
/// fault patterns reproduce bit-for-bit across runs, thread counts, and
/// cache settings.
struct FaultOptions {
  /// Probability that a pair is faulty at all.
  double fault_rate = 0.0;
  /// Among faulty pairs, fraction whose faults are transient; the rest
  /// fail permanently (UnavailableError on every attempt).
  double transient_fraction = 1.0;
  /// A transiently faulty pair throws on its first this-many attempts,
  /// then succeeds — so any retry budget > this value always recovers.
  int transient_failures_per_pair = 1;
  /// Probability that a pair's early attempts are latency spikes.
  double spike_rate = 0.0;
  /// Simulated per-call latency (advanced on the injected clock).
  int64_t latency_micros = 0;
  /// Latency of a spike call (first transient_failures_per_pair
  /// attempts of a spiky pair).
  int64_t spike_latency_micros = 0;
  /// Score-perturbation mode: adds a deterministic per-pair offset in
  /// [-amplitude, +amplitude] (clamped to [0, 1]) instead of throwing.
  double score_perturbation = 0.0;
  uint64_t seed = 1;
};

/// Wraps any Matcher with seeded, deterministic fault injection —
/// the test double for a failure-prone remote scoring service, used by
/// the resilience tests and bench_resilience. Latency is simulated by
/// advancing `clock` (inject a ManualClock to keep tests instant).
class FaultInjectingMatcher : public Matcher {
 public:
  struct Stats {
    long long calls = 0;
    long long transient_thrown = 0;
    long long permanent_thrown = 0;
  };

  /// `base` and `clock` are not owned; nullptr clock = RealClock().
  FaultInjectingMatcher(const Matcher* base, FaultOptions options,
                        util::Clock* clock = nullptr);

  /// Scores the pair, or throws per the fault plan. The inherited
  /// ScoreBatch loops over Score, so the first faulty pair aborts the
  /// whole batch — exactly like a batch RPC failing mid-flight.
  double Score(const data::Record& u, const data::Record& v) const override;

  /// Keeps the base name so explanations are invariant to injection.
  std::string name() const override { return base_->name(); }

  Stats stats() const;

  /// Forgets per-pair attempt history (transient faults re-arm).
  void ResetAttempts();

 private:
  const Matcher* base_;
  FaultOptions options_;
  util::Clock* clock_;
  mutable std::mutex mutex_;
  mutable std::unordered_map<PairKey, int, PairKeyHasher> attempts_;
  mutable std::atomic<long long> calls_{0};
  mutable std::atomic<long long> transient_thrown_{0};
  mutable std::atomic<long long> permanent_thrown_{0};
};

/// Knobs of the ResilientMatcher decorator. Defaults are inert; set
/// `enabled` to make CertaExplainer install the decorator at all.
struct ResilienceOptions {
  /// Master switch: with false, callers skip the decorator entirely and
  /// the scoring path is byte-for-byte the non-resilient one.
  bool enabled = false;
  /// Per-call deadline; 0 disables deadline checking.
  int64_t deadline_micros = 0;
  /// Attempts per logical Score call (1 = no retries).
  int max_attempts = 3;
  /// Deterministic exponential backoff between attempts:
  /// min(backoff_max, backoff_base << (attempt - 1)).
  int64_t backoff_base_micros = 1000;
  int64_t backoff_max_micros = 64000;
  /// Hard budget of base-model invocations (attempts count, cache hits
  /// above the decorator do not); 0 = unlimited. Once spent, every
  /// further call throws BudgetExhausted without reaching the model.
  long long max_model_calls = 0;
  /// Circuit breaker: opens after this many consecutive logical
  /// failures; 0 disables the breaker.
  int breaker_threshold = 0;
  /// While open, this many calls fail fast (UnavailableError) before a
  /// half-open probe is let through to test recovery.
  long long breaker_cooldown_calls = 16;
  /// Not owned; nullptr = RealClock(). Inject a ManualClock in tests so
  /// backoff sleeps and deadline checks cost no wall time.
  util::Clock* clock = nullptr;
  /// Observability registry (not owned; nullptr = uninstrumented).
  /// Mirrors the resilience.* metric catalog (docs/OBSERVABILITY.md);
  /// Stats stays authoritative and registry-independent.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Decorator that makes any Matcher safe to build explanations on:
/// per-call deadlines, bounded retries with deterministic exponential
/// backoff, a circuit breaker, and a hard model-call budget. Drops in
/// wherever a Matcher is expected (typically between a remote/faulty
/// base model and the ScoringEngine, which adds caching and batching on
/// top and only re-charges the budget on cache misses).
///
/// With inert options and a fault-free base, both Score and ScoreBatch
/// forward straight to the base model: scores, call pattern, and batch
/// shapes are bit-identical to not having the decorator at all.
class ResilientMatcher : public Matcher {
 public:
  struct Stats {
    /// Base-model invocations attempted (== budget spent).
    long long calls = 0;
    /// Logical Score/ScoreBatch-pair requests served or failed.
    long long logical_calls = 0;
    /// Extra attempts after a transient failure.
    long long retries = 0;
    /// Logical calls that ultimately failed (exception escaped).
    long long failures = 0;
    long long deadline_hits = 0;
    long long breaker_rejections = 0;
  };

  /// `base` is not owned and must outlive the decorator.
  ResilientMatcher(const Matcher* base, ResilienceOptions options);

  /// Scores with retries/deadline/budget/breaker; throws the last
  /// ScoringError when the call ultimately fails.
  double Score(const data::Record& u, const data::Record& v) const override;

  /// Happy path: one batched base call (budget charged per pair). On a
  /// transient batch failure, falls back to per-pair resilient scoring
  /// so one bad pair no longer poisons the whole batch. A batch that no
  /// longer fits the remaining budget is rejected upfront (throws
  /// BudgetExhausted without spending anything) — callers salvage the
  /// tail of the budget by scoring per pair.
  std::vector<double> ScoreBatch(
      std::span<const RecordPair> pairs) const override;

  std::string name() const override { return base_->name(); }

  Stats stats() const;
  const ResilienceOptions& options() const { return options_; }
  long long budget_remaining() const;

 private:
  /// One attempt: breaker gate, budget charge, base call, deadline
  /// check. Throws ScoringError subclasses on any failure.
  double ScoreOnce(const data::Record& u, const data::Record& v) const;

  /// Throws BudgetExhausted unless `amount` more base calls fit; charges
  /// them when they do.
  void Charge(long long amount) const;

  void BreakerGate() const;
  void RecordOutcome(bool success) const;

  /// Registry handles, resolved once in the constructor (all null when
  /// Options::metrics is null).
  struct MetricHandles {
    obs::Counter* calls = nullptr;
    obs::Counter* retries = nullptr;
    obs::Counter* failures = nullptr;
    obs::Counter* deadline_hits = nullptr;
    obs::Counter* breaker_rejections = nullptr;
    obs::Counter* breaker_opens = nullptr;
    obs::Counter* breaker_closes = nullptr;
    obs::Gauge* breaker_state = nullptr;
    obs::Gauge* budget_remaining = nullptr;
  };

  const Matcher* base_;
  ResilienceOptions options_;
  util::Clock* clock_;
  MetricHandles metric_;

  mutable std::atomic<long long> spent_{0};
  mutable std::atomic<long long> logical_calls_{0};
  mutable std::atomic<long long> retries_{0};
  mutable std::atomic<long long> failures_{0};
  mutable std::atomic<long long> deadline_hits_{0};
  mutable std::atomic<long long> breaker_rejections_{0};

  mutable std::mutex breaker_mutex_;
  mutable int consecutive_failures_ = 0;
  mutable bool breaker_open_ = false;
  mutable long long rejections_since_open_ = 0;
};

/// Fault-tolerant batch scoring over any Matcher. When `model` is a
/// ScoringEngine, delegates to its TryScoreBatch (shared cache, pooled
/// fan-out, chunk-level fallback); otherwise scores pair by pair,
/// catching ScoringError per pair. Either way failed pairs come back
/// with ok[i] == 0 instead of an exception, and a BudgetExhausted sets
/// the outcome flag and fails the remaining pairs without further
/// model calls.
ScoringEngine::BatchOutcome TryScoreBatch(const Matcher& model,
                                          std::span<const RecordPair> pairs);

}  // namespace certa::models

#endif  // CERTA_MODELS_RESILIENCE_H_
