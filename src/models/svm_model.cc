#include "models/svm_model.h"

#include "text/similarity.h"
#include "text/tokenizer.h"
#include "util/logging.h"

namespace certa::models {

SvmModel::SvmModel() : FeatureMatcher(Head::kSvm) {}

ml::Vector SvmModel::Features(const data::Record& u,
                              const data::Record& v) const {
  CERTA_CHECK_EQ(u.values.size(), v.values.size())
      << "SvmModel requires aligned schemas";
  ml::Vector features;
  features.reserve(u.values.size() * 4);
  for (size_t a = 0; a < u.values.size(); ++a) {
    const std::string& value_u = u.values[a];
    const std::string& value_v = v.values[a];
    if (text::IsMissing(value_u) || text::IsMissing(value_v)) {
      features.insert(features.end(), {0.0, 0.0, 0.0, 1.0});
      continue;
    }
    std::vector<std::string> tokens_u = text::Tokenize(value_u);
    std::vector<std::string> tokens_v = text::Tokenize(value_v);
    features.push_back(text::JaccardSimilarity(tokens_u, tokens_v));
    features.push_back(text::TrigramSimilarity(value_u, value_v));
    features.push_back(text::AttributeSimilarity(value_u, value_v));
    features.push_back(0.0);  // missing indicator
  }
  return features;
}

}  // namespace certa::models
