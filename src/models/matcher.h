#ifndef CERTA_MODELS_MATCHER_H_
#define CERTA_MODELS_MATCHER_H_

#include <span>
#include <string>
#include <vector>

#include "data/table.h"

namespace certa::models {

/// Non-owning view of one candidate pair for batch scoring. Both
/// records must outlive the ScoreBatch call.
struct RecordPair {
  const data::Record* left = nullptr;
  const data::Record* right = nullptr;
};

/// Black-box ER classifier interface — exactly what CERTA and every
/// baseline explainer consume. A matcher scores a candidate record pair
/// with a calibrated matching probability in [0, 1]; scores >= 0.5 mean
/// Match (the paper's convention, Fig. 2).
///
/// Implementations must be deterministic and side-effect free per call:
/// explainers issue thousands of perturbed-pair calls per explanation.
/// Score and ScoreBatch must be safe to call concurrently from multiple
/// threads (the scoring engine fans batches out over a thread pool).
class Matcher {
 public:
  virtual ~Matcher() = default;

  /// Matching score for the pair <u, v> (u from the left source, v from
  /// the right source). Must lie in [0, 1].
  virtual double Score(const data::Record& u,
                       const data::Record& v) const = 0;

  /// Scores a batch of pairs; result[i] == Score(*pairs[i].left,
  /// *pairs[i].right) bit-for-bit. The default loops over Score;
  /// implementations override it to amortize per-call setup
  /// (featurization, vectorization, head forward passes) across the
  /// batch without changing any individual score.
  virtual std::vector<double> ScoreBatch(
      std::span<const RecordPair> pairs) const {
    std::vector<double> scores;
    scores.reserve(pairs.size());
    for (const RecordPair& pair : pairs) {
      scores.push_back(Score(*pair.left, *pair.right));
    }
    return scores;
  }

  /// Hard decision at the 0.5 threshold.
  bool Predict(const data::Record& u, const data::Record& v) const {
    return Score(u, v) >= 0.5;
  }

  /// Human-readable model name ("DeepER", "DeepMatcher", "Ditto").
  virtual std::string name() const = 0;
};

}  // namespace certa::models

#endif  // CERTA_MODELS_MATCHER_H_
