#ifndef CERTA_MODELS_MATCHER_H_
#define CERTA_MODELS_MATCHER_H_

#include <string>

#include "data/table.h"

namespace certa::models {

/// Black-box ER classifier interface — exactly what CERTA and every
/// baseline explainer consume. A matcher scores a candidate record pair
/// with a calibrated matching probability in [0, 1]; scores >= 0.5 mean
/// Match (the paper's convention, Fig. 2).
///
/// Implementations must be deterministic and side-effect free per call:
/// explainers issue thousands of perturbed-pair calls per explanation.
class Matcher {
 public:
  virtual ~Matcher() = default;

  /// Matching score for the pair <u, v> (u from the left source, v from
  /// the right source). Must lie in [0, 1].
  virtual double Score(const data::Record& u,
                       const data::Record& v) const = 0;

  /// Hard decision at the 0.5 threshold.
  bool Predict(const data::Record& u, const data::Record& v) const {
    return Score(u, v) >= 0.5;
  }

  /// Human-readable model name ("DeepER", "DeepMatcher", "Ditto").
  virtual std::string name() const = 0;
};

}  // namespace certa::models

#endif  // CERTA_MODELS_MATCHER_H_
