#include "models/deepmatcher_model.h"

#include "text/similarity.h"
#include "text/tokenizer.h"
#include "util/logging.h"

namespace certa::models {

DeepMatcherModel::DeepMatcherModel() : FeatureMatcher(Head::kMlp) {}

ml::Vector DeepMatcherModel::Features(const data::Record& u,
                                      const data::Record& v) const {
  CERTA_CHECK_EQ(u.values.size(), v.values.size())
      << "DeepMatcher requires aligned schemas";
  ml::Vector features;
  features.reserve(u.values.size() * kFeaturesPerAttribute);
  for (size_t a = 0; a < u.values.size(); ++a) {
    const std::string& value_u = u.values[a];
    const std::string& value_v = v.values[a];
    bool missing_u = text::IsMissing(value_u);
    bool missing_v = text::IsMissing(value_v);
    if (missing_u || missing_v) {
      // Neutral similarity block with missing indicators: the MLP learns
      // how much absence matters per attribute.
      features.insert(features.end(),
                      {0.0, 0.0, 0.0, 0.0,
                       missing_u && missing_v ? 1.0 : 0.0,
                       missing_u != missing_v ? 1.0 : 0.0});
      continue;
    }
    std::vector<std::string> tokens_u = text::Tokenize(value_u);
    std::vector<std::string> tokens_v = text::Tokenize(value_v);
    features.push_back(text::JaccardSimilarity(tokens_u, tokens_v));
    features.push_back(text::LevenshteinSimilarity(
        text::Normalize(value_u), text::Normalize(value_v)));
    features.push_back(text::SymmetricMongeElkan(tokens_u, tokens_v));
    features.push_back(text::AttributeSimilarity(value_u, value_v));
    features.push_back(0.0);  // missing_both
    features.push_back(0.0);  // missing_one
  }
  return features;
}

}  // namespace certa::models
