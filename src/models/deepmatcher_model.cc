#include "models/deepmatcher_model.h"

#include <cstdint>
#include <unordered_map>

#include "text/similarity.h"
#include "text/tokenizer.h"
#include "util/logging.h"

namespace certa::models {
namespace {

/// Per-attribute preprocessing shared by every pair the attribute value
/// participates in: missing flag, token list, normalized string, the
/// numeric parse AttributeSimilarity would redo, and the sorted trigram
/// shingle set (the dominant per-comparison cost).
struct AttributeRep {
  const std::string* value = nullptr;
  bool missing = false;
  bool is_numeric = false;
  double numeric = 0.0;
  std::vector<std::string> tokens;
  std::string normalized;
  std::vector<uint64_t> shingles;
};

std::vector<AttributeRep> MakeRep(const data::Record& record) {
  std::vector<AttributeRep> attrs(record.values.size());
  for (size_t a = 0; a < record.values.size(); ++a) {
    AttributeRep& rep = attrs[a];
    rep.value = &record.values[a];
    rep.missing = text::IsMissing(record.values[a]);
    if (rep.missing) continue;
    rep.is_numeric = text::TryParseNumeric(record.values[a], &rep.numeric);
    rep.tokens = text::Tokenize(record.values[a]);
    rep.shingles = text::TrigramShingles(record.values[a]);
    rep.normalized = text::Normalize(record.values[a]);
  }
  return attrs;
}

/// AttributeSimilarity over precomputed reps (both values non-missing):
/// same numeric fast path, then the Jaccard/trigram blend over the
/// already-tokenized-and-shingled values.
double RepAttributeSimilarity(const AttributeRep& u, const AttributeRep& v) {
  if (u.is_numeric && v.is_numeric) {
    return text::NumericSimilarity(u.numeric, v.numeric);
  }
  return 0.5 * text::JaccardSimilarity(u.tokens, v.tokens) +
         0.5 * text::TrigramSimilarityOfShingles(u.shingles, v.shingles);
}

ml::Vector PairFeatures(const std::vector<AttributeRep>& u,
                        const std::vector<AttributeRep>& v) {
  CERTA_CHECK_EQ(u.size(), v.size())
      << "DeepMatcher requires aligned schemas";
  ml::Vector features;
  features.reserve(u.size() * DeepMatcherModel::kFeaturesPerAttribute);
  for (size_t a = 0; a < u.size(); ++a) {
    const AttributeRep& rep_u = u[a];
    const AttributeRep& rep_v = v[a];
    if (rep_u.missing || rep_v.missing) {
      // Neutral similarity block with missing indicators: the MLP learns
      // how much absence matters per attribute.
      features.insert(features.end(),
                      {0.0, 0.0, 0.0, 0.0,
                       rep_u.missing && rep_v.missing ? 1.0 : 0.0,
                       rep_u.missing != rep_v.missing ? 1.0 : 0.0});
      continue;
    }
    features.push_back(text::JaccardSimilarity(rep_u.tokens, rep_v.tokens));
    features.push_back(
        text::LevenshteinSimilarity(rep_u.normalized, rep_v.normalized));
    features.push_back(text::SymmetricMongeElkan(rep_u.tokens, rep_v.tokens));
    features.push_back(RepAttributeSimilarity(rep_u, rep_v));
    features.push_back(0.0);  // missing_both
    features.push_back(0.0);  // missing_one
  }
  return features;
}

}  // namespace

DeepMatcherModel::DeepMatcherModel() : FeatureMatcher(Head::kMlp) {}

ml::Vector DeepMatcherModel::Features(const data::Record& u,
                                      const data::Record& v) const {
  return PairFeatures(MakeRep(u), MakeRep(v));
}

std::vector<ml::Vector> DeepMatcherModel::FeaturesBatch(
    std::span<const RecordPair> pairs) const {
  std::vector<std::vector<AttributeRep>> reps;
  std::unordered_map<const data::Record*, size_t> rep_index;
  auto rep_of = [&](const data::Record* record) {
    auto [it, inserted] = rep_index.try_emplace(record, reps.size());
    if (inserted) reps.push_back(MakeRep(*record));
    return it->second;
  };
  std::vector<ml::Vector> rows;
  rows.reserve(pairs.size());
  for (const RecordPair& pair : pairs) {
    size_t left = rep_of(pair.left);
    size_t right = rep_of(pair.right);
    rows.push_back(PairFeatures(reps[left], reps[right]));
  }
  return rows;
}

}  // namespace certa::models
