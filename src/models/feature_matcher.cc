#include "models/feature_matcher.h"

#include "util/logging.h"

namespace certa::models {

void FeatureMatcher::Fit(const data::Dataset& dataset, uint64_t seed) {
  CERTA_CHECK(!dataset.train.empty());
  std::vector<ml::Vector> features;
  std::vector<int> labels;
  features.reserve(dataset.train.size());
  labels.reserve(dataset.train.size());
  for (const data::LabeledPair& pair : dataset.train) {
    features.push_back(Features(dataset.left.record(pair.left_index),
                                dataset.right.record(pair.right_index)));
    labels.push_back(pair.label);
  }
  std::vector<ml::Vector> scaled = scaler_.FitTransform(features);
  switch (head_) {
    case Head::kLogistic: {
      ml::LogisticRegression::Options options;
      options.seed = seed;
      logistic_.Fit(scaled, labels, options);
      break;
    }
    case Head::kMlp: {
      ml::Mlp::Options options;
      options.seed = seed;
      mlp_.Fit(scaled, labels, options);
      break;
    }
    case Head::kSvm: {
      ml::LinearSvm::Options options;
      options.seed = seed;
      svm_.Fit(scaled, labels, options);
      break;
    }
  }
  fitted_ = true;
}

double FeatureMatcher::Score(const data::Record& u,
                             const data::Record& v) const {
  CERTA_CHECK(fitted_);
  ml::Vector scaled = scaler_.Transform(Features(u, v));
  switch (head_) {
    case Head::kLogistic:
      return logistic_.PredictProbability(scaled);
    case Head::kMlp:
      return mlp_.PredictProbability(scaled);
    case Head::kSvm:
      return svm_.PredictProbability(scaled);
  }
  return 0.0;
}

std::vector<ml::Vector> FeatureMatcher::FeaturesBatch(
    std::span<const RecordPair> pairs) const {
  std::vector<ml::Vector> rows;
  rows.reserve(pairs.size());
  for (const RecordPair& pair : pairs) {
    rows.push_back(Features(*pair.left, *pair.right));
  }
  return rows;
}

std::vector<double> FeatureMatcher::ScoreBatch(
    std::span<const RecordPair> pairs) const {
  CERTA_CHECK(fitted_);
  std::vector<ml::Vector> rows = FeaturesBatch(pairs);
  for (ml::Vector& row : rows) scaler_.TransformInPlace(&row);
  switch (head_) {
    case Head::kLogistic:
      return logistic_.PredictProbabilityBatch(rows);
    case Head::kMlp:
      return mlp_.PredictProbabilityBatch(rows);
    case Head::kSvm:
      return svm_.PredictProbabilityBatch(rows);
  }
  return std::vector<double>(pairs.size(), 0.0);
}

void FeatureMatcher::SaveParameters(TextArchive* archive) const {
  CERTA_CHECK(fitted_);
  scaler_.Save(archive, "scaler");
  switch (head_) {
    case Head::kLogistic:
      archive->PutString("head", "logistic");
      logistic_.Save(archive, "head.logistic");
      break;
    case Head::kMlp:
      archive->PutString("head", "mlp");
      mlp_.Save(archive, "head.mlp");
      break;
    case Head::kSvm:
      archive->PutString("head", "svm");
      svm_.Save(archive, "head.svm");
      break;
  }
}

bool FeatureMatcher::LoadParameters(const TextArchive& archive) {
  std::string head_name;
  if (!archive.GetString("head", &head_name)) return false;
  if (!scaler_.Load(archive, "scaler")) return false;
  bool loaded = false;
  switch (head_) {
    case Head::kLogistic:
      loaded = head_name == "logistic" &&
               logistic_.Load(archive, "head.logistic");
      break;
    case Head::kMlp:
      loaded = head_name == "mlp" && mlp_.Load(archive, "head.mlp");
      break;
    case Head::kSvm:
      loaded = head_name == "svm" && svm_.Load(archive, "head.svm");
      break;
  }
  fitted_ = loaded;
  return loaded;
}

}  // namespace certa::models
