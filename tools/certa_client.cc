// certa_client — companion client for `certa serve --listen PORT`.
//
// Speaks the line-delimited JSON protocol of docs/SERVICE.md:
//   certa_client submit --port P [--host H] [request flags] [--no-watch]
//       Submit one explanation job. With watching (default) streams
//       progress/terminal events, then fetches and prints the result
//       JSON on completion. Exit: 0 complete, 1 error, 3 parked.
//   certa_client status --port P --job ID
//   certa_client result --port P --job ID
//       Fetch a stored result. A `stale_recomputing` answer (the job's
//       input records changed; the server re-admitted it) downgrades
//       to status polling and prints the recomputed result.
//   certa_client cancel --port P --job ID
//   certa_client stats  --port P
//   certa_client ping   --port P
//       One request frame, one response frame, printed verbatim.
//   certa_client upsert --port P --dataset CODE --side left|right
//                       --record ID --values "v1|v2|..." [--data-dir DIR]
//   certa_client remove --port P --dataset CODE --side left|right
//                       --record ID [--data-dir DIR]
//   certa_client match  --port P --dataset CODE --side left|right
//                       --values "v1|v2|..." [--top-k N] [--data-dir DIR]
//       The v2 streaming verbs (server must run with --stream-dir).
//   certa_client invalidations --port P [--once]
//       Subscribe: prints the catch-up frame (already-stale jobs), then
//       streams invalidation events until the connection ends (--once
//       stops after the catch-up frame).
//
// Reconnects: against a worker fleet (`serve --listen --workers N`) a
// connection can die mid-conversation when its worker is killed or
// rolled — the port itself stays up. Every command retries
// connect/IO failures with exponential backoff (--retries N, default
// 8; --no-retry disables). The budget bounds each consecutive-failure
// streak, not the client's lifetime: a successful reconnect restores
// it in full, so a long rolling restart — one brief outage per worker
// — can never exhaust --retries cumulatively. A dropped watch stream
// resumes by polling
// `status` — the job's durable state, not the lost connection, is the
// truth — and the poll treats a parked job as transient for a grace
// window, because the respawned worker's resume sweep re-admits it.
//
// Request flags mirror `certa explain` (--dataset --model --pair
// --triangles --threads --seed --budget --deadline-ms --no-cache ...):
// both sides parse into the same versioned api::ExplainRequest.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <iostream>
#include <limits>
#include <map>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "api/explain_request.h"
#include "net/wire.h"
#include "util/json_parser.h"
#include "util/string_utils.h"

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  bool Has(const std::string& key) const { return options.count(key) > 0; }
  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = options.find(key);
    return it != options.end() ? it->second : fallback;
  }
};

bool Parse(int argc, char** argv, Args* args) {
  if (argc < 2) return false;
  args->command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const char* token = argv[i];
    if (std::strncmp(token, "--", 2) != 0) return false;
    std::string key(token + 2);
    if (key == "no-cache" || key == "no-watch" || key == "quiet" ||
        key == "no-retry" || key == "once") {
      args->options[key] = "1";
      continue;
    }
    if (i + 1 >= argc) return false;
    args->options[key] = argv[++i];
  }
  return true;
}

int Usage() {
  std::cerr << "usage:\n"
               "  certa_client submit --port P [--host H] [--id NAME]\n"
               "               [--dataset CODE] [--model NAME] [--pair N]\n"
               "               [--triangles T] [--threads K] [--seed N]\n"
               "               [--budget N] [--deadline-ms N] [--no-cache]\n"
               "               [--data-dir DIR] [--no-watch] [--quiet]\n"
               "               [--retries N] [--no-retry]\n"
               "  certa_client status --port P [--host H] --job ID\n"
               "  certa_client result --port P [--host H] --job ID\n"
               "  certa_client cancel --port P [--host H] --job ID\n"
               "  certa_client stats  --port P [--host H]\n"
               "  certa_client ping   --port P [--host H]\n"
               "  certa_client upsert --port P --dataset CODE\n"
               "               --side left|right --record ID\n"
               "               --values \"v1|v2|...\" [--data-dir DIR]\n"
               "  certa_client remove --port P --dataset CODE\n"
               "               --side left|right --record ID\n"
               "               [--data-dir DIR]\n"
               "  certa_client match  --port P --dataset CODE\n"
               "               --side left|right --values \"v1|v2|...\"\n"
               "               [--top-k N] [--data-dir DIR]\n"
               "  certa_client invalidations --port P [--once]\n"
               "(every command takes --retries N / --no-retry)\n";
  return 2;
}

/// Where and how persistently to reach the server.
struct Endpoint {
  std::string host = "127.0.0.1";
  int port = 0;
  /// Consecutive connect/IO failures tolerated before giving up.
  int retries = 8;
};

constexpr long long kBackoffInitialMs = 100;
constexpr long long kBackoffMaxMs = 2000;

long long BackoffMs(int consecutive_failures) {
  long long ms = kBackoffInitialMs;
  for (int i = 1; i < consecutive_failures; ++i) {
    ms = std::min(ms * 2, kBackoffMaxMs);
  }
  return ms;
}

/// Blocking line-oriented connection — the client is sequential by
/// design; all the event-loop machinery lives server-side.
class Connection {
 public:
  ~Connection() { Close(); }

  void Close() {
    if (fd_ >= 0) close(fd_);
    fd_ = -1;
    buffer_.clear();
  }

  bool Connect(const std::string& host, int port, std::string* error) {
    Close();
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
      *error = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      *error = "invalid host address: " + host;
      return false;
    }
    if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      *error = "connect " + host + ":" + std::to_string(port) + ": " +
               std::strerror(errno);
      Close();
      return false;
    }
    int one = 1;
    setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return true;
  }

  bool Send(const std::string& frame, std::string* error) {
    if (fd_ < 0) {
      *error = "not connected";
      return false;
    }
    size_t sent = 0;
    while (sent < frame.size()) {
      ssize_t n = write(fd_, frame.data() + sent, frame.size() - sent);
      if (n < 0) {
        if (errno == EINTR) continue;
        *error = std::string("write: ") + std::strerror(errno);
        return false;
      }
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  /// Next full frame line (newline stripped). False on EOF/error.
  bool ReadLine(std::string* line, std::string* error) {
    while (true) {
      size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        *line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return true;
      }
      if (fd_ < 0) {
        *error = "not connected";
        return false;
      }
      char chunk[4096];
      ssize_t n = read(fd_, chunk, sizeof(chunk));
      if (n > 0) {
        buffer_.append(chunk, static_cast<size_t>(n));
        continue;
      }
      if (n == 0) {
        *error = "server closed the connection";
        return false;
      }
      if (errno == EINTR) continue;
      *error = std::string("read: ") + std::strerror(errno);
      return false;
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

/// Connects with bounded retries. ECONNREFUSED while a fleet worker
/// restarts (or before the next one binds) is expected and brief; the
/// listen port itself is held by the master for the fleet's whole life.
bool ConnectWithRetry(const Endpoint& endpoint, Connection* conn,
                      std::string* error) {
  for (int failures = 0;; ++failures) {
    if (conn->Connect(endpoint.host, endpoint.port, error)) return true;
    if (failures >= endpoint.retries) return false;
    std::cerr << "reconnect " << (failures + 1) << "/" << endpoint.retries
              << ": " << *error << "\n";
    std::this_thread::sleep_for(
        std::chrono::milliseconds(BackoffMs(failures + 1)));
  }
}

/// Pulls type/fields out of a server frame (tolerantly: unknown frames
/// just echo through).
struct ServerFrame {
  std::string type;
  std::string event;
  std::string state;
  std::string code;
  std::string message;
  std::string job_id;
};

bool ParseServerFrame(const std::string& line, ServerFrame* frame) {
  certa::JsonValue value;
  std::string error;
  if (!certa::JsonValue::Parse(line, &value, &error) || !value.is_object()) {
    return false;
  }
  auto text = [&](const char* key) -> std::string {
    const certa::JsonValue* member = value.Find(key);
    return member != nullptr && member->is_string() ? member->string_value()
                                                    : std::string();
  };
  frame->type = text("type");
  frame->event = text("event");
  frame->state = text("state");
  frame->code = text("code");
  frame->message = text("message");
  frame->job_id = text("job_id");
  return true;
}

/// One request frame, one response frame, printed verbatim — retried
/// on a fresh connection after any IO failure. Safe for every verb
/// here: status/result/stats/ping are reads, cancel is idempotent.
///
/// Budget semantics: --retries bounds each *streak* of consecutive
/// failures, not the client's lifetime total — every successful
/// reconnect restores the full budget. A long rolling restart of an
/// N-worker fleet is N brief outages in a row; each is individually
/// survivable and must not drain a shared cumulative counter.
int RoundTrip(const Endpoint& endpoint, const std::string& request) {
  std::string error;
  int failures = 0;
  for (;;) {
    Connection conn;
    if (!ConnectWithRetry(endpoint, &conn, &error)) break;
    failures = 0;  // successful reconnect: the budget starts over
    std::string line;
    if (conn.Send(request, &error) && conn.ReadLine(&line, &error)) {
      std::cout << line << "\n";
      ServerFrame frame;
      return ParseServerFrame(line, &frame) && frame.type == "error" ? 1 : 0;
    }
    if (++failures > endpoint.retries) break;
    std::cerr << "retrying: " << error << "\n";
    std::this_thread::sleep_for(
        std::chrono::milliseconds(BackoffMs(failures)));
  }
  std::cerr << "error: " << error << "\n";
  return 1;
}

/// Watch fallback once the event stream is gone (worker killed or
/// rolled mid-watch): poll `status` until the job is terminal. The
/// job's durable state on disk — reachable through any worker via the
/// peer-partition fallback — is the truth the lost stream was only
/// mirroring. A parked answer is transient while the fleet is
/// restarting (the respawned worker's resume sweep re-admits the job),
/// so parked only becomes the final answer after a grace window.
int WatchByPolling(const Endpoint& endpoint, const std::string& job_id,
                   bool quiet) {
  constexpr std::chrono::milliseconds kStalledGrace(5000);
  constexpr auto kNever = std::chrono::steady_clock::time_point::min();
  std::string error;
  auto stalled_since = kNever;  // first parked/unknown observation
  int failures = 0;
  bool connected = false;
  Connection conn;
  for (;;) {
    if (!connected) {
      if (failures > endpoint.retries ||
          !ConnectWithRetry(endpoint, &conn, &error)) {
        std::cerr << "server unreachable while the job was in flight; "
                     "its job dir stays resumable\n";
        return 3;
      }
      connected = true;
      // Successful reconnect: the retry budget starts over. Without
      // this, each worker rolled during a long SIGHUP restart eats a
      // slice of one cumulative budget and a watch spanning N rolls
      // dies on outage N+1 even though every single outage was brief.
      failures = 0;
    }
    std::string line;
    if (!conn.Send(certa::net::StatusRequestFrame(job_id), &error) ||
        !conn.ReadLine(&line, &error)) {
      connected = false;
      ++failures;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(BackoffMs(failures)));
      continue;
    }
    failures = 0;
    ServerFrame frame;
    if (ParseServerFrame(line, &frame)) {
      if (frame.type == "status") {
        if (frame.state == "complete") {
          if (!quiet) std::cout << line << "\n";
          if (!conn.Send(certa::net::ResultRequestFrame(job_id), &error) ||
              !conn.ReadLine(&line, &error)) {
            connected = false;
            ++failures;
            continue;
          }
          std::cout << line << "\n";
          return ParseServerFrame(line, &frame) && frame.type == "result" ? 0
                                                                          : 1;
        }
        if (frame.state == "failed") {
          std::cout << line << "\n";
          return 1;
        }
        const bool stalled =
            frame.state == "parked" || frame.state == "interrupted";
        if (stalled) {
          const auto now = std::chrono::steady_clock::now();
          if (stalled_since == kNever) stalled_since = now;
          if (now - stalled_since > kStalledGrace) {
            std::cout << line << "\n";
            return 3;
          }
        } else {
          stalled_since = kNever;  // queued/running: alive again
        }
      } else if (frame.type == "error") {
        // unknown_job can be a brief pre-adoption window right after a
        // crash; past the grace window it is a real failure.
        const auto now = std::chrono::steady_clock::now();
        if (stalled_since == kNever) stalled_since = now;
        if (now - stalled_since > kStalledGrace) {
          std::cout << line << "\n";
          return 1;
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
}

/// The request-field flags submit forwards (same spellings as `certa
/// explain`; api::ApplyField validates).
constexpr const char* kRequestFlagKeys[] = {
    "id",        "dataset", "data", "data-dir", "model",       "pair",
    "pair-index", "triangles", "threads", "seed", "budget", "deadline-ms",
    "fault-rate"};

int CmdSubmit(const Args& args, const Endpoint& endpoint) {
  certa::api::ExplainRequest request;
  for (const char* key : kRequestFlagKeys) {
    if (!args.Has(key)) continue;
    std::string error;
    if (!certa::api::ApplyField(key, args.Get(key, ""), &request, &error)) {
      std::cerr << "error: --" << key << ": " << error << "\n";
      return 2;
    }
    const std::string note = certa::api::DeprecationNote(key);
    if (!note.empty()) std::cerr << "warning: " << note << "\n";
  }
  if (args.Has("no-cache")) request.use_cache = false;
  std::string error;
  if (!request.Validate(&error)) {
    std::cerr << "error: " << error << "\n";
    return 2;
  }
  const bool watch = !args.Has("no-watch");
  const bool quiet = args.Has("quiet");
  // The admission id the durable layer will use: known up front only
  // when the caller named one. A named job lets a broken submit fall
  // back to status polling instead of risking a duplicate submission.
  const std::string named_id = args.Get("id", "");

  Connection conn;
  std::string job_id;
  std::string line;
  int failures = 0;
  while (job_id.empty()) {
    if (!ConnectWithRetry(endpoint, &conn, &error)) {
      std::cerr << "error: " << error << "\n";
      return 1;
    }
    failures = 0;  // successful reconnect: the budget starts over
    if (!conn.Send(certa::net::SubmitFrame(request, watch), &error) ||
        !conn.ReadLine(&line, &error)) {
      // The submit may or may not have been admitted. With a caller-
      // named id the status poll resolves the ambiguity; resubmitting
      // an anonymous job could run it twice, so that is an error.
      if (!named_id.empty() && endpoint.retries > 0) {
        std::cerr << "submit connection lost (" << error
                  << "); polling status of " << named_id << "\n";
        return WatchByPolling(endpoint, named_id, quiet);
      }
      if (++failures <= endpoint.retries) {
        std::cerr << "retrying submit: " << error << "\n";
        std::this_thread::sleep_for(
            std::chrono::milliseconds(BackoffMs(failures)));
        continue;
      }
      std::cerr << "error: " << error << "\n";
      return 1;
    }
    ServerFrame frame;
    if (!ParseServerFrame(line, &frame) || frame.type == "error") {
      std::cout << line << "\n";
      return 1;
    }
    if (frame.type != "accepted") {
      std::cerr << "error: unexpected response: " << line << "\n";
      return 1;
    }
    job_id = frame.job_id;
  }
  if (!quiet) std::cout << line << "\n";
  if (!watch) return 0;

  // Stream events until this job's terminal one. A dropped stream (or
  // a shutdown event from a worker being rolled) downgrades to status
  // polling — the job survives its worker.
  std::string terminal_state;
  while (terminal_state.empty()) {
    if (!conn.ReadLine(&line, &error)) {
      if (endpoint.retries > 0) {
        std::cerr << "watch stream lost (" << error << "); polling status of "
                  << job_id << "\n";
        return WatchByPolling(endpoint, job_id, quiet);
      }
      std::cerr << "error: " << error << "\n";
      return 1;
    }
    ServerFrame frame;
    if (!ParseServerFrame(line, &frame)) continue;
    if (frame.type == "event" && frame.event == "shutdown") {
      if (endpoint.retries > 0) {
        return WatchByPolling(endpoint, job_id, quiet);
      }
      std::cerr << "server shut down before the job finished; "
                   "its job dir stays resumable\n";
      return 3;
    }
    if (frame.type != "event" || frame.job_id != job_id) continue;
    if (!quiet) std::cout << line << "\n";
    if (frame.event == "terminal") terminal_state = frame.state;
  }
  if (terminal_state == "parked") {
    // A worker being drained (rolling restart, fleet shutdown) parks
    // its in-flight jobs; a respawned worker resumes them. With
    // retries enabled, parked is a pause, not an outcome.
    if (endpoint.retries > 0) return WatchByPolling(endpoint, job_id, quiet);
    return 3;
  }
  if (terminal_state != "complete") return 1;

  // Fetch the stored result and print just the result document.
  if (!conn.Send(certa::net::ResultRequestFrame(job_id), &error) ||
      !conn.ReadLine(&line, &error)) {
    if (endpoint.retries > 0) return WatchByPolling(endpoint, job_id, quiet);
    std::cerr << "error: " << error << "\n";
    return 1;
  }
  ServerFrame frame;
  if (!ParseServerFrame(line, &frame) || frame.type != "result") {
    std::cout << line << "\n";
    return 1;
  }
  std::cout << line << "\n";
  return 0;
}

/// Splits the --values flag on '|' (no escaping — attribute values in
/// the streaming protocol are plain text; a value containing '|' must
/// go through the JSON wire directly).
std::vector<std::string> SplitValues(const std::string& text) {
  std::vector<std::string> values;
  std::string current;
  for (char c : text) {
    if (c == '|') {
      values.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  values.push_back(current);
  return values;
}

bool ParseSideFlag(const Args& args, int* side) {
  const std::string text = certa::ToLowerAscii(args.Get("side", ""));
  if (text == "left" || text == "l" || text == "0") {
    *side = 0;
  } else if (text == "right" || text == "r" || text == "1") {
    *side = 1;
  } else {
    std::cerr << "error: --side must be left or right\n";
    return false;
  }
  return true;
}

bool ParseRecordFlag(const Args& args, int* record_id) {
  long long value = 0;
  if (!args.Has("record") ||
      !certa::ParseInt64(args.Get("record", ""), &value) || value < 0 ||
      value > std::numeric_limits<int>::max()) {
    std::cerr << "error: --record must be a non-negative integer\n";
    return false;
  }
  *record_id = static_cast<int>(value);
  return true;
}

/// `result` with staleness handling: a `stale_recomputing` error means
/// the server noticed this job's input records drifted and re-admitted
/// it — downgrade to status polling (the same loop a dropped watch
/// uses) and print the recomputed result when it lands.
int CmdResult(const Endpoint& endpoint, const std::string& job_id) {
  std::string error;
  int failures = 0;
  for (;;) {
    Connection conn;
    if (!ConnectWithRetry(endpoint, &conn, &error)) break;
    failures = 0;
    std::string line;
    if (conn.Send(certa::net::ResultRequestFrame(job_id), &error) &&
        conn.ReadLine(&line, &error)) {
      ServerFrame frame;
      if (ParseServerFrame(line, &frame) && frame.type == "error" &&
          frame.code == "stale_recomputing") {
        std::cerr << "result is stale (" << frame.message
                  << "); waiting for the recompute\n";
        return WatchByPolling(endpoint, job_id, /*quiet=*/true);
      }
      std::cout << line << "\n";
      return frame.type == "error" ? 1 : 0;
    }
    if (++failures > endpoint.retries) break;
    std::cerr << "retrying: " << error << "\n";
    std::this_thread::sleep_for(
        std::chrono::milliseconds(BackoffMs(failures)));
  }
  std::cerr << "error: " << error << "\n";
  return 1;
}

/// `invalidations`: subscribe, print the catch-up frame (jobs already
/// stale), then stream invalidation events until the server ends the
/// connection. --once exits after the catch-up frame.
int CmdInvalidations(const Endpoint& endpoint, bool once) {
  std::string error;
  Connection conn;
  if (!ConnectWithRetry(endpoint, &conn, &error)) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }
  std::string line;
  if (!conn.Send(certa::net::InvalidationsRequestFrame(true), &error) ||
      !conn.ReadLine(&line, &error)) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }
  std::cout << line << "\n" << std::flush;
  ServerFrame frame;
  if (ParseServerFrame(line, &frame) && frame.type == "error") return 1;
  if (once) return 0;
  while (conn.ReadLine(&line, &error)) {
    std::cout << line << "\n" << std::flush;
  }
  std::cerr << "subscription ended: " << error << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // A worker being restarted closes sockets mid-write; that must
  // surface as a retryable EPIPE, not kill the client.
  signal(SIGPIPE, SIG_IGN);
  Args args;
  if (!Parse(argc, argv, &args)) return Usage();
  Endpoint endpoint;
  long long port = 0;
  if (!args.Has("port") ||
      !certa::ParseInt64(args.Get("port", ""), &port) || port <= 0 ||
      port > 65535) {
    std::cerr << "error: --port is required (1-65535)\n";
    return 2;
  }
  endpoint.host = args.Get("host", "127.0.0.1");
  endpoint.port = static_cast<int>(port);
  long long retries = 8;
  if (args.Has("retries") &&
      (!certa::ParseInt64(args.Get("retries", ""), &retries) || retries < 0 ||
       retries > 1000)) {
    std::cerr << "error: --retries must be an integer in [0, 1000]\n";
    return 2;
  }
  endpoint.retries = args.Has("no-retry") ? 0 : static_cast<int>(retries);

  if (args.command == "submit") return CmdSubmit(args, endpoint);
  if (args.command == "ping") {
    return RoundTrip(endpoint, certa::net::PingFrame());
  }
  if (args.command == "stats") {
    return RoundTrip(endpoint, certa::net::StatsRequestFrame());
  }
  if (args.command == "invalidations") {
    return CmdInvalidations(endpoint, args.Has("once"));
  }
  if (args.command == "upsert" || args.command == "remove" ||
      args.command == "match") {
    const std::string dataset = args.Get("dataset", "");
    if (dataset.empty()) {
      std::cerr << "error: --dataset is required\n";
      return 2;
    }
    const std::string data_dir = args.Get("data-dir", "");
    int side = 0;
    if (!ParseSideFlag(args, &side)) return 2;
    if (args.command == "match") {
      long long top_k = 10;
      if (args.Has("top-k") &&
          (!certa::ParseInt64(args.Get("top-k", ""), &top_k) || top_k < 1 ||
           top_k > 10000)) {
        std::cerr << "error: --top-k must be an integer in [1, 10000]\n";
        return 2;
      }
      return RoundTrip(endpoint, certa::net::MatchRequestFrame(
                                     dataset, data_dir, side,
                                     SplitValues(args.Get("values", "")),
                                     static_cast<int>(top_k)));
    }
    int record_id = -1;
    if (!ParseRecordFlag(args, &record_id)) return 2;
    if (args.command == "upsert") {
      if (!args.Has("values")) {
        std::cerr << "error: --values is required for upsert\n";
        return 2;
      }
      return RoundTrip(endpoint, certa::net::UpsertRequestFrame(
                                     dataset, data_dir, side, record_id,
                                     SplitValues(args.Get("values", ""))));
    }
    return RoundTrip(endpoint, certa::net::RemoveRequestFrame(
                                   dataset, data_dir, side, record_id));
  }
  const std::string job = args.Get("job", "");
  if (job.empty()) return Usage();
  if (args.command == "status") {
    return RoundTrip(endpoint, certa::net::StatusRequestFrame(job));
  }
  if (args.command == "result") {
    return CmdResult(endpoint, job);
  }
  if (args.command == "cancel") {
    return RoundTrip(endpoint, certa::net::CancelRequestFrame(job));
  }
  return Usage();
}
