// certa_client — companion client for `certa serve --listen PORT`.
//
// Speaks the line-delimited JSON protocol of docs/SERVICE.md:
//   certa_client submit --port P [--host H] [request flags] [--no-watch]
//       Submit one explanation job. With watching (default) streams
//       progress/terminal events, then fetches and prints the result
//       JSON on completion. Exit: 0 complete, 1 error, 3 parked.
//   certa_client status --port P --job ID
//   certa_client result --port P --job ID
//   certa_client cancel --port P --job ID
//   certa_client stats  --port P
//   certa_client ping   --port P
//       One request frame, one response frame, printed verbatim.
//
// Request flags mirror `certa explain` (--dataset --model --pair
// --triangles --threads --seed --budget --deadline-ms --no-cache ...):
// both sides parse into the same versioned api::ExplainRequest.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <string_view>

#include "api/explain_request.h"
#include "net/wire.h"
#include "util/json_parser.h"
#include "util/string_utils.h"

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  bool Has(const std::string& key) const { return options.count(key) > 0; }
  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = options.find(key);
    return it != options.end() ? it->second : fallback;
  }
};

bool Parse(int argc, char** argv, Args* args) {
  if (argc < 2) return false;
  args->command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const char* token = argv[i];
    if (std::strncmp(token, "--", 2) != 0) return false;
    std::string key(token + 2);
    if (key == "no-cache" || key == "no-watch" || key == "quiet") {
      args->options[key] = "1";
      continue;
    }
    if (i + 1 >= argc) return false;
    args->options[key] = argv[++i];
  }
  return true;
}

int Usage() {
  std::cerr << "usage:\n"
               "  certa_client submit --port P [--host H] [--id NAME]\n"
               "               [--dataset CODE] [--model NAME] [--pair N]\n"
               "               [--triangles T] [--threads K] [--seed N]\n"
               "               [--budget N] [--deadline-ms N] [--no-cache]\n"
               "               [--data-dir DIR] [--no-watch] [--quiet]\n"
               "  certa_client status --port P [--host H] --job ID\n"
               "  certa_client result --port P [--host H] --job ID\n"
               "  certa_client cancel --port P [--host H] --job ID\n"
               "  certa_client stats  --port P [--host H]\n"
               "  certa_client ping   --port P [--host H]\n";
  return 2;
}

/// Blocking line-oriented connection — the client is sequential by
/// design; all the event-loop machinery lives server-side.
class Connection {
 public:
  ~Connection() {
    if (fd_ >= 0) close(fd_);
  }

  bool Connect(const std::string& host, int port, std::string* error) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
      *error = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      *error = "invalid host address: " + host;
      return false;
    }
    if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      *error = "connect " + host + ":" + std::to_string(port) + ": " +
               std::strerror(errno);
      return false;
    }
    int one = 1;
    setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return true;
  }

  bool Send(const std::string& frame, std::string* error) {
    size_t sent = 0;
    while (sent < frame.size()) {
      ssize_t n = write(fd_, frame.data() + sent, frame.size() - sent);
      if (n < 0) {
        if (errno == EINTR) continue;
        *error = std::string("write: ") + std::strerror(errno);
        return false;
      }
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  /// Next full frame line (newline stripped). False on EOF/error.
  bool ReadLine(std::string* line, std::string* error) {
    while (true) {
      size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        *line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return true;
      }
      char chunk[4096];
      ssize_t n = read(fd_, chunk, sizeof(chunk));
      if (n > 0) {
        buffer_.append(chunk, static_cast<size_t>(n));
        continue;
      }
      if (n == 0) {
        *error = "server closed the connection";
        return false;
      }
      if (errno == EINTR) continue;
      *error = std::string("read: ") + std::strerror(errno);
      return false;
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

/// Pulls type/fields out of a server frame (tolerantly: unknown frames
/// just echo through).
struct ServerFrame {
  std::string type;
  std::string event;
  std::string state;
  std::string code;
  std::string message;
  std::string job_id;
};

bool ParseServerFrame(const std::string& line, ServerFrame* frame) {
  certa::JsonValue value;
  std::string error;
  if (!certa::JsonValue::Parse(line, &value, &error) || !value.is_object()) {
    return false;
  }
  auto text = [&](const char* key) -> std::string {
    const certa::JsonValue* member = value.Find(key);
    return member != nullptr && member->is_string() ? member->string_value()
                                                    : std::string();
  };
  frame->type = text("type");
  frame->event = text("event");
  frame->state = text("state");
  frame->code = text("code");
  frame->message = text("message");
  frame->job_id = text("job_id");
  return true;
}

int RoundTrip(Connection* conn, const std::string& request) {
  std::string error;
  if (!conn->Send(request, &error)) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }
  std::string line;
  if (!conn->ReadLine(&line, &error)) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }
  std::cout << line << "\n";
  ServerFrame frame;
  return ParseServerFrame(line, &frame) && frame.type == "error" ? 1 : 0;
}

/// The request-field flags submit forwards (same spellings as `certa
/// explain`; api::ApplyField validates).
constexpr const char* kRequestFlagKeys[] = {
    "id",        "dataset", "data", "data-dir", "model",       "pair",
    "pair-index", "triangles", "threads", "seed", "budget", "deadline-ms",
    "fault-rate"};

int CmdSubmit(const Args& args, Connection* conn) {
  certa::api::ExplainRequest request;
  for (const char* key : kRequestFlagKeys) {
    if (!args.Has(key)) continue;
    std::string error;
    if (!certa::api::ApplyField(key, args.Get(key, ""), &request, &error)) {
      std::cerr << "error: --" << key << ": " << error << "\n";
      return 2;
    }
    const std::string note = certa::api::DeprecationNote(key);
    if (!note.empty()) std::cerr << "warning: " << note << "\n";
  }
  if (args.Has("no-cache")) request.use_cache = false;
  std::string error;
  if (!request.Validate(&error)) {
    std::cerr << "error: " << error << "\n";
    return 2;
  }
  const bool watch = !args.Has("no-watch");
  const bool quiet = args.Has("quiet");
  if (!conn->Send(certa::net::SubmitFrame(request, watch), &error)) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }
  std::string line;
  if (!conn->ReadLine(&line, &error)) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }
  ServerFrame frame;
  if (!ParseServerFrame(line, &frame) || frame.type == "error") {
    std::cout << line << "\n";
    return 1;
  }
  if (frame.type != "accepted") {
    std::cerr << "error: unexpected response: " << line << "\n";
    return 1;
  }
  const std::string job_id = frame.job_id;
  if (!quiet) std::cout << line << "\n";
  if (!watch) return 0;

  // Stream events until this job's terminal one.
  std::string terminal_state;
  while (true) {
    if (!conn->ReadLine(&line, &error)) {
      std::cerr << "error: " << error << "\n";
      return 1;
    }
    if (!ParseServerFrame(line, &frame)) continue;
    if (frame.type == "event" && frame.event == "shutdown") {
      std::cerr << "server shut down before the job finished; "
                   "its job dir stays resumable\n";
      return 3;
    }
    if (frame.type != "event" || frame.job_id != job_id) continue;
    if (!quiet) std::cout << line << "\n";
    if (frame.event == "terminal") {
      terminal_state = frame.state;
      break;
    }
  }
  if (terminal_state == "parked") return 3;
  if (terminal_state != "complete") return 1;

  // Fetch the stored result and print just the result document.
  if (!conn->Send(certa::net::ResultRequestFrame(job_id), &error) ||
      !conn->ReadLine(&line, &error)) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }
  if (!ParseServerFrame(line, &frame) || frame.type != "result") {
    std::cout << line << "\n";
    return 1;
  }
  std::cout << line << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!Parse(argc, argv, &args)) return Usage();
  long long port = 0;
  if (!args.Has("port") ||
      !certa::ParseInt64(args.Get("port", ""), &port) || port <= 0 ||
      port > 65535) {
    std::cerr << "error: --port is required (1-65535)\n";
    return 2;
  }
  Connection conn;
  std::string error;
  if (!conn.Connect(args.Get("host", "127.0.0.1"), static_cast<int>(port),
                    &error)) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }
  if (args.command == "submit") return CmdSubmit(args, &conn);
  if (args.command == "ping") return RoundTrip(&conn, certa::net::PingFrame());
  if (args.command == "stats") {
    return RoundTrip(&conn, certa::net::StatsRequestFrame());
  }
  const std::string job = args.Get("job", "");
  if (job.empty()) return Usage();
  if (args.command == "status") {
    return RoundTrip(&conn, certa::net::StatusRequestFrame(job));
  }
  if (args.command == "result") {
    return RoundTrip(&conn, certa::net::ResultRequestFrame(job));
  }
  if (args.command == "cancel") {
    return RoundTrip(&conn, certa::net::CancelRequestFrame(job));
  }
  return Usage();
}
