// certa — command-line driver for the CERTA explanation library.
//
// Subcommands:
//   certa datasets
//       List the built-in synthetic benchmarks with their statistics.
//   certa train --dataset AB [--model ditto] [--save FILE]
//       Train a model, report train/test F1, optionally persist it.
//   certa explain --dataset AB [--model ditto | --model-file FILE]
//                 [--pair N] [--triangles 100] [--json] [--tokens]
//       Explain one test-pair prediction with CERTA: text report (or
//       --json), optionally with token-level drill-down of the top
//       attribute.
//   certa export --dataset AB --out DIR
//       Write the synthetic benchmark as DeepMatcher-format CSVs.
//   certa profile --dataset AB
//       Per-attribute statistics of both sources.
//   certa rules --dataset FZ
//       Learn and print an interpretable rule-set matcher (SystemER
//       style) for the dataset.
//   certa global --dataset AB [--model ditto] [--pairs N]
//       Aggregate CERTA explanations over the test split: mean
//       saliency per predicted class + representative pairs.
//   certa serve [--job-root DIR] [--queue N] [--workers K] ...
//       Durable job service: reads job lines from stdin, answers
//       ACCEPT/REJECT per admission control, runs each job crash-safely
//       in its own job dir (see docs/OPERATIONS.md).
//   certa serve --listen PORT [--host ADDR] [--max-connections N] ...
//       Same durable service behind a TCP socket speaking the
//       line-delimited JSON protocol of docs/SERVICE.md (submit /
//       status / result / cancel / stats, streamed progress events).
//       Pair with tools/certa_client.
//   certa serve --resume JOBDIR
//       Resume a single interrupted/parked job from its directory.
//
// Every explanation entry point — `explain` flags, serve job lines,
// and the socket protocol — parses into the same versioned
// api::ExplainRequest, so validation and defaults cannot drift.
//
// A --data DIR pointing at a DeepMatcher-format directory (tableA.csv,
// tableB.csv, train.csv, test.csv) replaces the synthetic benchmark in
// any subcommand.
//
// `explain --job-dir DIR` makes that one explanation durable: scores
// are write-ahead journaled and progress checkpointed in DIR, so the
// same command re-run after a crash (or SIGINT — exit code 3) resumes
// without re-paying model calls and produces a bit-identical result.

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "api/explain_request.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/atomic_file.h"

#include "persist/checkpoint.h"
#include "persist/dir_lock.h"
#include "persist/score_store.h"
#include "service/job_runner.h"
#include "service/signals.h"
#include "service/supervisor.h"
#include "util/json_writer.h"

#include "certa.h"
#include "core/token_explainer.h"
#include "models/resilience.h"
#include "data/profiling.h"
#include "explain/aggregate.h"
#include "models/rule_model.h"
#include "util/string_utils.h"
#include "util/table_printer.h"

namespace {

using certa::data::Dataset;
using certa::models::ModelKind;

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  bool Has(const std::string& key) const { return options.count(key) > 0; }
  std::string Get(const std::string& key,
                  const std::string& fallback) const {
    auto it = options.find(key);
    return it != options.end() ? it->second : fallback;
  }
};

bool Parse(int argc, char** argv, Args* args) {
  if (argc < 2) return false;
  args->command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const char* token = argv[i];
    if (std::strncmp(token, "--", 2) != 0) return false;
    std::string key(token + 2);
    // Flags without values: --json, --tokens, --no-cache, --no-index.
    if (key == "json" || key == "tokens" || key == "no-cache" ||
        key == "no-index") {
      args->options[key] = "1";
      continue;
    }
    if (i + 1 >= argc) return false;
    args->options[key] = argv[++i];
  }
  return true;
}

int Usage() {
  std::cerr
      << "usage:\n"
         "  certa datasets\n"
         "  certa train   --dataset CODE [--model NAME] [--save FILE]\n"
         "  certa explain --dataset CODE [--model NAME | --model-file F]\n"
         "                [--pair N] [--triangles T] [--threads K]\n"
         "                [--seed N] [--no-cache] [--json] [--tokens]\n"
         "                [--data-dir DIR] [--budget N] [--deadline-ms N]\n"
         "                [--fault-rate X] [--metrics-out FILE]\n"
         "                [--trace-out FILE] [--no-index]\n"
         "  certa export  --dataset CODE --out DIR\n"
         "  certa profile --dataset CODE [--data DIR]\n"
         "  certa rules   --dataset CODE [--data DIR]\n"
         "  certa global  --dataset CODE [--model NAME] [--pairs N]\n"
         "                [--threads K] [--no-cache]\n"
         "  certa serve   [--job-root DIR] [--queue N] [--workers K]\n"
         "                [--checkpoint-every N] [--deadline-ms N]\n"
         "                [--stall-timeout-ms N] [--jobs FILE]\n"
         "                [--stats-every N] [--metrics-out FILE]\n"
         "                [--trace-out FILE] [--store-dir DIR] [--no-index]\n"
         "  certa serve   --listen PORT [--host ADDR]\n"
         "                [--max-connections N] [--stream-dir DIR]\n"
         "                [...same serve flags]\n"
         "                (--workers K >= 2 forks a fleet; --store-dir and\n"
         "                 --stream-dir are each one directory shared by\n"
         "                 every worker; --stream-dir enables the v2\n"
         "                 streaming verbs: upsert / remove / match /\n"
         "                 invalidations)\n"
         "  certa serve   --resume JOBDIR [--checkpoint-every N]\n"
         "                [--store-dir DIR]\n"
         "durable explain: explain ... --job-dir DIR [--checkpoint-every N]\n"
         "                 [--store-dir DIR] (cross-job score store)\n"
         "models: deeper | deepmatcher | ditto | svm\n"
         "dataset codes: ";
  for (const std::string& code : certa::data::BenchmarkCodes()) {
    std::cerr << code << " ";
  }
  std::cerr << "\n";
  return 2;
}

// Checked flag parsing. std::atoi was the previous implementation and
// silently mapped garbage to 0 ("--pair=abc" explained pair 0, and
// "--pair=-1" reached indexing as a negative); every integer flag and
// job-line key now goes through these, which print a clear error and
// make the command exit nonzero.

bool ParseIntFlag(const Args& args, const std::string& key,
                  long long fallback, long long min_value, long long* out) {
  if (!args.Has(key)) {
    *out = fallback;
    return true;
  }
  const std::string text = args.Get(key, "");
  long long value = 0;
  if (!certa::ParseInt64(text, &value)) {
    std::cerr << "error: --" << key << "=" << text
              << " is not an integer\n";
    return false;
  }
  if (value < min_value) {
    std::cerr << "error: --" << key << " must be >= " << min_value
              << " (got " << value << ")\n";
    return false;
  }
  *out = value;
  return true;
}

bool ParseIntFlag(const Args& args, const std::string& key, int fallback,
                  int min_value, int* out) {
  long long value = 0;
  if (!ParseIntFlag(args, key, static_cast<long long>(fallback),
                    static_cast<long long>(min_value), &value)) {
    return false;
  }
  if (value > std::numeric_limits<int>::max()) {
    std::cerr << "error: --" << key << " is out of range (got " << value
              << ")\n";
    return false;
  }
  *out = static_cast<int>(value);
  return true;
}

/// Shared observability wiring: builds the registry/recorder when the
/// corresponding output flag is present, and writes both files (via the
/// atomic writer) when the command finishes.
struct ObsSink {
  std::unique_ptr<certa::obs::MetricsRegistry> metrics;
  std::unique_ptr<certa::obs::TraceRecorder> trace;
  std::string metrics_path;
  std::string trace_path;

  void InitFromArgs(const Args& args) {
    metrics_path = args.Get("metrics-out", "");
    trace_path = args.Get("trace-out", "");
    if (!metrics_path.empty()) {
      metrics = std::make_unique<certa::obs::MetricsRegistry>();
    }
    if (!trace_path.empty()) {
      trace = std::make_unique<certa::obs::TraceRecorder>();
    }
  }

  /// Final dump; returns false (with a message) when a write fails.
  bool Flush() const {
    if (metrics != nullptr &&
        !certa::util::AtomicWriteFile(metrics_path,
                                      metrics->ToJson() + "\n")) {
      std::cerr << "error: cannot write metrics to " << metrics_path << "\n";
      return false;
    }
    if (trace != nullptr && !trace->SaveToFile(trace_path)) {
      std::cerr << "error: cannot write trace to " << trace_path << "\n";
      return false;
    }
    return true;
  }
};

/// Opens the cross-job prediction store named by --store-dir. Returns
/// nullptr when the flag is absent or the directory cannot be opened;
/// an open failure warns and the command runs without the store — the
/// result is byte-identical either way, only the model-call count
/// changes (docs/PERSISTENCE.md).
std::unique_ptr<certa::persist::ScoreStore> OpenStoreFromArgs(
    const Args& args) {
  if (!args.Has("store-dir")) return nullptr;
  auto store = std::make_unique<certa::persist::ScoreStore>();
  if (!store->Open(args.Get("store-dir", ""))) {
    std::cerr << "warning: cannot open score store in "
              << args.Get("store-dir", "") << "; running without it\n";
    return nullptr;
  }
  return store;
}

bool ParseModel(const std::string& name, ModelKind* kind) {
  std::string lowered = certa::ToLowerAscii(name);
  if (lowered == "deeper") *kind = ModelKind::kDeepEr;
  else if (lowered == "deepmatcher") *kind = ModelKind::kDeepMatcher;
  else if (lowered == "ditto") *kind = ModelKind::kDitto;
  else if (lowered == "svm") *kind = ModelKind::kSvm;
  else return false;
  return true;
}

bool LoadData(const Args& args, Dataset* dataset) {
  std::string code = args.Get("dataset", "AB");
  if (args.Has("data")) {
    if (!certa::data::LoadDatasetDirectory(args.Get("data", ""), code,
                                           dataset)) {
      std::cerr << "error: cannot load dataset directory "
                << args.Get("data", "") << "\n";
      return false;
    }
    return true;
  }
  bool known = false;
  for (const std::string& candidate : certa::data::BenchmarkCodes()) {
    if (candidate == code) known = true;
  }
  if (!known) {
    std::cerr << "error: unknown dataset code " << code << "\n";
    return false;
  }
  *dataset = certa::data::MakeBenchmark(code);
  return true;
}

/// The explain-request flags, in one place. Each key funnels through
/// api::ApplyField, so `certa explain` flags, serve job lines, and the
/// socket protocol accept the same fields with the same validation —
/// the flag spelling (dashes) and the wire spelling (underscores) are
/// normalized to the same field.
constexpr const char* kRequestFlagKeys[] = {
    "dataset", "data", "data-dir", "model",       "pair",
    "pair-index", "triangles", "threads", "seed", "budget",
    "deadline-ms", "fault-rate"};

bool BuildRequestFromArgs(const Args& args,
                          certa::api::ExplainRequest* request) {
  for (const char* key : kRequestFlagKeys) {
    if (!args.Has(key)) continue;
    std::string error;
    if (!certa::api::ApplyField(key, args.Get(key, ""), request, &error)) {
      std::cerr << "error: --" << key << ": " << error << "\n";
      return false;
    }
    // Old spellings still work, with a nudge toward the canonical one.
    const std::string note = certa::api::DeprecationNote(key);
    if (!note.empty()) std::cerr << "warning: " << note << "\n";
  }
  if (args.Has("no-cache")) request->use_cache = false;
  std::string error;
  if (!request->Validate(&error)) {
    std::cerr << "error: " << error << "\n";
    return false;
  }
  return true;
}

/// LoadData for the request path: same lookup, keyed off the parsed
/// request instead of raw flags.
bool LoadDataForRequest(const certa::api::ExplainRequest& request,
                        Dataset* dataset) {
  if (!request.data_dir.empty()) {
    if (!certa::data::LoadDatasetDirectory(request.data_dir, request.dataset,
                                           dataset)) {
      std::cerr << "error: cannot load dataset directory "
                << request.data_dir << "\n";
      return false;
    }
    return true;
  }
  bool known = false;
  for (const std::string& candidate : certa::data::BenchmarkCodes()) {
    if (candidate == request.dataset) known = true;
  }
  if (!known) {
    std::cerr << "error: unknown dataset code " << request.dataset << "\n";
    return false;
  }
  *dataset = certa::data::MakeBenchmark(request.dataset);
  return true;
}

int CmdDatasets() {
  certa::TablePrinter table(
      {"Code", "Name", "Matches", "Attr.s", "Records", "Values"});
  for (const std::string& code : certa::data::BenchmarkCodes()) {
    Dataset dataset = certa::data::MakeBenchmark(code);
    certa::data::DatasetStats stats = certa::data::ComputeStats(dataset);
    table.AddRow({code, dataset.full_name, std::to_string(stats.matches),
                  std::to_string(stats.attributes),
                  std::to_string(stats.left_records) + " - " +
                      std::to_string(stats.right_records),
                  std::to_string(stats.left_values) + " - " +
                      std::to_string(stats.right_values)});
  }
  table.Print(std::cout);
  return 0;
}

int CmdTrain(const Args& args) {
  Dataset dataset;
  if (!LoadData(args, &dataset)) return 1;
  ModelKind kind;
  if (!ParseModel(args.Get("model", "ditto"), &kind)) return Usage();
  auto model = certa::models::TrainMatcher(kind, dataset);
  if (args.Has("save")) {
    if (!certa::models::SaveMatcher(*model, kind, args.Get("save", ""))) {
      std::cerr << "error: cannot save model to " << args.Get("save", "")
                << "\n";
      return 1;
    }
    std::cout << "saved model to " << args.Get("save", "") << "\n";
  }
  std::cout << "trained " << model->name() << " on " << dataset.code
            << ": train F1 = "
            << certa::FormatDouble(
                   certa::models::EvaluateF1(*model, dataset.left,
                                             dataset.right, dataset.train),
                   3)
            << ", test F1 = "
            << certa::FormatDouble(
                   certa::models::EvaluateF1(*model, dataset.left,
                                             dataset.right, dataset.test),
                   3)
            << "\n";
  return 0;
}

int CmdExplain(const Args& args) {
  certa::api::ExplainRequest request;
  // The CLI's historical default model is ditto (the request type
  // itself defaults to svm, which serve job lines keep).
  request.model = "ditto";
  if (!BuildRequestFromArgs(args, &request)) return 2;
  Dataset dataset;
  if (!LoadDataForRequest(request, &dataset)) return 1;
  ModelKind kind;
  if (!ParseModel(request.model, &kind)) return Usage();
  if (request.pair_index >= static_cast<int>(dataset.test.size())) {
    std::cerr << "error: --pair out of range (test set has "
              << dataset.test.size() << " pairs)\n";
    return 1;
  }
  ObsSink obs;
  obs.InitFromArgs(args);
  if (args.Has("job-dir")) {
    // Durable path: scores are write-ahead journaled and progress
    // checkpointed inside --job-dir. Re-running the same command after
    // a crash (or ^C) resumes without re-paying model calls and yields
    // a bit-identical result.
    if (args.Has("model-file")) {
      std::cerr << "error: --job-dir resumes by retraining --model NAME "
                   "deterministically; --model-file is not supported\n";
      return 1;
    }
    certa::service::InstallShutdownHandlers();
    certa::service::JobSpec spec = request;
    spec.id = "cli";
    certa::service::DurableRunOptions run_options;
    if (!ParseIntFlag(args, "checkpoint-every", 256, 1,
                      &run_options.checkpoint_every)) {
      return 2;
    }
    run_options.cancel = certa::service::ShutdownFlag();
    run_options.cancelled_state = "interrupted";
    run_options.metrics = obs.metrics.get();
    run_options.trace = obs.trace.get();
    std::unique_ptr<certa::persist::ScoreStore> store =
        OpenStoreFromArgs(args);
    run_options.store = store.get();
    run_options.use_candidate_index = !args.Has("no-index");
    certa::service::JobOutcome outcome = certa::service::RunDurableExplain(
        spec, args.Get("job-dir", ""), run_options);
    if (store != nullptr) store->Sync();
    if (!obs.Flush()) return 1;
    if (outcome.state == certa::service::JobState::kFailed) {
      std::cerr << "error: " << outcome.error << "\n";
      return 1;
    }
    if (outcome.state == certa::service::JobState::kParked) {
      std::cerr << "interrupted: journal + checkpoint flushed in "
                << outcome.job_dir << "; re-run the same command to resume\n";
      return certa::service::kInterruptedExitCode;
    }
    if (args.Has("json")) {
      std::cout << outcome.result_json << "\n";
    } else {
      std::cout << "durable explain complete ("
                << (outcome.resumed ? "resumed: " : "fresh run: ")
                << outcome.replayed_scores << " scores replayed, "
                << outcome.fresh_scores << " fresh";
      if (store != nullptr) {
        std::cout << ", " << outcome.store_hits << " store hits";
      }
      std::cout << "); result at "
                << certa::persist::ResultPathInDir(outcome.job_dir) << "\n";
    }
    return 0;
  }
  std::unique_ptr<certa::models::Matcher> model;
  if (args.Has("model-file")) {
    certa::models::ModelKind loaded_kind;
    model = certa::models::LoadMatcher(args.Get("model-file", ""),
                                       &loaded_kind);
    if (model == nullptr) {
      std::cerr << "error: cannot load model from "
                << args.Get("model-file", "") << "\n";
      return 1;
    }
  } else {
    model = certa::models::TrainMatcher(kind, dataset);
  }
  certa::models::ScoringEngine::Options engine_options;
  engine_options.enable_cache = request.use_cache;
  certa::models::ScoringEngine engine(model.get(), engine_options);
  // With --fault-rate the explainer scores through the injector
  // directly (un-cached, like the remote service it simulates); the
  // clean engine still provides the report-header score below.
  std::unique_ptr<certa::models::FaultInjectingMatcher> faulty;
  const certa::models::Matcher* context_model = &engine;
  if (request.fault_rate > 0.0) {
    certa::models::FaultOptions fault_options;
    fault_options.fault_rate = request.fault_rate;
    faulty = std::make_unique<certa::models::FaultInjectingMatcher>(
        model.get(), fault_options);
    context_model = faulty.get();
  }
  certa::explain::ExplainContext context{context_model, &dataset.left,
                                         &dataset.right};
  // The in-process path honors --deadline-ms as a resilience deadline
  // (truncate-and-report); durable runs leave it to the watchdog.
  certa::core::CertaExplainer::Options options =
      certa::service::ExplainerOptionsFromRequest(request,
                                                  /*include_deadline=*/true);
  options.metrics = obs.metrics.get();
  options.trace = obs.trace.get();
  options.use_candidate_index = !args.Has("no-index");
  certa::core::CertaExplainer explainer(context, options);

  const certa::data::LabeledPair& pair =
      dataset.test[static_cast<size_t>(request.pair_index)];
  const certa::data::Record& u = dataset.left.record(pair.left_index);
  const certa::data::Record& v = dataset.right.record(pair.right_index);
  certa::core::CertaResult result = explainer.Explain(u, v);

  if (args.Has("json")) {
    std::cout << certa::core::CertaResultToJson(
                     result, dataset.left.schema(), dataset.right.schema())
              << "\n";
  } else {
    std::cout << certa::explain::RenderReport(
        u, v, dataset.left.schema(), dataset.right.schema(),
        engine.Score(u, v), result.saliency, result.counterfactuals);
    std::cout << certa::explain::RenderStatusLine(
        certa::core::ExplainStatusName(result.status),
        result.triangle_phase.calls + result.lattice_phase.calls +
            result.cf_phase.calls,
        result.triangle_phase.retries + result.lattice_phase.retries +
            result.cf_phase.retries,
        result.triangle_phase.failures + result.lattice_phase.failures +
            result.cf_phase.failures,
        result.triangle_phase.cells_skipped +
            result.lattice_phase.cells_skipped +
            result.cf_phase.cells_skipped);
  }

  if (args.Has("tokens") && !result.saliency.Ranked().empty()) {
    certa::explain::AttributeRef top = result.saliency.Ranked().front();
    certa::core::TokenExplainer tokens(context);
    certa::core::TokenExplanation explanation =
        tokens.Explain(u, v, top);
    std::cout << "token-level saliency for "
              << certa::explain::QualifiedAttributeName(
                     dataset.left.schema(), dataset.right.schema(), top)
              << ":\n";
    for (int t : explanation.Ranked()) {
      std::cout << "  " << explanation.tokens[t] << " = "
                << certa::FormatDouble(explanation.scores[t], 3) << "\n";
    }
  }
  if (!obs.Flush()) return 1;
  return 0;
}

int CmdExport(const Args& args) {
  Dataset dataset;
  if (!LoadData(args, &dataset)) return 1;
  if (!args.Has("out")) return Usage();
  if (!certa::data::SaveDatasetDirectory(args.Get("out", ""), dataset)) {
    std::cerr << "error: cannot write to " << args.Get("out", "")
              << " (directory must exist)\n";
    return 1;
  }
  std::cout << "wrote " << dataset.code << " ("
            << dataset.left.size() << " + " << dataset.right.size()
            << " records, " << dataset.train.size() << "/"
            << dataset.test.size() << " train/test pairs) to "
            << args.Get("out", "") << "\n";
  return 0;
}

int CmdProfile(const Args& args) {
  Dataset dataset;
  if (!LoadData(args, &dataset)) return 1;
  std::cout << "table " << dataset.left.name() << " ("
            << dataset.left.size() << " records):\n"
            << certa::data::RenderProfiles(
                   certa::data::ProfileTable(dataset.left))
            << "table " << dataset.right.name() << " ("
            << dataset.right.size() << " records):\n"
            << certa::data::RenderProfiles(
                   certa::data::ProfileTable(dataset.right));
  return 0;
}

int CmdRules(const Args& args) {
  Dataset dataset;
  if (!LoadData(args, &dataset)) return 1;
  certa::models::RuleModel model;
  model.Fit(dataset);
  std::cout << "learned rule set (test F1 = "
            << certa::FormatDouble(
                   certa::models::EvaluateF1(model, dataset.left,
                                             dataset.right, dataset.test),
                   3)
            << "):\n"
            << model.Describe(dataset.left.schema());
  return 0;
}

int CmdGlobal(const Args& args) {
  Dataset dataset;
  if (!LoadData(args, &dataset)) return 1;
  ModelKind kind;
  if (!ParseModel(args.Get("model", "ditto"), &kind)) return Usage();
  int max_pairs = 0;
  int threads = 0;
  if (!ParseIntFlag(args, "pairs", 20, 1, &max_pairs) ||
      !ParseIntFlag(args, "threads", 1, 1, &threads)) {
    return 2;
  }
  auto model = certa::models::TrainMatcher(kind, dataset);
  certa::models::ScoringEngine::Options engine_options;
  engine_options.enable_cache = !args.Has("no-cache");
  certa::models::ScoringEngine engine(model.get(), engine_options);
  certa::explain::ExplainContext context{&engine, &dataset.left,
                                         &dataset.right};
  certa::core::CertaExplainer::Options options;
  options.num_threads = threads;
  options.use_cache = !args.Has("no-cache");
  options.use_candidate_index = !args.Has("no-index");
  certa::core::CertaExplainer explainer(context, options);
  std::vector<certa::data::LabeledPair> pairs = dataset.test;
  if (static_cast<int>(pairs.size()) > max_pairs) {
    pairs.resize(static_cast<size_t>(max_pairs));
  }
  std::vector<certa::explain::SaliencyExplanation> explanations;
  for (const auto& pair : pairs) {
    explanations.push_back(explainer.ExplainSaliency(
        dataset.left.record(pair.left_index),
        dataset.right.record(pair.right_index)));
  }
  certa::explain::GlobalExplanation global =
      certa::explain::AggregateExplanations(context, pairs, dataset.left,
                                            dataset.right, explanations);
  std::cout << "global CERTA explanation of " << model->name() << " on "
            << dataset.code << " (" << pairs.size() << " pairs):\n"
            << certa::explain::RenderGlobalExplanation(
                   global, dataset.left.schema(), dataset.right.schema());
  return 0;
}

/// One worker's STATS payload for the fleet control channel: the same
/// counter names the wire-protocol stats frame uses, so the master can
/// sum every numeric field without a schema of its own.
std::string WorkerStatsJson(int slot,
                            const certa::service::JobRunner::Counters& c,
                            const certa::net::ServerStats& s,
                            const certa::persist::ScoreStore* store) {
  certa::JsonWriter json;
  json.BeginObject();
  json.Key("slot");
  json.Int(slot);
  json.Key("pid");
  json.Int(static_cast<long long>(::getpid()));
  json.Key("runner");
  json.BeginObject();
  json.Key("submitted");
  json.Int(c.submitted);
  json.Key("accepted");
  json.Int(c.accepted);
  json.Key("rejected_closed");
  json.Int(c.rejected_closed);
  json.Key("rejected_queue_full");
  json.Int(c.rejected_queue_full);
  json.Key("rejected_deadline");
  json.Int(c.rejected_deadline);
  json.Key("completed");
  json.Int(c.completed);
  json.Key("parked");
  json.Int(c.parked);
  json.Key("failed");
  json.Int(c.failed);
  json.EndObject();
  json.Key("server");
  json.BeginObject();
  json.Key("connections_accepted");
  json.Int(s.connections_accepted);
  json.Key("connections_active");
  json.Int(s.connections_active);
  json.Key("frames_in");
  json.Int(s.frames_in);
  json.Key("bytes_in");
  json.Int(s.bytes_in);
  json.Key("bytes_out");
  json.Int(s.bytes_out);
  json.Key("events_dropped");
  json.Int(s.events_dropped);
  json.Key("slow_reader_closes");
  json.Int(s.slow_reader_closes);
  json.EndObject();
  if (store != nullptr) {
    const certa::persist::ScoreStore::Stats st = store->stats();
    json.Key("store");
    json.BeginObject();
    json.Key("entries");
    json.Int(static_cast<long long>(st.entries));
    json.Key("lookups");
    json.Int(st.lookups);
    json.Key("hits");
    json.Int(st.hits);
    json.Key("peer_hits");
    json.Int(st.peer_hits);
    json.Key("peer_records");
    json.Int(st.peer_records);
    json.Key("appends");
    json.Int(st.appends);
    json.Key("compactions");
    json.Int(st.compactions);
    json.EndObject();
  }
  json.EndObject();
  return json.str();
}

/// Fleet mode: `--listen` with `--workers N` (N >= 2) forks N worker
/// processes that each run ServeOverSocket's machinery over a private
/// job partition (`<job-root>/w<slot>`) plus ONE shared `--store-dir`:
/// every worker appends paid scores to its own segment stream inside
/// the directory and absorbs its siblings' streams read-only, so a
/// score any worker pays is a hit for the whole fleet (`peer_hits` in
/// the stats counts the cross-worker reuse). Workers share the TCP
/// port (SO_REUSEPORT, or one inherited listener as fallback). The
/// master process only supervises: crash restarts with backoff,
/// flap-capped abandonment with partition adoption, SIGHUP rolling
/// restart, SIGTERM fleet drain, stats fan-in. See docs/SERVICE.md.
int ServeFleet(const Args& args,
               certa::service::JobRunnerOptions runner_options) {
  certa::service::SupervisorOptions sup;
  sup.host = args.Get("host", "127.0.0.1");
  int max_connections = 0;
  int max_write_buffer = 0;
  if (!ParseIntFlag(args, "listen", 0, 0, &sup.port) ||
      !ParseIntFlag(args, "max-connections", 64, 1, &max_connections) ||
      !ParseIntFlag(args, "max-write-buffer", 1 << 20, 64,
                    &max_write_buffer) ||
      !ParseIntFlag(args, "restart-backoff-ms", 200LL, 1LL,
                    &sup.restart_backoff_initial_ms) ||
      !ParseIntFlag(args, "flap-limit", 5, 1, &sup.flap_limit) ||
      !ParseIntFlag(args, "stable-after-ms", 2000LL, 1LL,
                    &sup.stable_after_ms) ||
      !ParseIntFlag(args, "shutdown-grace-ms", 30000LL, 100LL,
                    &sup.shutdown_grace_ms) ||
      !ParseIntFlag(args, "stats-interval-ms", 200LL, 20LL,
                    &sup.stats_interval_ms)) {
    return 2;
  }
  sup.restart_backoff_max_ms =
      std::max(sup.restart_backoff_max_ms, sup.restart_backoff_initial_ms);
  sup.workers = runner_options.workers;
  sup.job_root = runner_options.job_root;
  sup.store_dir = runner_options.store_dir;
  sup.stream_dir = args.Get("stream-dir", "");
  if (const char* env = std::getenv("CERTA_FLEET_NO_REUSEPORT")) {
    sup.disable_reuse_port = env[0] != '\0' && std::string_view(env) != "0";
  }

  // One fleet per job root / store root — and the lock fds must not
  // leak into workers (flock is shared across fork, so an inheriting
  // child would keep the root "busy" after the master died). The
  // master's store lock is the whole-directory ".lock", which is what
  // a single-process serve or durable explain would take: a fleet and
  // a single-process writer can never share the directory, while the
  // fleet's own workers lock only their streams (".lock-w<slot>") and
  // so coexist under it.
  certa::persist::DirLock root_lock;
  certa::persist::DirLock store_lock;
  std::string lock_error;
  if (!root_lock.Acquire(sup.job_root, &lock_error)) {
    std::cerr << "error: job root " << sup.job_root
              << " is busy: " << lock_error << "\n";
    return 1;
  }
  sup.close_in_child.push_back(root_lock.fd());
  if (!sup.store_dir.empty()) {
    if (!store_lock.Acquire(sup.store_dir, &lock_error)) {
      std::cerr << "error: store dir " << sup.store_dir
                << " is busy: " << lock_error << "\n";
      return 1;
    }
    sup.close_in_child.push_back(store_lock.fd());
  }

  std::vector<std::string> partitions;
  for (int slot = 0; slot < sup.workers; ++slot) {
    partitions.push_back(sup.job_root + "/w" + std::to_string(slot));
  }
  const std::string host = sup.host;
  const long long stats_interval_ms = sup.stats_interval_ms;
  const int fleet_workers = sup.workers;

  auto worker_main = [&](const certa::service::WorkerLaunch& launch) -> int {
    certa::service::JobRunnerOptions worker_runner = runner_options;
    worker_runner.workers = 1;
    worker_runner.job_root = launch.partition_root;
    // The whole fleet shares launch.store_dir; this worker's slot picks
    // the one segment stream it may write (and locks only that stream,
    // so siblings coexist while a second fleet cannot steal a slot).
    worker_runner.store_dir = launch.store_dir;
    worker_runner.store_stream_slot = launch.slot;
    worker_runner.job_id_prefix = "w" + std::to_string(launch.slot) + "-";
    worker_runner.store_exclusive_lock = true;
    if (!worker_runner.stats_path.empty()) {
      worker_runner.stats_path = launch.partition_root + "/metrics.json";
    }

    certa::persist::DirLock partition_lock;
    std::string error;
    if (!partition_lock.Acquire(launch.partition_root, &error)) {
      std::cerr << "worker " << launch.slot << ": partition busy: " << error
                << "\n";
      return 1;
    }

    // Shared stream directory, same discipline as the score store: this
    // worker appends record ops to its own ops-w<slot>.wal and absorbs
    // the siblings' streams read-only, so an upsert acked by any worker
    // reaches every worker's overlays.
    certa::service::StreamCoordinator coordinator;
    if (!launch.stream_dir.empty()) {
      certa::service::StreamCoordinator::Options stream_options;
      stream_options.dir = launch.stream_dir;
      stream_options.slot = launch.slot;
      std::string stream_error;
      if (!coordinator.Open(stream_options, &stream_error)) {
        std::cerr << "worker " << launch.slot << ": cannot open stream dir "
                  << launch.stream_dir << ": " << stream_error << "\n";
        return 1;
      }
      worker_runner.dataset_provider =
          [&coordinator](const certa::api::ExplainRequest& request,
                         certa::data::Dataset* dataset,
                         std::string* provider_error) {
            return coordinator.ProvideDataset(request, dataset,
                                              provider_error);
          };
    }

    certa::net::NetServerOptions server_options;
    server_options.host = host;
    server_options.port = launch.listen_port;
    server_options.max_connections = max_connections;
    server_options.max_write_buffer = static_cast<size_t>(max_write_buffer);
    server_options.reuse_port = launch.inherited_listen_fd < 0;
    server_options.inherited_listen_fd = launch.inherited_listen_fd;
    server_options.peer_job_roots = partitions;
    server_options.stop_flag = certa::service::ShutdownFlag();
    server_options.drain_on_stop_flag = false;
    server_options.stream = coordinator.is_open() ? &coordinator : nullptr;
    server_options.fleet_workers = fleet_workers;
    server_options.runner = std::move(worker_runner);

    certa::net::NetServer server(std::move(server_options));
    if (!server.Start(&error)) {
      std::cerr << "worker " << launch.slot << ": " << error << "\n";
      return 1;
    }

    // Resume sweep: whatever a predecessor in this slot left parked on
    // disk (crash or rolling restart) is re-admitted before READY.
    const int resumed = server.runner().AdoptParked(launch.partition_root);
    if (resumed > 0) {
      std::cerr << "worker " << launch.slot << ": resuming " << resumed
                << " parked job(s)\n";
    }

    certa::service::WorkerControl control(launch.control_fd,
                                          stats_interval_ms);
    control.SendReady(server.port());
    certa::service::WorkerControl::Hooks hooks;
    hooks.on_adopt = [&server, slot = launch.slot](const std::string& dir) {
      const int adopted = server.runner().AdoptParked(dir);
      std::cerr << "worker " << slot << ": adopted " << adopted
                << " job(s) from " << dir << "\n";
    };
    hooks.on_fleet = [&server](const std::string& fleet_json) {
      server.SetFleetStats(fleet_json);
    };
    hooks.stats_provider = [&server, slot = launch.slot] {
      return WorkerStatsJson(slot, server.runner().counters(),
                             server.stats(), server.runner().store());
    };
    control.Start(std::move(hooks));

    server.Run();
    control.Stop();
    // Final checkpoint: the slot's successor replays only WAL tails.
    coordinator.Close();

    // DONE lines, one write per worker so concurrent drains don't
    // interleave mid-line. A job that parked and then completed after
    // adoption reports per-outcome here; the exit code judges only the
    // latest state of each job this worker owned at the end.
    std::string done;
    bool any_parked = false;
    std::map<std::string, certa::service::JobOutcome> latest;
    for (const certa::service::JobOutcome& outcome :
         server.runner().outcomes()) {
      latest[outcome.job_id] = outcome;
    }
    for (const auto& [job_id, outcome] : latest) {
      if (outcome.state == certa::service::JobState::kParked) {
        any_parked = true;
      }
      done += "DONE " + job_id + " " +
              std::string(certa::service::JobStateName(outcome.state)) +
              " replayed=" + std::to_string(outcome.replayed_scores) +
              " fresh=" + std::to_string(outcome.fresh_scores) +
              " store=" + std::to_string(outcome.store_hits) +
              " peer=" + std::to_string(outcome.store_peer_hits);
      if (!outcome.error.empty()) done += " (" + outcome.error + ")";
      done += "\n";
    }
    std::cout << done << std::flush;
    return any_parked ? certa::service::kInterruptedExitCode : 0;
  };

  certa::service::Supervisor supervisor(std::move(sup));
  std::string error;
  if (!supervisor.Start(worker_main, &error)) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }
  std::cerr << "serve: fleet of " << runner_options.workers << " worker(s) on "
            << host << ":" << supervisor.port() << " ("
            << (supervisor.reuse_port_mode() ? "SO_REUSEPORT"
                                             : "inherited listener")
            << ")\n";
  return supervisor.Run();
}

/// Socket front-end: the same runner, behind `--listen PORT` speaking
/// the docs/SERVICE.md line-delimited JSON protocol. A SIGINT/SIGTERM
/// closes the listener, parks running jobs resumable, and exits with
/// kInterruptedExitCode — identical drain semantics to the stdin loop.
int ServeOverSocket(const Args& args,
                    certa::service::JobRunnerOptions runner_options,
                    const ObsSink& obs) {
  certa::net::NetServerOptions options;
  options.host = args.Get("host", "127.0.0.1");
  int max_write_buffer = 0;
  if (!ParseIntFlag(args, "listen", 0, 0, &options.port) ||
      !ParseIntFlag(args, "max-connections", 64, 1,
                    &options.max_connections) ||
      !ParseIntFlag(args, "max-write-buffer", 1 << 20, 64,
                    &max_write_buffer)) {
    return 2;
  }
  options.max_write_buffer = static_cast<size_t>(max_write_buffer);
  options.stop_flag = certa::service::ShutdownFlag();

  // --stream-dir turns on the v2 streaming verbs: one coordinator owns
  // the stream directory (slot 0 — single-process serving), the server
  // routes upsert/remove/match/invalidations through it, and the
  // runner's dataset hook materializes jobs from the live overlays so
  // explanations see every acked record op.
  certa::service::StreamCoordinator coordinator;
  if (args.Has("stream-dir")) {
    certa::service::StreamCoordinator::Options stream_options;
    stream_options.dir = args.Get("stream-dir", "");
    stream_options.slot = 0;
    stream_options.metrics = obs.metrics.get();
    std::string stream_error;
    if (!coordinator.Open(stream_options, &stream_error)) {
      std::cerr << "error: cannot open stream dir " << stream_options.dir
                << ": " << stream_error << "\n";
      return 1;
    }
    options.stream = &coordinator;
    runner_options.dataset_provider =
        [&coordinator](const certa::api::ExplainRequest& request,
                       certa::data::Dataset* dataset, std::string* error) {
          return coordinator.ProvideDataset(request, dataset, error);
        };
  }

  options.runner = std::move(runner_options);
  certa::net::NetServer server(std::move(options));
  std::string error;
  if (!server.Start(&error)) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }
  // Machine-parseable (tests and scripts scrape the port when
  // --listen 0 asked for an ephemeral one).
  std::cout << "LISTENING " << args.Get("host", "127.0.0.1") << ":"
            << server.port() << "\n"
            << std::flush;
  server.Run();
  // Final checkpoint: the next serve replays only WAL tails.
  coordinator.Close();

  const bool interrupted = certa::service::ShutdownRequested();
  for (const certa::service::JobOutcome& outcome :
       server.runner().outcomes()) {
    std::cout << "DONE " << outcome.job_id << " "
              << certa::service::JobStateName(outcome.state)
              << " replayed=" << outcome.replayed_scores
              << " fresh=" << outcome.fresh_scores;
    if (!outcome.error.empty()) std::cout << " (" << outcome.error << ")";
    std::cout << "\n";
  }
  const certa::service::JobRunner::Counters counters =
      server.runner().counters();
  const certa::net::ServerStats net_stats = server.stats();
  std::cerr << "serve: submitted=" << counters.submitted
            << " accepted=" << counters.accepted
            << " rejected_queue_full=" << counters.rejected_queue_full
            << " rejected_deadline=" << counters.rejected_deadline
            << " completed=" << counters.completed
            << " parked=" << counters.parked
            << " failed=" << counters.failed
            << " connections=" << net_stats.connections_accepted
            << " frames=" << net_stats.frames_in
            << " events_dropped=" << net_stats.events_dropped << "\n";
  if (!obs.Flush()) return 1;
  return interrupted ? certa::service::kInterruptedExitCode : 0;
}

int CmdServe(const Args& args) {
  certa::service::InstallShutdownHandlers();
  int checkpoint_every = 0;
  if (!ParseIntFlag(args, "checkpoint-every", 256, 1, &checkpoint_every)) {
    return 2;
  }

  if (args.Has("resume")) {
    const std::string job_dir = args.Get("resume", "");
    certa::persist::JobCheckpoint checkpoint;
    if (!certa::persist::LoadCheckpoint(
            certa::persist::CheckpointPathInDir(job_dir), &checkpoint)) {
      std::cerr << "error: no readable checkpoint in " << job_dir << "\n";
      return 1;
    }
    if (checkpoint.state == "complete") {
      std::cout << "job " << checkpoint.request.id
                << " already complete; result at "
                << certa::persist::ResultPathInDir(job_dir) << "\n";
      return 0;
    }
    certa::service::DurableRunOptions run_options;
    run_options.checkpoint_every = checkpoint_every;
    run_options.cancel = certa::service::ShutdownFlag();
    run_options.cancelled_state = "interrupted";
    std::unique_ptr<certa::persist::ScoreStore> store =
        OpenStoreFromArgs(args);
    run_options.store = store.get();
    run_options.use_candidate_index = !args.Has("no-index");
    certa::service::JobOutcome outcome = certa::service::RunDurableExplain(
        certa::service::SpecFromCheckpoint(checkpoint), job_dir, run_options);
    if (store != nullptr) store->Sync();
    if (outcome.state == certa::service::JobState::kFailed) {
      std::cerr << "error: " << outcome.error << "\n";
      return 1;
    }
    if (outcome.state == certa::service::JobState::kParked) {
      std::cerr << "interrupted again: state flushed in " << outcome.job_dir
                << "\n";
      return certa::service::kInterruptedExitCode;
    }
    std::cout << "resumed job " << outcome.job_id << " to completion ("
              << outcome.replayed_scores << " scores replayed, "
              << outcome.fresh_scores << " fresh); result at "
              << certa::persist::ResultPathInDir(outcome.job_dir) << "\n";
    return 0;
  }

  certa::service::JobRunnerOptions options;
  options.job_root = args.Get("job-root", "jobs");
  int queue = 0;
  if (!ParseIntFlag(args, "queue", 8, 1, &queue) ||
      !ParseIntFlag(args, "workers", 1, 1, &options.workers) ||
      !ParseIntFlag(args, "deadline-ms", 0LL, 0LL,
                    &options.default_deadline_ms) ||
      !ParseIntFlag(args, "stall-timeout-ms", 0LL, 0LL,
                    &options.stall_timeout_ms) ||
      !ParseIntFlag(args, "stats-every", 0, 0, &options.stats_every)) {
    return 2;
  }
  options.queue_capacity = static_cast<size_t>(queue);
  options.checkpoint_every = checkpoint_every;
  options.store_dir = args.Get("store-dir", "");
  options.use_candidate_index = !args.Has("no-index");
  // Stats export: --stats-every N snapshots the registry after every N
  // terminal jobs (and always once at shutdown); --metrics-out names
  // the file (default <job-root>/metrics.json).
  ObsSink obs;
  obs.InitFromArgs(args);
  if (options.stats_every > 0 && obs.metrics == nullptr) {
    obs.metrics_path = options.job_root + "/metrics.json";
    obs.metrics = std::make_unique<certa::obs::MetricsRegistry>();
  }
  options.metrics = obs.metrics.get();
  options.trace = obs.trace.get();
  options.stats_every = std::max(options.stats_every, 0);
  options.stats_path = obs.metrics_path;

  if (args.Has("listen") && options.workers >= 2) {
    // Fleet mode forks per-worker processes; it takes its own root
    // locks (a lock acquired here would conflict with the master's).
    return ServeFleet(args, std::move(options));
  }

  // One serve process per job root: a second `certa serve` pointed at
  // the same namespace fails fast instead of corrupting it.
  certa::persist::DirLock job_root_lock;
  std::string lock_error;
  if (!job_root_lock.Acquire(options.job_root, &lock_error)) {
    std::cerr << "error: job root " << options.job_root
              << " is busy: " << lock_error << "\n";
    return 1;
  }
  options.store_exclusive_lock = true;

  if (args.Has("listen")) {
    return ServeOverSocket(args, std::move(options), obs);
  }

  certa::service::JobRunner runner(options);

  std::istream* in = &std::cin;
  std::ifstream jobs_file;
  if (args.Has("jobs")) {
    jobs_file.open(args.Get("jobs", ""));
    if (!jobs_file) {
      std::cerr << "error: cannot open jobs file " << args.Get("jobs", "")
                << "\n";
      return 1;
    }
    in = &jobs_file;
  }

  // One ACCEPT/REJECT line per job line, in input order. '#' comments
  // and blank lines are skipped.
  std::string line;
  while (!certa::service::ShutdownRequested() && std::getline(*in, line)) {
    const std::string_view trimmed = certa::StripAsciiWhitespace(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    // Job lines share the api::ExplainRequest field set; legacy keys
    // ("data", "pair-index") still parse as aliases.
    certa::service::JobSpec spec;
    std::string parse_error;
    if (!certa::api::ParseKeyValueLine(trimmed, &spec, &parse_error)) {
      std::cout << "REJECT - " << parse_error << "\n" << std::flush;
      continue;
    }
    certa::service::JobRunner::SubmitResult submitted =
        runner.Submit(std::move(spec));
    if (submitted.accepted) {
      std::cout << "ACCEPT " << submitted.job_id << "\n" << std::flush;
    } else {
      std::cout << "REJECT - " << submitted.reason << "\n" << std::flush;
    }
  }

  // EOF drains; a signal parks running jobs with flushed state instead.
  const bool interrupted = certa::service::ShutdownRequested();
  runner.Shutdown(/*drain=*/!interrupted);
  for (const certa::service::JobOutcome& outcome : runner.outcomes()) {
    std::cout << "DONE " << outcome.job_id << " "
              << certa::service::JobStateName(outcome.state)
              << " replayed=" << outcome.replayed_scores
              << " fresh=" << outcome.fresh_scores;
    if (!outcome.error.empty()) std::cout << " (" << outcome.error << ")";
    std::cout << "\n";
  }
  const certa::service::JobRunner::Counters counters = runner.counters();
  std::cerr << "serve: submitted=" << counters.submitted
            << " accepted=" << counters.accepted
            << " rejected_queue_full=" << counters.rejected_queue_full
            << " rejected_deadline=" << counters.rejected_deadline
            << " completed=" << counters.completed
            << " parked=" << counters.parked
            << " failed=" << counters.failed << "\n";
  if (!obs.Flush()) return 1;
  return interrupted ? certa::service::kInterruptedExitCode : 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!Parse(argc, argv, &args)) return Usage();
  // Durable modes trap SIGINT/SIGTERM from the very start, so a signal
  // during dataset load / training still parks instead of killing.
  if (args.command == "serve" ||
      (args.command == "explain" && args.Has("job-dir"))) {
    certa::service::InstallShutdownHandlers();
  }
  if (args.command == "datasets") return CmdDatasets();
  if (args.command == "train") return CmdTrain(args);
  if (args.command == "explain") return CmdExplain(args);
  if (args.command == "export") return CmdExport(args);
  if (args.command == "profile") return CmdProfile(args);
  if (args.command == "rules") return CmdRules(args);
  if (args.command == "global") return CmdGlobal(args);
  if (args.command == "serve") return CmdServe(args);
  return Usage();
}
